"""Nested value helpers: validation, depth, sizes and canonical rendering.

A *nested value* in this library is one of:

* a base value — ``str``, ``int``, ``float`` or ``bool`` (the paper's
  ``Base`` type),
* the unit value — the empty Python tuple ``()`` (the paper's ``⟨⟩``),
* a tuple of nested values (product types), or
* a :class:`~repro.bag.bag.Bag` whose elements are nested values
  (``Bag(C)`` types).

These functions are structural utilities shared by the evaluator, the cost
model (``size``), the shredding machinery and the workload generators.
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

from repro.bag.bag import Bag

__all__ = [
    "intern_key",
    "is_base_value",
    "is_hashable_key",
    "is_nested_value",
    "key_interner_stats",
    "value_depth",
    "value_size",
    "nested_cardinalities",
    "iter_inner_bags",
    "render_value",
]

_BASE_TYPES = (str, int, float, bool)


def is_base_value(value: Any) -> bool:
    """True iff ``value`` is a base (atomic) value."""
    return isinstance(value, _BASE_TYPES)


def is_hashable_key(value: Any) -> bool:
    """True iff ``==`` on ``value`` coincides with dictionary-key matching.

    That holds exactly for *self-equal base values*: ``NaN`` is not
    self-equal (dict identity lookup would wrongly match it) and compound
    values may not be compared by the predicate fragment at all.  This is
    the single soundness rule shared by the compiled pipeline's
    per-evaluation hash-join builds (:mod:`repro.nrc.compile`) and the
    storage layer's persistent indexes (:mod:`repro.storage.index`) — the
    two must never disagree about which keys hashing can match faithfully.
    """
    return isinstance(value, _BASE_TYPES) and value == value


def is_nested_value(value: Any) -> bool:
    """True iff ``value`` is a well-formed nested value.

    Implemented with an explicit work stack so workload values nested deeper
    than Python's recursion limit are still checkable.
    """
    stack = [value]
    while stack:
        current = stack.pop()
        if isinstance(current, _BASE_TYPES):
            continue
        if isinstance(current, tuple):
            stack.extend(current)
            continue
        if isinstance(current, Bag):
            stack.extend(current.elements())
            continue
        return False
    return True


def value_depth(value: Any) -> int:
    """Maximum bag-nesting depth of a value.

    Base values and tuples of base values have depth 0; a flat bag has
    depth 1; a bag of bags has depth 2, and so on.  Tuples take the maximum
    over their components.  Iterative (explicit stack), so pathologically
    deep values cannot overflow the interpreter stack.
    """
    best = 0
    stack = [(value, 0)]
    while stack:
        current, depth = stack.pop()
        if isinstance(current, _BASE_TYPES):
            if depth > best:
                best = depth
            continue
        if isinstance(current, tuple):
            if not current:
                if depth > best:
                    best = depth
                continue
            for component in current:
                stack.append((component, depth))
            continue
        if isinstance(current, Bag):
            depth += 1
            if depth > best:
                best = depth
            for element in current.elements():
                stack.append((element, depth))
            continue
        raise TypeError(f"not a nested value: {current!r}")
    return best


def value_size(value: Any) -> int:
    """Total number of atomic constituents, counting bag multiplicities.

    This is the "physical size" of a value used by workload reporting and by
    the incrementality discussion in Appendix A.2 (``size(ΔR) ≪ size(R)``);
    the cost-domain ``size`` of Section 4.2 lives in :mod:`repro.cost.size`.
    Iterative (explicit stack), so pathologically deep values cannot
    overflow the interpreter stack.
    """
    total = 0
    stack = [(value, 1)]
    while stack:
        current, weight = stack.pop()
        if isinstance(current, _BASE_TYPES):
            total += weight
            continue
        if isinstance(current, tuple):
            if not current:
                total += weight
                continue
            for component in current:
                stack.append((component, weight))
            continue
        if isinstance(current, Bag):
            total += weight
            for element, multiplicity in current.items():
                stack.append((element, weight * abs(multiplicity)))
            continue
        raise TypeError(f"not a nested value: {current!r}")
    return total


# --------------------------------------------------------------------------- #
# Compound-key interning (the hash-join / index hot path)
# --------------------------------------------------------------------------- #
class _KeyInterner:
    """A small bounded interning table for compound join/index keys.

    The compiled hash-joins and the storage layer's persistent indexes build
    one key tuple per indexed element and one per probe.  Under a stream of
    small updates the same logical keys recur over and over; interning them
    returns one canonical tuple per distinct key, so

    * every bucket dict holds (and compares against) canonical objects —
      CPython's dict lookup then succeeds on the identity fast path without
      re-running deep structural ``==``, and
    * the values reachable from a canonical key (e.g. a cached-hash
      :class:`~repro.labels.Label` inside a flat shredded tuple) keep their
      structural hashes warm across updates instead of being recomputed for
      every freshly-built tuple.

    The table is deliberately tiny and self-limiting: when it fills up it is
    simply cleared (an epoch reset), which bounds memory without an LRU's
    per-hit bookkeeping.  Interning is semantically invisible — it may only
    ever return an equal tuple.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_table")

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._table: dict = {}

    def intern(self, key: Tuple[Any, ...]) -> Tuple[Any, ...]:
        table = self._table
        cached = table.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if len(table) >= self.capacity:
            table.clear()
            self.evictions += 1
        table[key] = key
        return key

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._table),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._table.clear()


#: The process-wide interner shared by ``repro.storage.index`` and the
#: compiled pipeline's per-evaluation hash-join builds.
_KEY_INTERNER = _KeyInterner()


def intern_key(key: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Canonicalize a compound join/index key tuple (see :class:`_KeyInterner`)."""
    return _KEY_INTERNER.intern(key)


def key_interner_stats() -> dict:
    """Hit/miss/eviction counters of the shared key interner."""
    return _KEY_INTERNER.stats()


def nested_cardinalities(value: Any) -> Tuple[int, ...]:
    """Per-nesting-level maximum cardinalities of a value.

    For the nested bag ``{{a},{b},{c,d}}`` this returns ``(3, 2)``: the top
    bag has 3 elements and inner bags have at most 2 — the same shape as the
    cost value ``3{2}`` of the introduction.
    """
    if is_base_value(value) or (isinstance(value, tuple) and not value):
        return ()
    if isinstance(value, tuple):
        levels: Tuple[int, ...] = ()
        for component in value:
            levels = _merge_levels(levels, nested_cardinalities(component))
        return levels
    if isinstance(value, Bag):
        inner: Tuple[int, ...] = ()
        for element in value.elements():
            inner = _merge_levels(inner, nested_cardinalities(element))
        return (value.cardinality(),) + inner
    raise TypeError(f"not a nested value: {value!r}")


def _merge_levels(left: Tuple[int, ...], right: Tuple[int, ...]) -> Tuple[int, ...]:
    """Pointwise maximum of two per-level cardinality tuples."""
    length = max(len(left), len(right))
    merged = []
    for index in range(length):
        left_value = left[index] if index < len(left) else 0
        right_value = right[index] if index < len(right) else 0
        merged.append(max(left_value, right_value))
    return tuple(merged)


def iter_inner_bags(value: Any) -> Iterator[Bag]:
    """Yield every bag occurring strictly inside ``value`` (depth-first).

    The top-level value itself is not yielded when it is a bag; this mirrors
    the set of bags that the shredding transformation replaces with labels.
    """
    if is_base_value(value):
        return
    if isinstance(value, tuple):
        for component in value:
            if isinstance(component, Bag):
                yield component
                for element in component.elements():
                    yield from iter_inner_bags(element)
            else:
                yield from iter_inner_bags(component)
        return
    if isinstance(value, Bag):
        for element in value.elements():
            yield from iter_inner_bags(element)
        return
    raise TypeError(f"not a nested value: {value!r}")


def render_value(value: Any) -> str:
    """Render a nested value as the paper's brace/angle notation.

    Bags render as ``{a, b^2}`` (multiplicities shown when ≠ 1) and tuples as
    ``⟨x, y⟩``; the output is deterministic (elements sorted by rendering).
    """
    if is_base_value(value):
        return str(value)
    if isinstance(value, tuple):
        return "⟨" + ", ".join(render_value(component) for component in value) + "⟩"
    if isinstance(value, Bag):
        parts = []
        rendered = sorted(
            ((render_value(element), multiplicity) for element, multiplicity in value.items()),
            key=lambda item: item[0],
        )
        for text, multiplicity in rendered:
            if multiplicity == 1:
                parts.append(text)
            else:
                parts.append(f"{text}^{multiplicity}")
        return "{" + ", ".join(parts) + "}"
    raise TypeError(f"not a nested value: {value!r}")
