"""Generalized bags with integer multiplicities and nested-value utilities."""

from repro.bag.bag import Bag, EMPTY_BAG
from repro.bag.builder import (
    REPRO_NO_BUILDER,
    BagBuilder,
    forced_full_copy,
    transients_enabled,
)
from repro.bag.values import (
    intern_key,
    is_base_value,
    is_nested_value,
    iter_inner_bags,
    key_interner_stats,
    nested_cardinalities,
    render_value,
    value_depth,
    value_size,
)

__all__ = [
    "Bag",
    "BagBuilder",
    "EMPTY_BAG",
    "REPRO_NO_BUILDER",
    "forced_full_copy",
    "intern_key",
    "is_base_value",
    "is_nested_value",
    "iter_inner_bags",
    "key_interner_stats",
    "nested_cardinalities",
    "render_value",
    "transients_enabled",
    "value_depth",
    "value_size",
]
