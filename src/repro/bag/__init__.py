"""Generalized bags with integer multiplicities and nested-value utilities."""

from repro.bag.bag import Bag, EMPTY_BAG
from repro.bag.values import (
    is_base_value,
    is_nested_value,
    iter_inner_bags,
    nested_cardinalities,
    render_value,
    value_depth,
    value_size,
)

__all__ = [
    "Bag",
    "EMPTY_BAG",
    "is_base_value",
    "is_nested_value",
    "iter_inner_bags",
    "nested_cardinalities",
    "render_value",
    "value_depth",
    "value_size",
]
