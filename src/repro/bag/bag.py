"""Generalized bags with integer multiplicities.

The paper's data model (Section 3) is built on bags where every element has a
(possibly negative) integer multiplicity.  Bag addition ``⊎`` sums
multiplicities, ``⊖`` negates them and the empty bag is the neutral element,
so bags form a commutative group.  That group structure is exactly what makes
delta processing possible: for any two query results ``Q_old`` and ``Q_new``
there is always an update ``ΔQ`` with ``Q_new = Q_old ⊎ ΔQ``.

:class:`Bag` is immutable and hashable so bags can be nested inside tuples and
inside other bags (the nested data model).  All operations return new bags.
Elements with multiplicity zero are never stored.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Tuple

__all__ = ["Bag", "EMPTY_BAG"]


class Bag:
    """An immutable bag (multiset) with integer multiplicities.

    Elements may be any hashable Python value, including other :class:`Bag`
    instances and tuples containing bags — this is what allows nested
    relations to be represented directly.

    Construction accepts either an iterable of elements (each occurrence
    counts once), an iterable of ``(element, multiplicity)`` pairs via
    :meth:`from_pairs`, or a mapping from elements to multiplicities via
    :meth:`from_mapping`.
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, elements: Iterable[Any] = ()) -> None:
        # Counting occurrences only ever increments, so no zero multiplicity
        # can arise: the dict is built once and used as-is.
        data: Dict[Any, int] = {}
        for element in elements:
            data[element] = data.get(element, 0) + 1
        self._data: Dict[Any, int] = data
        self._hash: int | None = None

    # ------------------------------------------------------------------ #
    # Alternative constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Any, int]]) -> "Bag":
        """Build a bag from ``(element, multiplicity)`` pairs.

        Multiplicities for repeated elements are summed; zero-multiplicity
        entries are dropped.
        """
        data: Dict[Any, int] = {}
        for element, multiplicity in pairs:
            if not isinstance(multiplicity, int):
                raise TypeError(
                    f"multiplicity must be an int, got {type(multiplicity).__name__}"
                )
            updated = data.get(element, 0) + multiplicity
            if updated == 0:
                data.pop(element, None)
            else:
                data[element] = updated
        return cls._from_clean_dict(data)

    @classmethod
    def from_mapping(cls, mapping: Mapping[Any, int]) -> "Bag":
        """Build a bag from a mapping of elements to multiplicities."""
        return cls.from_pairs(mapping.items())

    @classmethod
    def singleton(cls, element: Any, multiplicity: int = 1) -> "Bag":
        """Return the bag ``{element}`` (with the given multiplicity)."""
        if multiplicity == 0:
            return EMPTY_BAG
        return cls._from_clean_dict({element: multiplicity})

    @classmethod
    def empty(cls) -> "Bag":
        """Return the empty bag ``∅``."""
        return EMPTY_BAG

    @classmethod
    def _from_clean_dict(cls, data: Dict[Any, int]) -> "Bag":
        """Internal: wrap an already-normalized dict without copying checks."""
        bag = cls.__new__(cls)
        bag._data = data
        bag._hash = None
        return bag

    # ------------------------------------------------------------------ #
    # Group structure (⊎, ⊖, ∅) and scaling
    # ------------------------------------------------------------------ #
    def union(self, other: "Bag") -> "Bag":
        """Bag addition ``self ⊎ other``: multiplicities are summed."""
        if not isinstance(other, Bag):
            raise TypeError(f"cannot union Bag with {type(other).__name__}")
        if not other._data:
            return self
        if not self._data:
            return other
        # Iterate over the smaller operand: unioning two materialized bags
        # costs time proportional to the smaller one (the assumption used in
        # the paper's Section 2.2 cost analysis).  Cancellations are dropped
        # in place — a single accumulation pass, no build-then-filter.
        if len(self._data) >= len(other._data):
            big, small = self._data, other._data
        else:
            big, small = other._data, self._data
        data = dict(big)
        for element, multiplicity in small.items():
            updated = data.get(element, 0) + multiplicity
            if updated == 0:
                data.pop(element, None)
            else:
                data[element] = updated
        if not data:
            return EMPTY_BAG
        return Bag._from_clean_dict(data)

    def negate(self) -> "Bag":
        """Return ``⊖(self)``: every multiplicity negated."""
        if not self._data:
            return EMPTY_BAG
        return Bag._from_clean_dict({e: -m for e, m in self._data.items()})

    def difference(self, other: "Bag") -> "Bag":
        """Return ``self ⊎ ⊖(other)`` (group difference, *not* monus).

        Computed in one subtraction pass over ``other`` — the negated
        intermediate bag of the definitional ``self ⊎ ⊖(other)`` is never
        materialized.
        """
        if not isinstance(other, Bag):
            raise TypeError(f"cannot subtract {type(other).__name__} from Bag")
        if not other._data:
            return self
        if not self._data:
            return other.negate()
        data = dict(self._data)
        for element, multiplicity in other._data.items():
            updated = data.get(element, 0) - multiplicity
            if updated == 0:
                data.pop(element, None)
            else:
                data[element] = updated
        if not data:
            return EMPTY_BAG
        return Bag._from_clean_dict(data)

    def scale(self, factor: int) -> "Bag":
        """Multiply every multiplicity by ``factor``."""
        if not isinstance(factor, int):
            raise TypeError("scale factor must be an int")
        if factor == 0 or not self._data:
            return EMPTY_BAG
        if factor == 1:
            return self
        return Bag._from_clean_dict({e: m * factor for e, m in self._data.items()})

    def __add__(self, other: "Bag") -> "Bag":
        return self.union(other)

    def __neg__(self) -> "Bag":
        return self.negate()

    def __sub__(self, other: "Bag") -> "Bag":
        return self.difference(other)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def multiplicity(self, element: Any) -> int:
        """Return the multiplicity of ``element`` (0 if absent)."""
        return self._data.get(element, 0)

    def __contains__(self, element: Any) -> bool:
        return element in self._data

    def elements(self) -> Iterator[Any]:
        """Iterate over distinct elements (ignoring multiplicities)."""
        return iter(self._data)

    def items(self) -> Iterator[Tuple[Any, int]]:
        """Iterate over ``(element, multiplicity)`` pairs."""
        return iter(self._data.items())

    def expand(self) -> Iterator[Any]:
        """Iterate over elements repeated by their (positive) multiplicity.

        Elements with negative multiplicity are skipped; use :meth:`items`
        when negative counts matter.
        """
        for element, multiplicity in self._data.items():
            for _ in range(max(multiplicity, 0)):
                yield element

    def distinct_size(self) -> int:
        """Number of distinct elements."""
        return len(self._data)

    def total_multiplicity(self) -> int:
        """Sum of all multiplicities (may be negative)."""
        return sum(self._data.values())

    def cardinality(self) -> int:
        """Sum of absolute multiplicities — the ``|X|`` used by ``size``.

        This counts repetitions, matching the paper's convention that
        cardinality estimates include duplicate tuples.
        """
        return sum(abs(m) for m in self._data.values())

    def is_empty(self) -> bool:
        """True iff the bag has no elements with non-zero multiplicity."""
        return not self._data

    def has_negative(self) -> bool:
        """True iff some element has a negative multiplicity."""
        return any(m < 0 for m in self._data.values())

    def max_multiplicity(self) -> int:
        """Largest absolute multiplicity (0 for the empty bag)."""
        if not self._data:
            return 0
        return max(abs(m) for m in self._data.values())

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def as_dict(self) -> Dict[Any, int]:
        """Return a copy of the underlying element → multiplicity mapping."""
        return dict(self._data)

    # ------------------------------------------------------------------ #
    # Structural helpers
    # ------------------------------------------------------------------ #
    def map(self, func) -> "Bag":
        """Apply ``func`` to every element, keeping multiplicities.

        If ``func`` maps two elements to the same value their multiplicities
        are summed.
        """
        data: Dict[Any, int] = {}
        for element, multiplicity in self._data.items():
            image = func(element)
            data[image] = data.get(image, 0) + multiplicity
        return Bag._from_clean_dict({e: m for e, m in data.items() if m != 0})

    def filter(self, predicate) -> "Bag":
        """Keep only elements for which ``predicate`` returns true."""
        return Bag._from_clean_dict(
            {e: m for e, m in self._data.items() if predicate(e)}
        )

    def flat_map(self, func) -> "Bag":
        """Monadic bind: ``func`` returns a Bag per element; results are summed.

        The multiplicity of the source element scales the returned bag, which
        is exactly the semantics of ``for x in e1 union e2`` in Figure 3.
        """
        result: Dict[Any, int] = {}
        for element, multiplicity in self._data.items():
            inner = func(element)
            if not isinstance(inner, Bag):
                raise TypeError("flat_map function must return a Bag")
            for inner_element, inner_multiplicity in inner._data.items():
                combined = multiplicity * inner_multiplicity
                if combined == 0:
                    continue
                updated = result.get(inner_element, 0) + combined
                if updated == 0:
                    result.pop(inner_element, None)
                else:
                    result[inner_element] = updated
        return Bag._from_clean_dict(result)

    def product(self, other: "Bag") -> "Bag":
        """Cartesian product: pairs with multiplied multiplicities."""
        if not isinstance(other, Bag):
            raise TypeError(f"cannot take product of Bag with {type(other).__name__}")
        data: Dict[Any, int] = {}
        for left, left_mult in self._data.items():
            for right, right_mult in other._data.items():
                data[(left, right)] = left_mult * right_mult
        return Bag._from_clean_dict({e: m for e, m in data.items() if m != 0})

    def flatten(self) -> "Bag":
        """Union of all inner bags (elements must themselves be bags)."""
        result = EMPTY_BAG
        for element, multiplicity in self._data.items():
            if not isinstance(element, Bag):
                raise TypeError("flatten requires a bag of bags")
            result = result.union(element.scale(multiplicity))
        return result

    def group_by(self, key_func) -> Dict[Any, "Bag"]:
        """Partition the bag into sub-bags keyed by ``key_func``."""
        groups: Dict[Any, Dict[Any, int]] = {}
        for element, multiplicity in self._data.items():
            key = key_func(element)
            groups.setdefault(key, {})[element] = multiplicity
        return {key: Bag._from_clean_dict(data) for key, data in groups.items()}

    # ------------------------------------------------------------------ #
    # Pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[Any, int]:
        """Pickle only the multiplicity dict.

        The cached structural hash is deliberately dropped: ``hash(str)`` is
        seeded per interpreter, so a hash captured in one process would be a
        lie in another.  ``__setstate__`` restores the lazy-recompute state,
        which is what makes bag snapshots *sendable* — a round-trip through
        ``pickle`` preserves equality, and re-hashing in the receiving
        process is consistent with every other hash computed there.
        """
        return self._data

    def __setstate__(self, state: Dict[Any, int]) -> None:
        self._data = state
        self._hash = None

    # ------------------------------------------------------------------ #
    # Equality / hashing / display
    # ------------------------------------------------------------------ #
    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._data == other._data

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._data.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._data:
            return "Bag{}"
        parts = []
        for element, multiplicity in sorted(
            self._data.items(), key=lambda item: repr(item[0])
        ):
            if multiplicity == 1:
                parts.append(repr(element))
            else:
                parts.append(f"{element!r}^{multiplicity}")
        return "Bag{" + ", ".join(parts) + "}"


#: The canonical empty bag, shared to avoid needless allocations.
EMPTY_BAG = Bag()
