"""Transient bag builders: O(|Δ|) mutation under immutable-bag semantics.

:class:`~repro.bag.bag.Bag` is immutable, which is what makes snapshots,
nesting and hashing safe — but it also means that the *update path* of the
maintenance engines used to rebuild a full multiplicity dict on every
``result ⊎ Δresult`` and every store refresh, so a one-tuple update to a
million-tuple relation still paid ``O(|DB|)``.  A :class:`BagBuilder` is the
transient (in the Clojure sense) that closes that gap:

* it owns one mutable ``element → multiplicity`` dict and folds deltas into
  it **in place** (:meth:`apply_pairs` / :meth:`apply_bag` / :meth:`add`),
  dropping cancelled entries as it goes — ``O(|Δ|)`` per application;
* :meth:`freeze` hands out an immutable :class:`Bag` **without copying**
  (the bag adopts the builder's dict via ``Bag._from_clean_dict``), so
  taking a snapshot is ``O(1)``;
* the first mutation *after* a freeze is copy-on-write: if the frozen
  snapshot is still referenced anywhere else, the builder copies the dict
  once so the snapshot stays immutable; if the snapshot has already been
  dropped (the overwhelmingly common case — per-update evaluation
  environments die before the store mutates), the builder detects it via
  the reference count and keeps mutating in place, preserving ``O(|Δ|)``.

On interpreters without ``sys.getrefcount`` the builder conservatively
copies after every freeze — still correct, just without the in-place
optimization.

Setting the environment variable :data:`REPRO_NO_BUILDER` (to any non-empty
value) disables the transient path: every application degrades to the
immutable ``freeze().union(delta)`` full-copy chain the seed code used.
This is the escape hatch the ``--benchmark apply`` micro-benchmark and the
CI smoke check use to measure the builder's own contribution.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

from repro.bag.bag import Bag, EMPTY_BAG

__all__ = [
    "REPRO_NO_BUILDER",
    "BagBuilder",
    "forced_full_copy",
    "transients_enabled",
]

#: Environment variable that forces the seed's full-copy update application.
REPRO_NO_BUILDER = "REPRO_NO_BUILDER"

#: ``sys.getrefcount`` where available (CPython); ``None`` elsewhere, in
#: which case copy-on-write always copies (correct, conservatively slower).
_getrefcount = getattr(sys, "getrefcount", None)


def transients_enabled() -> bool:
    """True unless the ``REPRO_NO_BUILDER`` escape hatch is set."""
    return not os.environ.get(REPRO_NO_BUILDER)


@contextmanager
def forced_full_copy(disabled: bool = True) -> Iterator[None]:
    """Temporarily force (or undo) the seed's full-copy update application.

    Mirrors :func:`repro.nrc.compile.forced_interpretation` and
    :func:`repro.storage.forced_no_index`: inside the block every
    :class:`BagBuilder` application routes through immutable
    ``Bag.union`` chains — one full dict copy per applied delta — which is
    how the benchmarks measure the transient layer's own contribution.
    """
    saved = os.environ.get(REPRO_NO_BUILDER)
    try:
        if disabled:
            os.environ[REPRO_NO_BUILDER] = "1"
        else:
            os.environ.pop(REPRO_NO_BUILDER, None)
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_NO_BUILDER, None)
        else:
            os.environ[REPRO_NO_BUILDER] = saved


class BagBuilder:
    """A mutable bag accumulator with O(1) freezing and copy-on-write.

    The builder is the single mutation primitive of the update path: relation
    stores, view-result accumulators and the shredded flat mirror all own one
    and fold deltas into it.  ``freeze()`` returns the canonical immutable
    snapshot; the snapshot and the builder share the dict until the next
    mutation, which copies only if the snapshot is still alive elsewhere.

    ``freezes`` counts how many distinct snapshots were actually
    materialized (surfaced by ``storage_report()``) — a builder that is never
    read between updates freezes nothing and mutates in place forever.
    """

    __slots__ = ("_data", "_frozen", "freezes")

    def __init__(self, pairs: Optional[Iterable[Tuple[Any, int]]] = None) -> None:
        self._data: Dict[Any, int] = {}
        self._frozen: Optional[Bag] = None
        self.freezes = 0
        if pairs is not None:
            self.apply_pairs(pairs)

    @classmethod
    def from_bag(cls, bag: Bag) -> "BagBuilder":
        """Adopt ``bag`` as the initial contents without copying.

        The builder starts in the frozen-shared state: the first mutation
        copies the dict iff ``bag`` is still referenced by the caller (it
        usually is at first, and usually is not by the next update).
        """
        if not isinstance(bag, Bag):
            raise TypeError(f"expected a Bag, got {type(bag).__name__}")
        builder = cls.__new__(cls)
        builder._data = bag._data
        builder._frozen = bag
        builder.freezes = 0
        return builder

    # ------------------------------------------------------------------ #
    # Copy-on-write plumbing
    # ------------------------------------------------------------------ #
    def _writable(self) -> Dict[Any, int]:
        """The mutable dict, un-sharing from a live frozen snapshot first."""
        frozen = self._frozen
        if frozen is not None:
            self._frozen = None
            # After clearing the attribute the only references left *here*
            # are the local and getrefcount's argument (2).  Anything above
            # that means the snapshot escaped — give it its own copy.  The
            # dict itself is checked too: an iterator or view obtained from
            # the snapshot (``bag.elements()``, ``bag.items()``) keeps the
            # *dict* alive without keeping the Bag alive, and mutating under
            # it would raise mid-iteration (its references: our ``_data``
            # attribute, the snapshot's, and getrefcount's argument = 3).
            if (
                _getrefcount is None
                or _getrefcount(frozen) > 2
                or _getrefcount(self._data) > 3
            ):
                self._data = dict(self._data)
        return self._data

    def _adopt(self, bag: Bag) -> None:
        """Full-copy fallback: become ``bag`` (the ``REPRO_NO_BUILDER`` leg)."""
        self._data = bag._data
        self._frozen = bag

    # ------------------------------------------------------------------ #
    # Mutation (all O(|Δ|))
    # ------------------------------------------------------------------ #
    def add(self, element: Any, multiplicity: int = 1) -> None:
        """Fold one ``(element, multiplicity)`` entry in."""
        if not isinstance(multiplicity, int):
            raise TypeError(
                f"multiplicity must be an int, got {type(multiplicity).__name__}"
            )
        if multiplicity == 0:
            return
        if os.environ.get(REPRO_NO_BUILDER):
            self._adopt(self.freeze().union(Bag.singleton(element, multiplicity)))
            return
        data = self._writable()
        updated = data.get(element, 0) + multiplicity
        if updated == 0:
            data.pop(element, None)
        else:
            data[element] = updated

    def apply_pairs(self, pairs: Iterable[Tuple[Any, int]]) -> None:
        """Fold ``(element, multiplicity)`` pairs in — one pass, no copies."""
        if os.environ.get(REPRO_NO_BUILDER):
            self._adopt(self.freeze().union(Bag.from_pairs(pairs)))
            return
        data = self._writable()
        for element, multiplicity in pairs:
            if not isinstance(multiplicity, int):
                raise TypeError(
                    f"multiplicity must be an int, got {type(multiplicity).__name__}"
                )
            updated = data.get(element, 0) + multiplicity
            if updated == 0:
                data.pop(element, None)
            else:
                data[element] = updated

    def apply_bag(self, delta: Bag, scale: int = 1) -> None:
        """Fold a delta bag in (``self ⊎ scale·delta``) — walks only ``delta``."""
        if not isinstance(delta, Bag):
            raise TypeError(f"expected a Bag delta, got {type(delta).__name__}")
        if not isinstance(scale, int):
            raise TypeError("scale factor must be an int")
        if scale == 0 or not delta._data:
            return
        if os.environ.get(REPRO_NO_BUILDER):
            self._adopt(self.freeze().union(delta.scale(scale)))
            return
        data = self._writable()
        if scale == 1:
            for element, multiplicity in delta._data.items():
                updated = data.get(element, 0) + multiplicity
                if updated == 0:
                    data.pop(element, None)
                else:
                    data[element] = updated
        else:
            for element, multiplicity in delta._data.items():
                updated = data.get(element, 0) + multiplicity * scale
                if updated == 0:
                    data.pop(element, None)
                else:
                    data[element] = updated

    def clear(self) -> None:
        """Reset to the empty bag."""
        self._data = {}
        self._frozen = None

    def adopt_dict(self, data: Dict[Any, int]) -> None:
        """Become ``data`` (an already-normalized multiplicity dict), in O(1).

        This is the fold-back half of shard ownership transfer
        (:meth:`repro.storage.store.RelationStore.adopt_shard`): a worker
        returns the folded shard dict and the store installs it wholesale.
        Replacing the dict reference — instead of mutating in place — leaves
        any retained frozen snapshot untouched, so no copy-on-write pass is
        needed; the cumulative ``freezes`` counter survives.
        """
        self._data = data
        self._frozen = None

    # ------------------------------------------------------------------ #
    # Pickling (sendable execution state)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, Any]:
        return {"data": self._data, "freezes": self.freezes}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._data = state["data"]
        self._frozen = None
        self.freezes = state["freezes"]

    # ------------------------------------------------------------------ #
    # Freezing
    # ------------------------------------------------------------------ #
    def freeze(self) -> Bag:
        """The canonical immutable snapshot of the current contents.

        O(1): the returned bag adopts the builder's dict.  Repeated calls
        without intervening mutation return the *same* object, so identity
        checks over snapshots (e.g. the storage layer's index provider)
        remain meaningful.
        """
        frozen = self._frozen
        if frozen is None:
            data = self._data
            frozen = EMPTY_BAG if not data else Bag._from_clean_dict(data)
            self._frozen = frozen
            self.freezes += 1
        return frozen

    @property
    def frozen(self) -> Optional[Bag]:
        """The live snapshot, or ``None`` if the builder mutated since."""
        return self._frozen

    # ------------------------------------------------------------------ #
    # Read-only queries (never freeze)
    # ------------------------------------------------------------------ #
    def multiplicity(self, element: Any) -> int:
        return self._data.get(element, 0)

    def __contains__(self, element: Any) -> bool:
        return element in self._data

    def __len__(self) -> int:
        return len(self._data)

    def is_empty(self) -> bool:
        return not self._data

    def elements(self) -> Iterator[Any]:
        """Distinct elements, negative multiplicities included — the same
        contract as :meth:`Bag.elements` (``Bag.expand`` is the
        positive-repetition iterator; the builder has no counterpart)."""
        return iter(self._data)

    def items(self) -> Iterator[Tuple[Any, int]]:
        """``(element, multiplicity)`` pairs, matching :meth:`Bag.items`."""
        return iter(self._data.items())

    def distinct_size(self) -> int:
        return len(self._data)

    def cardinality(self) -> int:
        """Sum of absolute multiplicities (matches :meth:`Bag.cardinality`)."""
        return sum(abs(m) for m in self._data.values())

    def __repr__(self) -> str:
        state = "frozen-shared" if self._frozen is not None else "transient"
        return f"BagBuilder({len(self._data)} distinct, {state}, freezes={self.freezes})"
