"""Compact binary codec for bag pairs — the wire format of sendable shards.

The execution backends (:mod:`repro.engine.scheduler`) move shard contents
and partitioned deltas between processes.  Pickling arbitrary objects would
work mechanically, but it would also *lie*: values whose equality or hash is
identity-dependent (``NaN`` floats, arbitrary user objects) do not survive a
process boundary faithfully — ``pickle.loads(pickle.dumps(nan))`` is a new
object with a new id-based hash, so a worker's fold could keep two dict
entries where the serial engine keeps one.  This codec therefore plays two
roles at once:

* a **compact binary encoding** for ``(element, multiplicity)`` pairs over
  the value vocabulary of the data model — ``None``, booleans, ints
  (arbitrary precision), floats, strings, bytes, tuples, nested
  :class:`~repro.bag.bag.Bag` values and :class:`~repro.labels.Label`
  occurrences — with LEB128 varints and zigzag-encoded multiplicities;
* the **sendability contract**: :exc:`UnsendableValueError` is raised for
  exactly the values whose cross-process round-trip would not preserve
  dict-key semantics (non-self-equal floats, unknown types).  The process
  backend treats that error as a poison signal and falls back to the
  in-process apply path, so offloading can never change results.

Round-trip guarantee (the property tests pin it): for every encodable value
``decode_value(encode_value(v)) == v``, the decoded value hashes equal to
the original *within the receiving process*, and bag/dict folds over decoded
values agree with folds over the originals.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterable, List, Tuple

from repro.bag.bag import Bag, EMPTY_BAG

__all__ = [
    "UnsendableValueError",
    "decode_bag",
    "decode_pairs",
    "decode_value",
    "encode_bag",
    "encode_pairs",
    "encode_value",
    "is_sendable",
]


class UnsendableValueError(ValueError):
    """A value whose cross-process round-trip would not be faithful.

    Raised for ``NaN`` (equality is identity-based across pickling, so a
    shipped shard could diverge from the serial fold) and for values outside
    the codec's vocabulary (arbitrary objects hash by id).  The process
    backend catches this and keeps the delta on the in-process path.
    """


_TAG_NONE = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT = 0x03
_TAG_STR = 0x04
_TAG_FLOAT = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_BAG = 0x08
_TAG_LABEL = 0x09

_FLOAT_PACK = struct.Struct(">d")


def _write_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint (arbitrary precision)."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_value(out: bytearray, value: Any) -> None:
    # bool before int: bool is an int subclass but hashes like one, so either
    # tag would round-trip — the dedicated tag keeps ``True`` distinct in repr
    # and saves the varint.
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif type(value) is int:
        out.append(_TAG_INT)
        encoded = (value << 1) if value >= 0 else (((-value) << 1) - 1)
        _write_uvarint(out, encoded)
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        _write_uvarint(out, len(raw))
        out += raw
    elif type(value) is float:
        if value != value:
            raise UnsendableValueError(
                "NaN is not sendable: its hash is id-based, so a cross-process "
                "round-trip would not preserve dict-key identity"
            )
        out.append(_TAG_FLOAT)
        out += _FLOAT_PACK.pack(value)
    elif type(value) is bytes:
        out.append(_TAG_BYTES)
        _write_uvarint(out, len(value))
        out += value
    elif type(value) is tuple:
        out.append(_TAG_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    elif isinstance(value, Bag):
        # ShardedBag included: the encoding is the merged contents — shard
        # structure is a storage-layer concern, not a value-level one.
        data = value._data
        out.append(_TAG_BAG)
        _write_uvarint(out, len(data))
        for element, multiplicity in data.items():
            _write_value(out, element)
            encoded = (multiplicity << 1) if multiplicity >= 0 else (((-multiplicity) << 1) - 1)
            _write_uvarint(out, encoded)
    elif _is_label(value):
        out.append(_TAG_LABEL)
        _write_value(out, value.iota)
        _write_value(out, value.values)
    else:
        raise UnsendableValueError(
            f"{type(value).__name__} is outside the sendable value vocabulary"
        )


def _is_label(value: Any) -> bool:
    from repro.labels import Label

    return isinstance(value, Label)


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def _read_value(data: bytes, pos: int) -> Tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _read_uvarint(data, pos)
        return _unzigzag(raw), pos
    if tag == _TAG_STR:
        length, pos = _read_uvarint(data, pos)
        return data[pos : pos + length].decode("utf-8"), pos + length
    if tag == _TAG_FLOAT:
        return _FLOAT_PACK.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_BYTES:
        length, pos = _read_uvarint(data, pos)
        return data[pos : pos + length], pos + length
    if tag == _TAG_TUPLE:
        length, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(length):
            item, pos = _read_value(data, pos)
            items.append(item)
        return tuple(items), pos
    if tag == _TAG_BAG:
        length, pos = _read_uvarint(data, pos)
        bag_data: Dict[Any, int] = {}
        for _ in range(length):
            element, pos = _read_value(data, pos)
            raw, pos = _read_uvarint(data, pos)
            bag_data[element] = _unzigzag(raw)
        return (EMPTY_BAG if not bag_data else Bag._from_clean_dict(bag_data)), pos
    if tag == _TAG_LABEL:
        from repro.labels import Label

        iota, pos = _read_value(data, pos)
        values, pos = _read_value(data, pos)
        return Label(iota, values), pos
    raise ValueError(f"corrupt bag-pair payload: unknown tag 0x{tag:02x}")


# ---------------------------------------------------------------------- #
# Public API
# ---------------------------------------------------------------------- #
def encode_value(value: Any) -> bytes:
    """Encode one value; raises :exc:`UnsendableValueError` outside the contract."""
    out = bytearray()
    _write_value(out, value)
    return bytes(out)


def decode_value(payload: bytes) -> Any:
    value, pos = _read_value(payload, 0)
    if pos != len(payload):
        raise ValueError("corrupt bag-pair payload: trailing bytes")
    return value


def encode_pairs(pairs: Iterable[Tuple[Any, int]]) -> bytes:
    """Encode ``(element, multiplicity)`` pairs (a delta, a shard's contents)."""
    out = bytearray()
    body = bytearray()
    count = 0
    for element, multiplicity in pairs:
        _write_value(body, element)
        encoded = (multiplicity << 1) if multiplicity >= 0 else (((-multiplicity) << 1) - 1)
        _write_uvarint(body, encoded)
        count += 1
    _write_uvarint(out, count)
    out += body
    return bytes(out)


def decode_pairs(payload: bytes) -> List[Tuple[Any, int]]:
    count, pos = _read_uvarint(payload, 0)
    pairs: List[Tuple[Any, int]] = []
    for _ in range(count):
        element, pos = _read_value(payload, pos)
        raw, pos = _read_uvarint(payload, pos)
        pairs.append((element, _unzigzag(raw)))
    if pos != len(payload):
        raise ValueError("corrupt bag-pair payload: trailing bytes")
    return pairs


def encode_bag(bag: Bag) -> bytes:
    """Encode a bag's contents (shard-structure agnostic)."""
    return encode_pairs(bag._data.items())


def decode_bag(payload: bytes) -> Bag:
    return Bag.from_pairs(decode_pairs(payload))


def is_sendable(value: Any) -> bool:
    """True iff ``value`` round-trips faithfully under this codec."""
    try:
        encode_value(value)
    except UnsendableValueError:
        return False
    return True
