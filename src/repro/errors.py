"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class TypeCheckError(ReproError):
    """An NRC+ expression does not satisfy the typing rules of Figure 3."""


class EvaluationError(ReproError):
    """Runtime failure while evaluating an NRC+ expression."""


class UnboundVariableError(EvaluationError):
    """A variable was referenced without a binding in the environment."""


class CompileError(ReproError):
    """An expression contains a construct the closure compiler cannot lower.

    Callers that can fall back to the interpreter should use
    :func:`repro.nrc.compile.try_compile`, which converts this error into a
    ``None`` result.
    """


class NotInFragmentError(ReproError):
    """An operation requires IncNRC+ but the expression falls outside it.

    Raised, for example, when deriving a delta for a query that uses the
    unrestricted singleton constructor ``sng(e)`` with an input-dependent
    body (Section 4 of the paper): such queries must first be shredded.
    """


class DictionaryConflictError(ReproError):
    """Label union ``d1 ∪ d2`` found two disagreeing definitions for a label.

    This mirrors the ``error`` outcome of the label-union semantics in
    Section 5.2 of the paper.
    """


class ConsistencyError(ReproError):
    """A shredded value violates Definition 1 or 2 (Appendix C.3)."""


class ShreddingError(ReproError):
    """The shredding transformation could not be applied."""


class CostModelError(ReproError):
    """Failure while computing cost-domain values (Section 4.2)."""


class CircuitError(ReproError):
    """Failure while building or evaluating a gate-level circuit."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""


class EngineError(ReproError):
    """Misuse of the :mod:`repro.engine` facade.

    Raised for duplicate view names, unknown maintenance strategies, or
    malformed inputs handed to :class:`repro.engine.Engine`.
    """
