"""Labels: the names given to inner bags by the shredding transformation.

Following Section 5.1, a label is a pair ``⟨ι, ε⟩`` of

* a *static index* ``ι`` that uniquely identifies either the ``sng_ι(e)``
  occurrence the label replaces or the input-bag occurrence it names, and
* the *value assignment* ``ε`` for the free element variables of the replaced
  inner query (a tuple of base values and labels).

Incorporating ``ε`` in the label lets labels be created independently from
their defining dictionary and guarantees that a label's definition is
determined by the label itself — the property used to prove consistency of
shredded values (Appendix C.3).

:class:`LabelFactory` produces the fresh indices used when shredding *input*
values (the ``D_C`` mappings of Figure 9), where every inner bag receives its
own label.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Tuple

__all__ = ["Label", "LabelFactory"]


@dataclass(frozen=True, eq=False)
class Label:
    """An immutable, hashable label ``⟨ι, ε⟩``.

    Labels sit inside every flat shredded tuple, so they are hashed on every
    dict/bucket operation of the update path; the structural hash is computed
    once and cached (``ε`` may itself contain labels, so hashing recurses).
    """

    iota: str
    values: Tuple[Any, ...] = ()

    def __eq__(self, other: Any) -> bool:
        if other is self:
            return True
        if not isinstance(other, Label):
            return NotImplemented
        return self.iota == other.iota and self.values == other.values

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.iota, self.values))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        """Pickle without the cached hash: string hashing is seeded per
        process, so a captured hash would be stale in the receiving one.
        Equality is structural (``iota`` + ``values``), so labels survive a
        pickle round-trip — the property the sendable execution state relies
        on when shredded flat deltas move to worker processes."""
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def render(self) -> str:
        """Human-readable rendering used by the pretty printer."""
        if not self.values:
            return f"⟨{self.iota}⟩"
        rendered = ", ".join(str(value) for value in self.values)
        return f"⟨{self.iota}, {rendered}⟩"

    def __repr__(self) -> str:
        return f"Label({self.iota!r}, {self.values!r})"


class LabelFactory:
    """Produces fresh static indices for input-value shredding.

    Each call to :meth:`fresh` returns a new :class:`Label` whose index has
    never been produced by this factory before.  The ``prefix`` makes label
    provenance readable in debug output (e.g. ``"M.inner"`` for inner bags of
    relation ``M``).
    """

    def __init__(self, prefix: str = "lbl") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self, hint: str = "") -> Label:
        """Return a fresh label with empty value part."""
        number = next(self._counter)
        if hint:
            iota = f"{self._prefix}.{hint}.{number}"
        else:
            iota = f"{self._prefix}.{number}"
        return Label(iota)

    def fresh_index(self, hint: str = "") -> str:
        """Return a fresh static index (without wrapping it in a Label)."""
        return self.fresh(hint).iota
