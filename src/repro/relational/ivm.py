"""First-order IVM for flat relational-algebra views (the Appendix A.1 baseline)."""

from __future__ import annotations

import time
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.bag.bag import Bag
from repro.ivm.views import MaintenanceStats
from repro.instrument import OpCounter
from repro.relational import algebra as ra
from repro.relational.delta import relational_delta, relational_sources

__all__ = ["RelationalDatabase", "RelationalIVMView", "RelationalNaiveView"]


class RelationalDatabase:
    """A flat database: named bags of positional tuples with column schemas."""

    def __init__(self) -> None:
        self._schemas: Dict[str, ra.RelSchema] = {}
        self._relations: Dict[str, Bag] = {}
        self._views = []

    def register(self, name: str, schema: ra.RelSchema, instance: Optional[Bag] = None) -> ra.BaseRel:
        self._schemas[name] = schema
        self._relations[name] = instance or Bag()
        return ra.BaseRel(name, schema)

    def relation(self, name: str) -> Bag:
        return self._relations[name]

    def relations(self) -> Mapping[str, Bag]:
        return dict(self._relations)

    def register_view(self, view) -> None:
        self._views.append(view)

    def apply_update(self, deltas: Mapping[str, Bag]) -> None:
        """Notify views (pre-mutation) and apply the deltas through bag union."""
        for view in list(self._views):
            view.on_update(deltas)
        for name, bag in deltas.items():
            self._relations[name] = self._relations[name].union(bag)


class RelationalNaiveView:
    """Flat baseline: recompute the RA expression after every update."""

    def __init__(self, expr: ra.RAExpr, database: RelationalDatabase, register: bool = True) -> None:
        self._expr = expr
        self._database = database
        self.stats = MaintenanceStats()
        counter = OpCounter()
        started = time.perf_counter()
        self._result = expr.evaluate(database.relations())
        counter.increment("tuples_scanned", self._result.cardinality())
        self.stats.record_init(time.perf_counter() - started, counter)
        if register:
            database.register_view(self)

    def result(self) -> Bag:
        return self._result

    def on_update(self, deltas: Mapping[str, Bag]) -> None:
        counter = OpCounter()
        started = time.perf_counter()
        post = dict(self._database.relations())
        for name, bag in deltas.items():
            post[name] = post[name].union(bag)
        self._result = self._expr.evaluate(post)
        counter.increment("tuples_scanned", sum(bag.cardinality() for bag in post.values()))
        self.stats.record_update(time.perf_counter() - started, counter)


class RelationalIVMView:
    """Flat first-order IVM: maintain the view with the Appendix A.1 delta rules."""

    def __init__(
        self,
        expr: ra.RAExpr,
        database: RelationalDatabase,
        targets: Optional[Iterable[str]] = None,
        register: bool = True,
    ) -> None:
        self._expr = expr
        self._database = database
        self._targets = tuple(sorted(targets)) if targets is not None else tuple(
            sorted(relational_sources(expr))
        )
        self._delta_expr = relational_delta(expr, self._targets)
        self.stats = MaintenanceStats()
        counter = OpCounter()
        started = time.perf_counter()
        self._result = expr.evaluate(database.relations())
        counter.increment("tuples_scanned", self._result.cardinality())
        self.stats.record_init(time.perf_counter() - started, counter)
        if register:
            database.register_view(self)

    @property
    def delta_expr(self) -> ra.RAExpr:
        return self._delta_expr

    def result(self) -> Bag:
        return self._result

    def on_update(self, deltas: Mapping[str, Bag]) -> None:
        counter = OpCounter()
        started = time.perf_counter()
        delta_symbols: Dict[Tuple[str, int], Bag] = {
            (name, 1): bag for name, bag in deltas.items() if not bag.is_empty()
        }
        if delta_symbols:
            change = self._delta_expr.evaluate(self._database.relations(), delta_symbols)
            counter.increment("tuples_scanned", change.cardinality())
            self._result = self._result.union(change)
        self.stats.record_update(time.perf_counter() - started, counter)
