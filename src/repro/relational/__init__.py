"""Flat relational algebra on bags (RA+), its delta rules and flat IVM views."""

from repro.relational.algebra import (
    BaseRel,
    CrossProduct,
    DeltaRel,
    NegateRel,
    Project,
    RAExpr,
    RelSchema,
    Rename,
    Select,
    ThetaJoin,
    UnionAll,
)
from repro.relational.delta import relational_delta, relational_sources
from repro.relational.ivm import RelationalDatabase, RelationalIVMView, RelationalNaiveView

__all__ = [
    "BaseRel",
    "CrossProduct",
    "DeltaRel",
    "NegateRel",
    "Project",
    "RAExpr",
    "RelSchema",
    "Rename",
    "Select",
    "ThetaJoin",
    "UnionAll",
    "relational_delta",
    "relational_sources",
    "RelationalDatabase",
    "RelationalIVMView",
    "RelationalNaiveView",
]
