"""Delta rules for the flat relational algebra (Appendix A.1).

The transformation maps every RA+ expression over base relations ``R_i`` to
an expression over ``R_i`` and update symbols ``ΔR_i`` satisfying::

    e[R ⊎ ΔR] = e[R] ⊎ δ(e)[R, ΔR]

with the rules ``δ(R) = ΔR``, ``δ(σ_p e) = σ_p δ(e)``, ``δ(Π e) = Π δ(e)``,
``δ(e1 ⊎ e2) = δ(e1) ⊎ δ(e2)`` and
``δ(e1 × e2) = δ(e1)×e2 ⊎ e1×δ(e2) ⊎ δ(e1)×δ(e2)`` (joins behave like the
product).  Negative multiplicities in ``ΔR`` express deletions exactly as in
the bag-group setting of the nested calculus.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from repro.errors import NotInFragmentError
from repro.relational import algebra as ra

__all__ = ["relational_delta", "relational_sources"]


def relational_sources(expr: ra.RAExpr) -> FrozenSet[str]:
    """Names of base relations referenced by ``expr``."""
    names: Set[str] = set()

    def _walk(node: ra.RAExpr) -> None:
        if isinstance(node, ra.BaseRel):
            names.add(node.name)
        for child in node.children():
            _walk(child)

    _walk(expr)
    return frozenset(names)


def relational_delta(
    expr: ra.RAExpr,
    targets: Optional[Iterable[str]] = None,
    order: int = 1,
) -> ra.RAExpr:
    """Derive the delta of a flat RA+ expression with respect to the targets."""
    target_set = frozenset(targets) if targets is not None else relational_sources(expr)
    return _delta(expr, target_set, order)


def _depends(expr: ra.RAExpr, targets: FrozenSet[str]) -> bool:
    if isinstance(expr, ra.BaseRel):
        return expr.name in targets
    return any(_depends(child, targets) for child in expr.children())


def _empty_of(expr: ra.RAExpr) -> ra.RAExpr:
    """An expression denoting the empty bag with the same schema.

    ``e ⊎ ⊖(e)`` is identically empty; it keeps the schema without requiring
    a dedicated constant node.
    """
    return ra.UnionAll(expr, ra.NegateRel(expr))


def _delta(expr: ra.RAExpr, targets: FrozenSet[str], order: int) -> ra.RAExpr:
    if not _depends(expr, targets):
        return _EmptyRel(expr.schema())
    if isinstance(expr, ra.BaseRel):
        return ra.DeltaRel(expr.name, expr.rel_schema, order)
    if isinstance(expr, ra.DeltaRel):
        return _EmptyRel(expr.rel_schema)
    if isinstance(expr, ra.Select):
        return ra.Select(_delta(expr.source, targets, order), expr.predicate, expr.description)
    if isinstance(expr, ra.Project):
        return ra.Project(_delta(expr.source, targets, order), expr.columns)
    if isinstance(expr, ra.Rename):
        return ra.Rename(_delta(expr.source, targets, order), expr.mapping)
    if isinstance(expr, ra.NegateRel):
        return ra.NegateRel(_delta(expr.source, targets, order))
    if isinstance(expr, ra.UnionAll):
        return ra.UnionAll(
            _delta(expr.left, targets, order), _delta(expr.right, targets, order)
        )
    if isinstance(expr, (ra.CrossProduct, ra.ThetaJoin)):
        left_delta = _delta(expr.left, targets, order)
        right_delta = _delta(expr.right, targets, order)
        combine = (
            (lambda a, b: ra.CrossProduct(a, b))
            if isinstance(expr, ra.CrossProduct)
            else (lambda a, b: ra.ThetaJoin(a, b, expr.on))
        )
        return ra.UnionAll(
            ra.UnionAll(combine(left_delta, expr.right), combine(expr.left, right_delta)),
            combine(left_delta, right_delta),
        )
    raise NotInFragmentError(f"no flat delta rule for {type(expr).__name__}")


class _EmptyRel(ra.RAExpr):
    """The constant empty relation of a given schema."""

    def __init__(self, schema: ra.RelSchema) -> None:
        self._schema = schema

    def schema(self) -> ra.RelSchema:
        return self._schema

    def evaluate(self, database, deltas=None):
        from repro.bag.bag import EMPTY_BAG

        return EMPTY_BAG

    def __repr__(self) -> str:
        return "∅"
