"""Flat positive relational algebra on bags (RA+), Appendix A.1.

The paper recalls classical delta processing on the flat relational algebra
before generalizing it to nested data.  This package implements that flat
baseline from scratch — selection, projection, Cartesian product, natural /
theta joins and bag union over named-column relations — together with its
delta rules (:mod:`repro.relational.delta`), so the flat-vs-nested
experiments (E4) have a faithful comparator.

Relations here are bags of *named tuples*: each element is a ``tuple`` whose
positions are described by a :class:`RelSchema` of column names.  All
operators are expression trees evaluated against a mapping of base-relation
names to bags, mirroring the NRC+ evaluator's design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.bag.bag import Bag, EMPTY_BAG
from repro.errors import EvaluationError, TypeCheckError

__all__ = [
    "RelSchema",
    "RAExpr",
    "BaseRel",
    "DeltaRel",
    "Select",
    "Project",
    "CrossProduct",
    "ThetaJoin",
    "UnionAll",
    "NegateRel",
    "Rename",
]


@dataclass(frozen=True)
class RelSchema:
    """Ordered column names of a flat relation."""

    columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise TypeCheckError(f"duplicate column names in schema {self.columns!r}")

    def index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError as error:
            raise TypeCheckError(f"unknown column {column!r} in schema {self.columns!r}") from error

    def project(self, columns: Sequence[str]) -> "RelSchema":
        return RelSchema(tuple(columns))

    def concat(self, other: "RelSchema", disambiguate: bool = True) -> "RelSchema":
        columns = list(self.columns)
        for column in other.columns:
            name = column
            if disambiguate and name in columns:
                name = f"{column}_r"
                suffix = 2
                while name in columns:
                    name = f"{column}_r{suffix}"
                    suffix += 1
            columns.append(name)
        return RelSchema(tuple(columns))

    def __len__(self) -> int:
        return len(self.columns)


class RAExpr:
    """Abstract base class of relational-algebra expressions."""

    def schema(self) -> RelSchema:
        raise NotImplementedError

    def evaluate(self, database: Mapping[str, Bag], deltas: Optional[Mapping[Tuple[str, int], Bag]] = None) -> Bag:
        raise NotImplementedError

    def children(self) -> Tuple["RAExpr", ...]:
        return ()

    # Sugar ----------------------------------------------------------------
    def select(self, predicate: Callable[[Mapping[str, Any]], bool], description: str = "p") -> "Select":
        return Select(self, predicate, description)

    def project(self, columns: Sequence[str]) -> "Project":
        return Project(self, tuple(columns))

    def cross(self, other: "RAExpr") -> "CrossProduct":
        return CrossProduct(self, other)

    def join(self, other: "RAExpr", on: Sequence[Tuple[str, str]]) -> "ThetaJoin":
        return ThetaJoin(self, other, tuple(on))

    def union(self, other: "RAExpr") -> "UnionAll":
        return UnionAll(self, other)


@dataclass(frozen=True)
class BaseRel(RAExpr):
    """A named base relation."""

    name: str
    rel_schema: RelSchema

    def schema(self) -> RelSchema:
        return self.rel_schema

    def evaluate(self, database, deltas=None) -> Bag:
        if self.name not in database:
            raise EvaluationError(f"unknown relation {self.name!r}")
        return database[self.name]


@dataclass(frozen=True)
class DeltaRel(RAExpr):
    """The update symbol ``ΔR`` of the flat delta rules."""

    name: str
    rel_schema: RelSchema
    order: int = 1

    def schema(self) -> RelSchema:
        return self.rel_schema

    def evaluate(self, database, deltas=None) -> Bag:
        if not deltas:
            return EMPTY_BAG
        return deltas.get((self.name, self.order), EMPTY_BAG)


@dataclass(frozen=True)
class Select(RAExpr):
    """``σ_p(e)`` — keep tuples satisfying the predicate.

    The predicate receives a dict mapping column names to values so it stays
    independent of column positions; ``description`` is used for display.
    """

    source: RAExpr
    predicate: Callable[[Mapping[str, Any]], bool]
    description: str = "p"

    def schema(self) -> RelSchema:
        return self.source.schema()

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.source,)

    def evaluate(self, database, deltas=None) -> Bag:
        schema = self.schema()
        columns = schema.columns

        def keep(row: Tuple) -> bool:
            return self.predicate(dict(zip(columns, row)))

        return self.source.evaluate(database, deltas).filter(keep)


@dataclass(frozen=True)
class Project(RAExpr):
    """``Π_cols(e)`` — bag projection (duplicates preserved as multiplicities)."""

    source: RAExpr
    columns: Tuple[str, ...]

    def schema(self) -> RelSchema:
        return RelSchema(self.columns)

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.source,)

    def evaluate(self, database, deltas=None) -> Bag:
        source_schema = self.source.schema()
        indices = [source_schema.index_of(column) for column in self.columns]
        return self.source.evaluate(database, deltas).map(
            lambda row: tuple(row[index] for index in indices)
        )


@dataclass(frozen=True)
class CrossProduct(RAExpr):
    """``e1 × e2`` — concatenated tuples, multiplied multiplicities."""

    left: RAExpr
    right: RAExpr

    def schema(self) -> RelSchema:
        return self.left.schema().concat(self.right.schema())

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right)

    def evaluate(self, database, deltas=None) -> Bag:
        left = self.left.evaluate(database, deltas)
        right = self.right.evaluate(database, deltas)
        pairs: Dict[Tuple, int] = {}
        for left_row, left_mult in left.items():
            for right_row, right_mult in right.items():
                row = tuple(left_row) + tuple(right_row)
                pairs[row] = pairs.get(row, 0) + left_mult * right_mult
        return Bag.from_pairs(pairs.items())


@dataclass(frozen=True)
class ThetaJoin(RAExpr):
    """Equi-join ``e1 ⋈ e2`` on pairs of column names (hash join)."""

    left: RAExpr
    right: RAExpr
    on: Tuple[Tuple[str, str], ...]

    def schema(self) -> RelSchema:
        return self.left.schema().concat(self.right.schema())

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right)

    def evaluate(self, database, deltas=None) -> Bag:
        left_schema = self.left.schema()
        right_schema = self.right.schema()
        left_indices = [left_schema.index_of(left_col) for left_col, _ in self.on]
        right_indices = [right_schema.index_of(right_col) for _, right_col in self.on]

        right_bag = self.right.evaluate(database, deltas)
        buckets: Dict[Tuple, list] = {}
        for row, mult in right_bag.items():
            key = tuple(row[index] for index in right_indices)
            buckets.setdefault(key, []).append((row, mult))

        results: Dict[Tuple, int] = {}
        for row, mult in self.left.evaluate(database, deltas).items():
            key = tuple(row[index] for index in left_indices)
            for right_row, right_mult in buckets.get(key, ()):
                joined = tuple(row) + tuple(right_row)
                results[joined] = results.get(joined, 0) + mult * right_mult
        return Bag.from_pairs(results.items())


@dataclass(frozen=True)
class UnionAll(RAExpr):
    """Bag union ``e1 ⊎ e2`` (schemas must match in arity)."""

    left: RAExpr
    right: RAExpr

    def schema(self) -> RelSchema:
        left_schema = self.left.schema()
        right_schema = self.right.schema()
        if len(left_schema) != len(right_schema):
            raise TypeCheckError("union of relations with different arities")
        return left_schema

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.left, self.right)

    def evaluate(self, database, deltas=None) -> Bag:
        return self.left.evaluate(database, deltas).union(self.right.evaluate(database, deltas))


@dataclass(frozen=True)
class NegateRel(RAExpr):
    """``⊖(e)`` — negate multiplicities (used to express deletions)."""

    source: RAExpr

    def schema(self) -> RelSchema:
        return self.source.schema()

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.source,)

    def evaluate(self, database, deltas=None) -> Bag:
        return self.source.evaluate(database, deltas).negate()


@dataclass(frozen=True)
class Rename(RAExpr):
    """``ρ`` — rename columns (content unchanged)."""

    source: RAExpr
    mapping: Tuple[Tuple[str, str], ...]

    def schema(self) -> RelSchema:
        renames = dict(self.mapping)
        return RelSchema(
            tuple(renames.get(column, column) for column in self.source.schema().columns)
        )

    def children(self) -> Tuple[RAExpr, ...]:
        return (self.source,)

    def evaluate(self, database, deltas=None) -> Bag:
        return self.source.evaluate(database, deltas)
