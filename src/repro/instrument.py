"""Lightweight operation counters used across the library.

The cost-model experiments (E6) compare the paper's analytical cost bound
``tcost(C[[h]])`` against *measured* work.  Wall-clock time is too noisy and
machine-dependent for that comparison, so the evaluator, the IVM engines and
the circuit simulator all report abstract operation counts through an
:class:`OpCounter`.  Counting is optional — passing ``None`` disables it with
negligible overhead.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

__all__ = ["OpCounter", "maybe_count"]


class OpCounter:
    """A named-counter accumulator.

    Typical counter names produced by the evaluator:

    * ``"for_iterations"`` — elements iterated by ``for`` loops,
    * ``"product_pairs"`` — tuples produced by Cartesian products,
    * ``"union_merges"``  — element merges performed by bag unions,
    * ``"dict_lookups"``  — label-dictionary lookups,
    * ``"elements_emitted"`` — elements placed in result bags.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name``."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def total(self) -> int:
        """Sum of all counters — the 'total work' scalar used in reports."""
        return sum(self._counts.values())

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        """Clear every counter."""
        self._counts.clear()

    def merge(self, other: "OpCounter") -> None:
        """Add all counters of ``other`` into this counter."""
        for name, value in other._counts.items():
            self.increment(name, value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value}" for name, value in self.items())
        return f"OpCounter({inner})"


def maybe_count(counter: Optional[OpCounter], name: str, amount: int = 1) -> None:
    """Increment ``counter`` if it is not ``None`` (shared convenience helper)."""
    if counter is not None:
        counter.increment(name, amount)
