"""Circuits for view maintenance versus re-evaluation (Theorem 9).

Two circuit families are built over the FBag representation:

* :func:`build_update_circuit` — the NC0 *maintenance* circuit: the new view
  bits are ``view ⊎ delta``, i.e. per-slot addition modulo ``2^k`` of the
  stored multiplicity and the delta multiplicity.  Every output bit depends
  on at most ``2k`` input bits regardless of how many slots (how large a
  database) the view has — the constant-cone property that places
  maintenance in NC0.

* :func:`build_recompute_circuit` — a re-evaluation circuit in the style of
  the TC0 lower-bound discussion: each output multiplicity is the *sum* of an
  unbounded number of input multiplicities (the situation of ``flatten`` or a
  projection, where one output tuple aggregates contributions from the whole
  input).  Its output cones grow linearly with the number of contributing
  slots.

Experiment E9 sweeps the database size and reports both cone sizes, showing
the constant-vs-growing separation the paper proves.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bag.bag import Bag
from repro.circuits.bitrep import FBagEncoding
from repro.circuits.gates import Circuit, GateRef
from repro.errors import CircuitError

__all__ = [
    "build_update_circuit",
    "build_recompute_circuit",
    "apply_update_circuit",
]


def build_update_circuit(num_slots: int, k: int) -> Circuit:
    """NC0 maintenance circuit: per-slot addition mod ``2^k`` of view and delta.

    Inputs: ``view_slot{i}_bit{j}`` and ``delta_slot{i}_bit{j}``; outputs
    ``out_slot{i}_bit{j}``.
    """
    if k < 1:
        raise CircuitError("multiplicities need at least one bit")
    circuit = Circuit(name=f"update[slots={num_slots},k={k}]")
    for slot in range(num_slots):
        view_bits = [circuit.add_input(f"view_slot{slot}_bit{bit}") for bit in range(k)]
        delta_bits = [circuit.add_input(f"delta_slot{slot}_bit{bit}") for bit in range(k)]
        summed = circuit.adder_mod(view_bits, delta_bits)
        for bit, gate in enumerate(summed):
            circuit.mark_output(f"out_slot{slot}_bit{bit}", gate)
    return circuit


def build_recompute_circuit(num_input_slots: int, k: int, num_outputs: int = 1) -> Circuit:
    """Re-evaluation circuit: each output multiplicity sums all input slots.

    Models the ``flatten``/projection situation in which the multiplicity of
    an output tuple depends on an unbounded number of input bits; the sum is
    taken modulo ``2^k`` with a ripple of bounded-fan-in adders, so the
    circuit is not constant-depth and its cones grow with ``num_input_slots``
    (the paper's point that NRC+ re-evaluation cannot live in NC0).
    """
    if num_input_slots < 1:
        raise CircuitError("need at least one input slot")
    circuit = Circuit(name=f"recompute[slots={num_input_slots},k={k}]")
    slot_bits: List[List[GateRef]] = []
    for slot in range(num_input_slots):
        slot_bits.append(
            [circuit.add_input(f"in_slot{slot}_bit{bit}") for bit in range(k)]
        )
    for output in range(num_outputs):
        accumulator = slot_bits[0]
        for slot in range(1, num_input_slots):
            accumulator = circuit.adder_mod(accumulator, slot_bits[slot])
        for bit, gate in enumerate(accumulator):
            circuit.mark_output(f"out{output}_bit{bit}", gate)
    return circuit


def apply_update_circuit(
    circuit: Circuit, view: FBagEncoding, delta: FBagEncoding
) -> Tuple[Dict[str, bool], Bag]:
    """Run the NC0 maintenance circuit on concrete encodings and decode the result."""
    if view.num_slots != delta.num_slots or view.k != delta.k:
        raise CircuitError("view and delta encodings must share layout")
    inputs: Dict[str, bool] = {}
    inputs.update(view.as_input_assignment(prefix="view_"))
    inputs.update(delta.as_input_assignment(prefix="delta_"))
    outputs = circuit.evaluate(inputs)
    bits = []
    for slot in range(view.num_slots):
        for bit in range(view.k):
            bits.append(outputs[f"out_slot{slot}_bit{bit}"])
    updated = FBagEncoding(view.domain, view.arity, view.k, tuple(bits))
    from repro.circuits.bitrep import decode_fbag

    return outputs, decode_fbag(updated)
