"""Bit-level representations of shredded views and nested values (Section 5.4).

Two encodings from the paper's complexity argument:

* **FBag** — the natural bit-sequence representation of a *flat* bag: for
  every tuple constructible from the active domain (in lexicographic order)
  we store its multiplicity modulo ``2^k`` as ``k`` bits.  Shredded views are
  flat, so this is the representation the NC0 maintenance circuits operate
  on.
* **NStr** — the string representation of a *nested* value as a relation
  ``S(p, s)`` mapping string positions to symbols (Example 9): delimiters
  ``{ } ⟨ ⟩ ,`` plus the active-domain symbols.  This is the input
  representation used by the TC0 shredding construction (Theorem 14).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.bag.bag import Bag
from repro.bag.values import is_base_value
from repro.errors import CircuitError

__all__ = [
    "ActiveDomain",
    "FBagEncoding",
    "encode_fbag",
    "decode_fbag",
    "nested_to_symbols",
    "symbols_to_position_relation",
]


@dataclass(frozen=True)
class ActiveDomain:
    """An ordered active domain of base symbols."""

    symbols: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if len(set(self.symbols)) != len(self.symbols):
            raise CircuitError("active domain symbols must be distinct")

    @classmethod
    def from_bag(cls, bag: Bag) -> "ActiveDomain":
        """Collect the base symbols appearing in a flat bag, in sorted order."""
        symbols = set()
        for element in bag.elements():
            for component in element if isinstance(element, tuple) else (element,):
                if not is_base_value(component):
                    raise CircuitError("FBag encoding requires flat tuples of base values")
                symbols.add(component)
        return cls(tuple(sorted(symbols, key=repr)))

    @property
    def size(self) -> int:
        return len(self.symbols)

    def index(self, symbol: Any) -> int:
        try:
            return self.symbols.index(symbol)
        except ValueError as error:
            raise CircuitError(f"symbol {symbol!r} not in active domain") from error


@dataclass(frozen=True)
class FBagEncoding:
    """A concrete FBag bit string together with its layout metadata."""

    domain: ActiveDomain
    arity: int
    k: int
    bits: Tuple[bool, ...]

    @property
    def num_slots(self) -> int:
        return self.domain.size**self.arity

    def slot_of(self, row: Tuple) -> int:
        """Lexicographic index of a tuple in the slot ordering."""
        slot = 0
        for component in row:
            slot = slot * self.domain.size + self.domain.index(component)
        return slot

    def bit_names(self) -> List[str]:
        """Stable bit names (used to wire the encoding into circuits)."""
        return [f"slot{slot}_bit{bit}" for slot in range(self.num_slots) for bit in range(self.k)]

    def as_input_assignment(self, prefix: str = "") -> Dict[str, bool]:
        """The bits as a circuit input assignment (optionally name-prefixed)."""
        return {
            f"{prefix}{name}": value for name, value in zip(self.bit_names(), self.bits)
        }


def encode_fbag(bag: Bag, domain: ActiveDomain, arity: int, k: int) -> FBagEncoding:
    """Encode a flat bag of ``arity``-tuples with ``k``-bit multiplicities."""
    num_slots = domain.size**arity
    modulus = 1 << k
    multiplicities = [0] * num_slots
    for element, multiplicity in bag.items():
        row = element if isinstance(element, tuple) else (element,)
        if len(row) != arity:
            raise CircuitError(f"tuple {row!r} does not have arity {arity}")
        slot = 0
        for component in row:
            slot = slot * domain.size + domain.index(component)
        multiplicities[slot] = (multiplicities[slot] + multiplicity) % modulus
    bits: List[bool] = []
    for value in multiplicities:
        for bit in range(k):
            bits.append(bool((value >> bit) & 1))
    return FBagEncoding(domain, arity, k, tuple(bits))


def decode_fbag(encoding: FBagEncoding) -> Bag:
    """Decode an FBag bit string back into a bag (multiplicities mod ``2^k``)."""
    pairs = []
    for slot_index, row in enumerate(itertools.product(encoding.domain.symbols, repeat=encoding.arity)):
        value = 0
        for bit in range(encoding.k):
            if encoding.bits[slot_index * encoding.k + bit]:
                value |= 1 << bit
        if value:
            # Decoded elements are always arity-tuples, even for arity 1, so
            # that encode/decode round-trips are deterministic.
            pairs.append((row, value))
    return Bag.from_pairs(pairs)


# --------------------------------------------------------------------------- #
# NStr: the string representation of nested values (Example 9)
# --------------------------------------------------------------------------- #
def nested_to_symbols(value: Any) -> List[Any]:
    """Serialize a nested value into the paper's symbol string.

    Bags render as ``{ … }`` with comma separators (elements ordered
    deterministically), tuples as ``⟨ … ⟩``; base values are their own
    symbol.  Multiplicities are expanded (the NStr representation of the
    paper encodes the value itself, not a multiplicity table).
    """
    symbols: List[Any] = []

    def _emit(node: Any) -> None:
        if is_base_value(node):
            symbols.append(node)
            return
        if isinstance(node, tuple):
            symbols.append("⟨")
            for index, component in enumerate(node):
                if index:
                    symbols.append(",")
                _emit(component)
            symbols.append("⟩")
            return
        if isinstance(node, Bag):
            symbols.append("{")
            expanded = []
            for element, multiplicity in node.items():
                expanded.extend([element] * max(multiplicity, 0))
            expanded.sort(key=repr)
            for index, element in enumerate(expanded):
                if index:
                    symbols.append(",")
                _emit(element)
            symbols.append("}")
            return
        raise CircuitError(f"cannot serialize {node!r}")

    _emit(value)
    return symbols


def symbols_to_position_relation(symbols: Sequence[Any]) -> Bag:
    """The relation ``S(p, s)`` mapping 1-based positions to symbols."""
    return Bag((position + 1, symbol) for position, symbol in enumerate(symbols))
