"""A small gate-level circuit model with complexity metering.

Section 5.4 separates incremental maintenance (NC0 — bounded fan-in gates,
constant depth) from re-evaluation (TC0 — unbounded fan-in and/or/majority
gates, constant depth).  Since we cannot run real circuit families, we build
them explicitly and *measure* the quantities that the complexity classes are
about:

* **depth** — longest input-to-output path,
* **gate count** — circuit size,
* **cone size** — for each output bit, how many distinct input bits it
  depends on.  NC0 means every output cone has constant size (independent of
  the database size); TC0 circuits for re-evaluation have cones that grow
  with the input.

Gates: ``INPUT``, ``CONST``, ``NOT`` (fan-in 1), ``AND``/``OR``/``XOR``
(fan-in 2 — bounded), and ``MAJ`` (unbounded fan-in majority, the TC0 gate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.errors import CircuitError

__all__ = ["Circuit", "GateRef"]

_BOUNDED_FANIN = {"NOT": 1, "AND": 2, "OR": 2, "XOR": 2}


@dataclass(frozen=True)
class GateRef:
    """Opaque handle to a gate inside a :class:`Circuit`."""

    index: int


class Circuit:
    """A DAG of gates with named input and output bits."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._kinds: List[str] = []
        self._inputs_of: List[Tuple[int, ...]] = []
        self._const_values: Dict[int, bool] = {}
        self._input_names: List[str] = []
        self._input_index: Dict[str, int] = {}
        self._outputs: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_input(self, name: str) -> GateRef:
        if name in self._input_index:
            raise CircuitError(f"duplicate input bit {name!r}")
        index = self._new_gate("INPUT", ())
        self._input_index[name] = index
        self._input_names.append(name)
        return GateRef(index)

    def add_const(self, value: bool) -> GateRef:
        index = self._new_gate("CONST", ())
        self._const_values[index] = bool(value)
        return GateRef(index)

    def add_gate(self, kind: str, inputs: Sequence[GateRef]) -> GateRef:
        kind = kind.upper()
        if kind in _BOUNDED_FANIN and len(inputs) != _BOUNDED_FANIN[kind]:
            raise CircuitError(
                f"{kind} gates take exactly {_BOUNDED_FANIN[kind]} input(s), got {len(inputs)}"
            )
        if kind not in _BOUNDED_FANIN and kind != "MAJ":
            raise CircuitError(f"unknown gate kind {kind!r}")
        if kind == "MAJ" and not inputs:
            raise CircuitError("MAJ gates need at least one input")
        index = self._new_gate(kind, tuple(ref.index for ref in inputs))
        return GateRef(index)

    def mark_output(self, name: str, gate: GateRef) -> None:
        self._outputs.append((name, gate.index))

    def _new_gate(self, kind: str, inputs: Tuple[int, ...]) -> int:
        for input_index in inputs:
            if input_index >= len(self._kinds):
                raise CircuitError("gate wired to a not-yet-created gate")
        self._kinds.append(kind)
        self._inputs_of.append(inputs)
        return len(self._kinds) - 1

    # Convenience compositions -------------------------------------------
    def xor(self, a: GateRef, b: GateRef) -> GateRef:
        return self.add_gate("XOR", (a, b))

    def and_(self, a: GateRef, b: GateRef) -> GateRef:
        return self.add_gate("AND", (a, b))

    def or_(self, a: GateRef, b: GateRef) -> GateRef:
        return self.add_gate("OR", (a, b))

    def not_(self, a: GateRef) -> GateRef:
        return self.add_gate("NOT", (a,))

    def full_adder(self, a: GateRef, b: GateRef, carry: GateRef) -> Tuple[GateRef, GateRef]:
        """Return ``(sum, carry_out)`` built from bounded fan-in gates."""
        partial = self.xor(a, b)
        total = self.xor(partial, carry)
        carry_out = self.or_(self.and_(a, b), self.and_(partial, carry))
        return total, carry_out

    def adder_mod(self, a_bits: Sequence[GateRef], b_bits: Sequence[GateRef]) -> List[GateRef]:
        """Ripple-carry addition modulo ``2^k`` (k = len(a_bits))."""
        if len(a_bits) != len(b_bits):
            raise CircuitError("adder operands must have the same width")
        carry = self.add_const(False)
        result: List[GateRef] = []
        for a_bit, b_bit in zip(a_bits, b_bits):
            total, carry = self.full_adder(a_bit, b_bit, carry)
            result.append(total)
        return result

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def gate_count(self) -> int:
        return len(self._kinds)

    def num_inputs(self) -> int:
        return len(self._input_names)

    def output_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._outputs)

    def depth(self) -> int:
        """Longest path from any input/constant to any output gate."""
        depths = [0] * len(self._kinds)
        for index, inputs in enumerate(self._inputs_of):
            if inputs:
                depths[index] = 1 + max(depths[i] for i in inputs)
        if not self._outputs:
            return 0
        return max(depths[index] for _, index in self._outputs)

    def max_fanin(self) -> int:
        return max((len(inputs) for inputs in self._inputs_of), default=0)

    def uses_majority(self) -> bool:
        return any(kind == "MAJ" for kind in self._kinds)

    def cone_sizes(self) -> Dict[str, int]:
        """For every output bit, the number of distinct input bits in its cone."""
        cones: List[FrozenSet[int]] = []
        for index, (kind, inputs) in enumerate(zip(self._kinds, self._inputs_of)):
            if kind == "INPUT":
                cones.append(frozenset({index}))
            elif kind == "CONST":
                cones.append(frozenset())
            else:
                cone: FrozenSet[int] = frozenset()
                for input_index in inputs:
                    cone |= cones[input_index]
                cones.append(cone)
        return {name: len(cones[index]) for name, index in self._outputs}

    def max_cone_size(self) -> int:
        sizes = self.cone_sizes()
        return max(sizes.values()) if sizes else 0

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, inputs: Dict[str, bool]) -> Dict[str, bool]:
        """Evaluate the circuit on a complete input assignment."""
        values: List[bool] = [False] * len(self._kinds)
        for name, index in self._input_index.items():
            if name not in inputs:
                raise CircuitError(f"missing value for input bit {name!r}")
            values[index] = bool(inputs[name])
        for index, (kind, gate_inputs) in enumerate(zip(self._kinds, self._inputs_of)):
            if kind == "INPUT":
                continue
            if kind == "CONST":
                values[index] = self._const_values[index]
            elif kind == "NOT":
                values[index] = not values[gate_inputs[0]]
            elif kind == "AND":
                values[index] = values[gate_inputs[0]] and values[gate_inputs[1]]
            elif kind == "OR":
                values[index] = values[gate_inputs[0]] or values[gate_inputs[1]]
            elif kind == "XOR":
                values[index] = values[gate_inputs[0]] != values[gate_inputs[1]]
            elif kind == "MAJ":
                true_count = sum(1 for i in gate_inputs if values[i])
                values[index] = 2 * true_count > len(gate_inputs)
            else:  # pragma: no cover - guarded at construction
                raise CircuitError(f"unknown gate kind {kind!r}")
        return {name: values[index] for name, index in self._outputs}

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, gates={self.gate_count()}, depth={self.depth()}, "
            f"inputs={self.num_inputs()}, outputs={len(self._outputs)})"
        )
