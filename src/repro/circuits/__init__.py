"""Circuit-complexity substrate: FBag/NStr encodings and NC0/TC0-style circuits."""

from repro.circuits.bitrep import (
    ActiveDomain,
    FBagEncoding,
    decode_fbag,
    encode_fbag,
    nested_to_symbols,
    symbols_to_position_relation,
)
from repro.circuits.gates import Circuit, GateRef
from repro.circuits.maintenance import (
    apply_update_circuit,
    build_recompute_circuit,
    build_update_circuit,
)

__all__ = [
    "ActiveDomain",
    "FBagEncoding",
    "decode_fbag",
    "encode_fbag",
    "nested_to_symbols",
    "symbols_to_position_relation",
    "Circuit",
    "GateRef",
    "apply_update_circuit",
    "build_recompute_circuit",
    "build_update_circuit",
]
