"""Optional ``rich`` rendering with a pure-stdlib fallback.

The CLI renders tables through this module: when the ``[cli]`` extra is
installed, real :mod:`rich` consoles and tables are used; otherwise the
minimal plain-text implementations below keep ``repro-cli`` fully
functional on a dependency-free interpreter (the container/CI constraint).
Both paths expose the same tiny surface: ``Console().print(...)`` and
``Table(title=...)`` with ``add_column``/``add_row``.
"""

from __future__ import annotations

from typing import Any, List

try:  # pragma: no cover - exercised only when rich is installed
    from rich.console import Console  # type: ignore
    from rich.table import Table  # type: ignore

    HAVE_RICH = True
except ImportError:
    HAVE_RICH = False

    class Table:  # type: ignore[no-redef]
        """Plain-text stand-in for ``rich.table.Table``."""

        def __init__(self, title: str = "", show_lines: bool = False, **_: Any) -> None:
            self.title = title
            self.columns: List[str] = []
            self.rows: List[List[str]] = []

        def add_column(self, header: str, **_: Any) -> None:
            self.columns.append(header)

        def add_row(self, *cells: Any) -> None:
            self.rows.append([str(cell) for cell in cells])

        def render(self) -> str:
            headers = self.columns or (
                [f"c{i}" for i in range(len(self.rows[0]))] if self.rows else []
            )
            widths = [len(header) for header in headers]
            for row in self.rows:
                for index, cell in enumerate(row):
                    while index >= len(widths):
                        widths.append(0)
                    widths[index] = max(widths[index], len(cell))

            def line(cells: List[str]) -> str:
                return "  ".join(
                    cell.ljust(widths[index]) for index, cell in enumerate(cells)
                ).rstrip()

            parts = []
            if self.title:
                parts.append(self.title)
            if headers:
                parts.append(line(headers))
                parts.append(line(["-" * width for width in widths]))
            parts.extend(line(row) for row in self.rows)
            return "\n".join(parts)

    class Console:  # type: ignore[no-redef]
        """Plain-text stand-in for ``rich.console.Console``."""

        def print(self, renderable: Any = "", **_: Any) -> None:  # noqa: A003
            if isinstance(renderable, Table):
                print(renderable.render())
            else:
                print(renderable)


__all__ = ["Console", "Table", "HAVE_RICH"]
