"""Per-resource clients over :class:`~repro.client.api.APIClient`.

One thin client per wire resource — datasets, views, updates, server admin —
so SDK users compose exactly what they need::

    api = APIClient("http://127.0.0.1:8765")
    datasets = DatasetsClient(api, tenant="team-a")
    datasets.create("M", fields=["name", "gen", "dir"], rows=[...])
    UpdatesClient(api, tenant="team-a").apply({"M": {"rows": [[...]]}})
    print(ViewsClient(api, tenant="team-a").show("dramas")["pairs"])

All methods return the decoded JSON response bodies; wire values come back
in protocol encoding (tuples as lists, inner bags as ``{"bag": pairs}`` —
see :mod:`repro.serve.protocol`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.client.api import APIClient

__all__ = [
    "DatasetsClient",
    "ReplicationClient",
    "ServerClient",
    "UpdatesClient",
    "ViewsClient",
]


def _etag_header(etag: Union[int, str]) -> str:
    """Normalize an ETag argument: an int version becomes ``"<version>"``."""
    if isinstance(etag, int):
        return f'"{etag}"'
    tag = etag.strip()
    return tag if tag.startswith('"') or tag.startswith("W/") else f'"{tag}"'


def _read_suffix(
    base: str,
    since_version: Optional[int],
    limit: Optional[int],
    offset: Optional[int],
) -> str:
    params = []
    if since_version is not None:
        params.append(f"since_version={since_version}")
    if limit is not None:
        params.append(f"limit={limit}")
    if offset is not None:
        params.append(f"offset={offset}")
    return base + (("?" + "&".join(params)) if params else "")


class _TenantClient:
    def __init__(self, api: APIClient, tenant: str = "default") -> None:
        self.api = api
        self.tenant = tenant

    def _path(self, suffix: str) -> str:
        return f"v1/{self.tenant}/{suffix}"


class DatasetsClient(_TenantClient):
    """``/v1/{tenant}/datasets``."""

    def list(self) -> Dict[str, Any]:
        return self.api.get(self._path("datasets"))

    def create(
        self,
        name: str,
        fields: List[Any],
        rows: Optional[List[Any]] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"name": name, "fields": fields}
        if rows is not None:
            body["rows"] = rows
        return self.api.post(self._path("datasets"), body)

    def show(
        self,
        name: str,
        *,
        etag: Optional[Union[int, str]] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Dataset contents; ``etag`` makes the read conditional (may come
        back ``{"unchanged": True}``), ``limit``/``offset`` page the pairs."""
        headers = {"If-None-Match": _etag_header(etag)} if etag is not None else None
        return self.api.get(
            self._path(_read_suffix(f"datasets/{name}", None, limit, offset)),
            headers=headers,
        )


class ViewsClient(_TenantClient):
    """``/v1/{tenant}/views``."""

    def list(self) -> Dict[str, Any]:
        return self.api.get(self._path("views"))

    def create(
        self, name: str, query: Dict[str, Any], strategy: str = "auto"
    ) -> Dict[str, Any]:
        return self.api.post(
            self._path("views"),
            {"name": name, "query": query, "strategy": strategy},
        )

    def show(
        self,
        name: str,
        since_version: Optional[int] = None,
        *,
        etag: Optional[Union[int, str]] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> Dict[str, Any]:
        """View result at the pinned snapshot.

        ``etag`` (an int version or the ETag string from a prior read)
        sends ``If-None-Match`` — an unchanged view answers a body-less 304
        that decodes to ``{"unchanged": True, ...}``.  ``since_version`` is
        the legacy in-body equivalent.  ``limit``/``offset`` page the pairs
        without the server materializing the merged result.
        """
        headers = {"If-None-Match": _etag_header(etag)} if etag is not None else None
        return self.api.get(
            self._path(_read_suffix(f"views/{name}", since_version, limit, offset)),
            headers=headers,
        )

    def explain(self, name: str) -> Dict[str, Any]:
        return self.api.get(self._path(f"views/{name}/explain"))

    def indexes(self, name: str) -> Dict[str, Any]:
        return self.api.get(self._path(f"views/{name}/indexes"))


class UpdatesClient(_TenantClient):
    """``/v1/{tenant}/apply`` and storage maintenance."""

    def apply(
        self, *updates: Dict[str, Any], mode: str = "sync"
    ) -> Dict[str, Any]:
        """Apply updates; each is a ``{relation: {"rows"|"pairs": ...}}`` map."""
        return self.api.post(
            self._path("apply"), {"updates": list(updates), "mode": mode}
        )

    def insert(self, relation: str, rows: List[Any], mode: str = "sync") -> Dict[str, Any]:
        return self.apply({relation: {"rows": rows}}, mode=mode)

    def vacuum(self) -> Dict[str, Any]:
        return self.api.post(self._path("vacuum"))

    def checkpoint(self) -> Dict[str, Any]:
        """Cut a durable snapshot checkpoint (requires a server data dir)."""
        return self.api.post(self._path("checkpoint"))

    def snapshot(
        self,
        since_version: Optional[int] = None,
        *,
        etag: Optional[Union[int, str]] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Every dataset + view at one version; same conditional-read and
        paging contract as :meth:`ViewsClient.show` (paging applies to each
        bag in the snapshot independently)."""
        headers = {"If-None-Match": _etag_header(etag)} if etag is not None else None
        return self.api.get(
            self._path(_read_suffix("snapshot", since_version, limit, offset)),
            headers=headers,
        )

    def storage(self) -> Dict[str, Any]:
        return self.api.get(self._path("storage"))


class ReplicationClient(_TenantClient):
    """``/v1/{tenant}/replication``, ``/promote``, ``/demote``."""

    def status(self) -> Dict[str, Any]:
        """Role, epoch, WAL positions and replication lag for the tenant."""
        return self.api.get(self._path("replication"))

    def promote(self, *, epoch: Optional[int] = None) -> Dict[str, Any]:
        """Flip a replica (or a recovery-degraded primary) writable.

        The server bumps the fencing epoch past everything it has observed
        unless an explicit ``epoch`` is given, and fences the old upstream
        best-effort.  Idempotent on a tenant that is already primary.
        """
        body: Dict[str, Any] = {}
        if epoch is not None:
            body["epoch"] = epoch
        return self.api.post(self._path("promote"), body)

    def demote(self, epoch: int, reason: str = "demoted by operator") -> Dict[str, Any]:
        """Fence the tenant at ``epoch`` (must supersede its current epoch)."""
        return self.api.post(
            self._path("demote"), {"epoch": epoch, "reason": reason}
        )


class ServerClient:
    """Server-wide endpoints (no tenant)."""

    def __init__(self, api: APIClient) -> None:
        self.api = api

    def health(self) -> Dict[str, Any]:
        return self.api.get("health")

    def stats(self) -> Dict[str, Any]:
        return self.api.get("stats")
