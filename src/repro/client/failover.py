"""Failover-aware routing: writes chase the primary, reads tolerate lag.

:class:`FailoverClient` wraps one :class:`~repro.client.api.APIClient` per
endpoint of a replicated tenant and routes by operation class:

* **writes** (and any other must-be-primary call) go to the endpoint
  currently believed primary.  When that endpoint answers with one of the
  failover signals — connection refused (status 0), a bare 503 (including
  the server's ``not_writable`` rejection on replicas and fenced
  ex-primaries), or an exhausted ``retry_deadline`` — the client re-probes
  every endpoint's ``GET /v1/{tenant}/replication`` for ``role ==
  "primary"`` and retries there, under capped exponential backoff bounded
  by a total ``failover_deadline``.  During a failover window (old primary
  dead, replica not yet promoted) the write simply keeps probing until
  promotion lands or the deadline expires.
* **stale-tolerant reads** round-robin the *replica* endpoints (falling
  back to the primary when no replica answers), which is exactly the
  follower-read contract ``docs/replication.md`` documents: a replica
  serves a fully consistent snapshot of a *prefix* of the primary's
  history, with the same ETag the primary once served for that version.

The client holds no hidden state machine: "current primary" is a cached
index, invalidated on the first failover signal and re-learned by probing.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.client.api import APIClient, APIError

__all__ = ["FailoverClient"]

#: ``APIError.code`` values that mean "this endpoint will not take writes
#: now or ever — go find the primary" rather than "request was bad".
_FAILOVER_CODES = frozenset(
    {"not_writable", "connection", "retry_deadline", "recovering", "apply_timeout"}
)


def _is_failover_signal(error: APIError) -> bool:
    return error.status in (0, 503) or error.code in _FAILOVER_CODES


class FailoverClient:
    """Route one tenant's traffic across a primary/replica endpoint set."""

    def __init__(
        self,
        endpoints: Sequence[str],
        tenant: str = "default",
        *,
        failover_deadline: float = 30.0,
        probe_interval: float = 0.2,
        max_probe_interval: float = 2.0,
        client_options: Optional[Dict[str, Any]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not endpoints:
            raise ValueError("FailoverClient needs at least one endpoint")
        options = dict(client_options or {})
        # Per-endpoint retry budgets stay short: the failover loop is the
        # retry policy here, and a dead endpoint should fail fast so the
        # probe moves on, not burn the whole deadline on one address.
        options.setdefault("max_retries", 1)
        options.setdefault("retry_deadline", 5.0)
        options.setdefault("timeout", 10.0)
        self.tenant = tenant
        self.clients: List[APIClient] = [
            APIClient(endpoint, **options) for endpoint in endpoints
        ]
        self.failover_deadline = failover_deadline
        self.probe_interval = probe_interval
        self.max_probe_interval = max_probe_interval
        self._sleep = sleep
        self._primary_index: Optional[int] = None
        self._read_cursor = 0
        # Observability: how many times a write actually failed over.
        self.failovers = 0

    # ------------------------------------------------------------------ #
    # Primary discovery
    # ------------------------------------------------------------------ #
    def _probe(self) -> Optional[int]:
        """Ask every endpoint who it is; return the first primary's index."""
        for index, client in enumerate(self.clients):
            try:
                status = client.get(f"v1/{self.tenant}/replication")
            except APIError:
                continue
            if status.get("role") == "primary":
                return index
        return None

    def primary(self) -> APIClient:
        """The client for the current primary (probing if unknown)."""
        if self._primary_index is None:
            self._primary_index = self._probe()
        if self._primary_index is None:
            raise APIError(
                0,
                "no_primary",
                f"no endpoint of {[c.base_url for c in self.clients]} currently "
                f"serves tenant {self.tenant!r} as primary",
            )
        return self.clients[self._primary_index]

    def replicas(self) -> List[APIClient]:
        """Every endpoint that is not the current primary."""
        primary = self._primary_index
        return [
            client
            for index, client in enumerate(self.clients)
            if index != primary
        ]

    # ------------------------------------------------------------------ #
    # Write path: retry over failover until the deadline
    # ------------------------------------------------------------------ #
    def request_primary(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        """Run one must-reach-the-primary request with failover retries."""
        deadline = time.monotonic() + self.failover_deadline
        delay = self.probe_interval
        last_error: Optional[APIError] = None
        while True:
            try:
                client = self.primary()
            except APIError as error:
                last_error = error
            else:
                try:
                    return client.request(method, path, body, headers)
                except APIError as error:
                    if not _is_failover_signal(error):
                        raise
                    last_error = error
                    self.failovers += 1
            # Whoever we believed in is not (or no longer) the primary.
            self._primary_index = None
            if time.monotonic() >= deadline:
                raise APIError(
                    last_error.status if last_error else 0,
                    "failover_exhausted",
                    f"no writable primary for tenant {self.tenant!r} within "
                    f"{self.failover_deadline:g}s "
                    f"(last error: {last_error})",
                ) from None
            self._sleep(delay)
            delay = min(delay * 2, self.max_probe_interval)

    def post(self, path_suffix: str, body: Optional[Dict[str, Any]] = None) -> Any:
        return self.request_primary("POST", f"v1/{self.tenant}/{path_suffix}", body or {})

    def apply(self, *updates: Dict[str, Any], mode: str = "sync") -> Dict[str, Any]:
        return self.post("apply", {"updates": list(updates), "mode": mode})

    def insert(self, relation: str, rows: List[Any]) -> Dict[str, Any]:
        return self.apply({relation: {"rows": rows}})

    def create_dataset(
        self, name: str, fields: List[Any], rows: Optional[List[Any]] = None
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"name": name, "fields": fields}
        if rows is not None:
            body["rows"] = rows
        return self.post("datasets", body)

    def create_view(
        self, name: str, query: Dict[str, Any], strategy: str = "auto"
    ) -> Dict[str, Any]:
        return self.post("views", {"name": name, "query": query, "strategy": strategy})

    def promote(self, endpoint: str, *, epoch: Optional[int] = None) -> Dict[str, Any]:
        """Promote a specific endpoint (an operator action, never guessed)."""
        for client in self.clients:
            if client.base_url == endpoint.rstrip("/"):
                body: Dict[str, Any] = {}
                if epoch is not None:
                    body["epoch"] = epoch
                result = client.post(f"v1/{self.tenant}/promote", body)
                self._primary_index = None
                return result
        raise ValueError(f"{endpoint!r} is not one of this client's endpoints")

    # ------------------------------------------------------------------ #
    # Read path: stale-tolerant follower reads
    # ------------------------------------------------------------------ #
    def read(
        self,
        path_suffix: str,
        *,
        stale_ok: bool = True,
        headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        """GET under the tenant; ``stale_ok`` prefers replicas.

        A stale-tolerant read may lag the primary by the replication lag
        but is internally consistent (one snapshot, one ETag).  With
        ``stale_ok=False`` the read goes through the primary path with
        failover, paying discovery cost for read-your-writes.
        """
        path = f"v1/{self.tenant}/{path_suffix}"
        if not stale_ok:
            return self.request_primary("GET", path, None, headers)
        candidates = self.replicas() or list(self.clients)
        start = self._read_cursor
        self._read_cursor += 1
        last_error: Optional[APIError] = None
        for step in range(len(candidates)):
            client = candidates[(start + step) % len(candidates)]
            try:
                return client.request("GET", path, None, headers)
            except APIError as error:
                last_error = error
        # Every replica is down or refused: fall back to the primary.
        try:
            return self.request_primary("GET", path, None, headers)
        except APIError:
            if last_error is not None:
                raise last_error from None
            raise

    def view(self, name: str, *, stale_ok: bool = True) -> Dict[str, Any]:
        return self.read(f"views/{name}", stale_ok=stale_ok)

    def dataset(self, name: str, *, stale_ok: bool = True) -> Dict[str, Any]:
        return self.read(f"datasets/{name}", stale_ok=stale_ok)

    def snapshot(self, *, stale_ok: bool = True) -> Dict[str, Any]:
        return self.read("snapshot", stale_ok=stale_ok)

    def replication_status(self) -> Dict[str, Dict[str, Any]]:
        """Every endpoint's view of the tenant (dead ones report an error)."""
        out: Dict[str, Dict[str, Any]] = {}
        for client in self.clients:
            try:
                out[client.base_url] = client.get(f"v1/{self.tenant}/replication")
            except APIError as error:
                out[client.base_url] = {"error": str(error)}
        return out

    def __repr__(self) -> str:
        return (
            f"FailoverClient({[c.base_url for c in self.clients]!r}, "
            f"tenant={self.tenant!r})"
        )
