"""Client SDK for the serving layer: ``APIClient`` + per-resource clients.

    from repro.client import APIClient, DatasetsClient, UpdatesClient, ViewsClient

    api = APIClient("http://127.0.0.1:8765")
    DatasetsClient(api, tenant="team-a").create("M", ["name", "gen", "dir"])
    UpdatesClient(api, tenant="team-a").insert("M", [["Drive", "Drama", "Refn"]])

For replicated tenants, :class:`~repro.client.failover.FailoverClient`
routes writes to the current primary (failing over on 503/refused
connections) and stale-tolerant reads to replicas.

The SDK is pure standard library; retries, 429 backoff, and the total
retry deadline live in :class:`~repro.client.api.APIClient`.  ``repro-cli``
(the console script, :mod:`repro.client.cli`) layers table-rendering
commands on top.
"""

from repro.client.api import APIClient, APIError
from repro.client.failover import FailoverClient
from repro.client.resources import (
    DatasetsClient,
    ReplicationClient,
    ServerClient,
    UpdatesClient,
    ViewsClient,
)

__all__ = [
    "APIClient",
    "APIError",
    "DatasetsClient",
    "FailoverClient",
    "ReplicationClient",
    "ServerClient",
    "UpdatesClient",
    "ViewsClient",
]
