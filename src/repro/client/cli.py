"""``repro-cli``: serve, inspect and drive an IVM service from the shell.

Modeled on the per-resource-client + table-rendering CLI idiom (an
``APIClient`` shared by resource clients, one sub-command family per
resource, tables for every listing).  Rendering uses :mod:`rich` when the
``[cli]`` extra is installed and a plain-text fallback otherwise, so the
CLI works on a dependency-free interpreter.

Examples::

    repro-cli serve --port 8765 --queue-depth 256
    repro-cli --tenant team-a datasets create M --fields name,gen,dir
    repro-cli --tenant team-a apply --data '{"M": {"rows": [["Drive","Drama","Refn"]]}}'
    repro-cli --tenant team-a views create dramas --query '{"from": "M", ...}'
    repro-cli --tenant team-a views show dramas
    repro-cli --tenant team-a watch dramas --interval 0.5 --count 10
    repro-cli stats

The server URL comes from ``--server`` or ``$REPRO_SERVER``; the tenant
from ``--tenant`` or ``$REPRO_TENANT`` (default ``"default"``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.client._compat import Console, Table
from repro.client.api import APIClient, APIError, DEFAULT_SERVER, DEFAULT_TENANT
from repro.client.resources import (
    DatasetsClient,
    ReplicationClient,
    ServerClient,
    UpdatesClient,
    ViewsClient,
)

__all__ = ["main"]

console = Console()


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 1


def _load_json_arg(inline: Optional[str], path: Optional[str], what: str) -> Any:
    if inline is not None and path is not None:
        raise ValueError(f"give {what} inline or as a file, not both")
    if inline is not None:
        return json.loads(inline)
    if path is not None:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    raise ValueError(f"missing {what}")


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, (dict, list)):
        return json.dumps(value)
    return str(value)


def _pairs_table(title: str, payload: Dict[str, Any]) -> Table:
    table = Table(title=title, show_lines=False)
    table.add_column("row")
    table.add_column("multiplicity")
    for element, multiplicity in payload.get("pairs", []):
        table.add_row(_render_cell(element), str(multiplicity))
    return table


# --------------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------------- #
def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ReproServer, ServerConfig

    engine_options: Dict[str, Any] = {}
    if args.shards is not None:
        engine_options["shards"] = args.shards
    if args.parallel_views is not None:
        engine_options["parallel_views"] = args.parallel_views
    server = ReproServer(
        ServerConfig(
            host=args.host,
            port=args.port,
            queue_depth=args.queue_depth,
            coalesce=args.coalesce,
            engine_options=engine_options,
            quiet=not args.verbose,
            data_dir=args.data_dir,
            fsync=args.fsync,
            replica_of=args.replica_of,
            poll_wait=args.poll_wait,
        )
    )
    server.install_signal_handlers()
    durable = f", durable in {args.data_dir}" if args.data_dir else ""
    following = f", replicating {args.replica_of}" if args.replica_of else ""
    console.print(
        f"repro-serve listening on {server.url} "
        f"(SIGTERM drains and exits{durable}{following})"
    )
    try:
        server.serve_forever()
    except (KeyboardInterrupt, OSError):
        pass
    finally:
        server.close(drain=True)
    console.print("repro-serve: clean shutdown")
    return 0


def _cmd_health(api: APIClient, args: argparse.Namespace) -> int:
    payload = ServerClient(api).health()
    line = (
        f"status={payload['status']} uptime={payload['uptime_seconds']:.1f}s "
        f"tenants={','.join(payload['tenants']) or '-'}"
    )
    recovering = payload.get("recovering") or []
    if recovering:
        line += f" recovering={','.join(recovering)}"
    console.print(line)
    return 0


def _cmd_stats(api: APIClient, args: argparse.Namespace) -> int:
    payload = ServerClient(api).stats()
    server = payload["server"]
    console.print(
        f"{server['url']}  uptime={server['uptime_seconds']:.1f}s "
        f"requests={server['requests_served']}"
    )
    table = Table(title="Tenants", show_lines=False)
    for header in (
        "tenant", "version", "datasets", "views", "queue",
        "accepted", "429s", "batches", "coalesced", "batch ms", "backend",
        "durability",
    ):
        table.add_column(header)
    for name, tenant in sorted(payload["tenants"].items()):
        ingest = tenant["ingest"]
        table.add_row(
            name,
            str(tenant["state_version"]),
            str(tenant["datasets"]),
            str(tenant["views"]),
            f"{tenant['queue_depth']}/{tenant['queue_capacity']}",
            str(ingest["accepted"]),
            str(ingest["rejected_backpressure"]),
            str(ingest["applied_batches"]),
            str(ingest["coalesced_updates"]),
            f"{1000 * ingest['ewma_batch_seconds']:.2f}",
            _render_backend(tenant),
            _render_durability(tenant),
        )
    console.print(table)
    return 0


def _render_backend(tenant: Dict[str, Any]) -> str:
    """``requested: name×count,...`` — active backend plus per-backend applies.

    Older servers omit the fields; render a dash so the CLI stays usable
    against them.
    """
    backend = tenant.get("backend")
    if backend is None:
        return "-"
    applies = tenant.get("backend_applies") or {}
    if not applies:
        return str(backend)
    counts = ",".join(f"{name}×{count}" for name, count in sorted(applies.items()))
    return f"{backend}: {counts}"


def _render_durability(tenant: Dict[str, Any]) -> str:
    """``policy@segment`` for a durable tenant, flagged when read-only.

    Older servers (and in-memory tenants) report nothing; render a dash.
    """
    durability = tenant.get("durability")
    if not durability:
        return "-"
    recovery = durability.get("recovery") or {}
    if recovery.get("read_only"):
        return f"{durability['policy']}: READ-ONLY ({recovery.get('reason')})"
    wal = durability.get("wal") or {}
    rendered = str(durability["policy"])
    if wal:
        rendered += f"@seg{wal['segment']}"
    if recovery.get("records_replayed"):
        rendered += f" (+{recovery['records_replayed']} replayed)"
    return rendered


def _cmd_datasets(api: APIClient, args: argparse.Namespace) -> int:
    client = DatasetsClient(api, tenant=args.tenant)
    if args.datasets_command == "list":
        payload = client.list()
        table = Table(title=f"Datasets (version {payload['version']})")
        for header in ("name", "fields", "distinct", "cardinality"):
            table.add_column(header)
        for entry in payload["datasets"]:
            table.add_row(
                entry["name"],
                _render_cell(entry["fields"]),
                str(entry["distinct"]),
                str(entry["cardinality"]),
            )
        console.print(table)
        return 0
    if args.datasets_command == "create":
        fields: List[Any]
        if args.fields_json is not None:
            fields = json.loads(args.fields_json)
        elif args.fields:
            fields = [name.strip() for name in args.fields.split(",") if name.strip()]
        else:
            return _fail("datasets create needs --fields or --fields-json")
        rows = None
        if args.rows is not None or args.rows_file is not None:
            rows = _load_json_arg(args.rows, args.rows_file, "rows")
        payload = client.create(args.name, fields, rows=rows)
        console.print(
            f"created dataset {payload['dataset']!r} (version {payload['version']})"
        )
        return 0
    if args.datasets_command == "show":
        payload = client.show(args.name)
        console.print(
            _pairs_table(
                f"{args.name} (version {payload['version']}, "
                f"{payload['cardinality']} rows)",
                payload,
            )
        )
        return 0
    return _fail(f"unknown datasets command {args.datasets_command!r}")


def _cmd_views(api: APIClient, args: argparse.Namespace) -> int:
    client = ViewsClient(api, tenant=args.tenant)
    if args.views_command == "list":
        payload = client.list()
        table = Table(title=f"Views (version {payload['version']})")
        for header in ("name", "strategy", "execution", "updates", "distinct"):
            table.add_column(header)
        for entry in payload["views"]:
            table.add_row(
                entry["name"],
                entry["strategy"],
                entry["execution"],
                str(entry["updates_applied"]),
                str(entry["distinct"]),
            )
        console.print(table)
        return 0
    if args.views_command == "create":
        query = _load_json_arg(args.query, args.query_file, "query")
        payload = client.create(args.name, query, strategy=args.strategy)
        console.print(
            f"created view {payload['view']!r} "
            f"(strategy={payload['strategy']}, execution={payload['execution']})"
        )
        return 0
    if args.views_command == "show":
        payload = client.show(args.name)
        console.print(
            _pairs_table(
                f"{args.name} (version {payload['version']}, "
                f"strategy {payload['strategy']})",
                payload,
            )
        )
        return 0
    if args.views_command == "explain":
        payload = client.explain(args.name)
        plan = payload["plan"]
        console.print(
            f"view {plan['view']!r}: strategy={plan['strategy']} "
            f"(requested {plan['requested']}), execution={plan['execution']}, "
            f"{plan['shards']} shard(s), refresh {plan['parallel_apply']}"
        )
        console.print(f"reason: {plan['reason']}")
        table = Table(title="Candidates")
        for header in ("strategy", "eligible", "tcost", "scan", "total", "reason"):
            table.add_column(header)
        for estimate in plan["estimates"]:
            table.add_row(
                estimate["strategy"],
                "yes" if estimate["eligible"] else "no",
                _render_cell(estimate["tcost"]),
                _render_cell(estimate["scan_cost"]),
                _render_cell(estimate["total"]),
                estimate["reason"],
            )
        console.print(table)
        if args.verbose:
            console.print(json.dumps(plan, indent=2))
        return 0
    if args.views_command == "indexes":
        payload = client.indexes(args.name)
        table = Table(title=f"Indexes (version {payload['version']})")
        for header in ("relation", "key paths", "registered", "entries", "hits"):
            table.add_column(header)
        for entry in payload["indexes"]:
            table.add_row(
                entry["relation"],
                _render_cell(entry["key_paths"]),
                "yes" if entry["registered"] else "no",
                str(entry.get("entries", "-")),
                str(entry.get("hits", "-")),
            )
        console.print(table)
        return 0
    return _fail(f"unknown views command {args.views_command!r}")


def _cmd_apply(api: APIClient, args: argparse.Namespace) -> int:
    update = _load_json_arg(args.data, args.file, "update data")
    updates = update if isinstance(update, list) else [update]
    payload = UpdatesClient(api, tenant=args.tenant).apply(*updates, mode=args.mode)
    if args.mode == "async":
        console.print(
            f"accepted {payload['accepted']} update(s), "
            f"queue depth {payload['queue_depth']}"
        )
    else:
        last = payload["results"][-1]
        console.print(
            f"applied {payload['applied']} update(s), "
            f"version {last['version']} "
            f"(coalesced with {last['batched_with']} other(s))"
        )
    return 0


def _cmd_vacuum(api: APIClient, args: argparse.Namespace) -> int:
    payload = UpdatesClient(api, tenant=args.tenant).vacuum()
    console.print(
        f"vacuum at version {payload['version']}: "
        f"{json.dumps(payload['reclaimed'])}"
    )
    return 0


def _cmd_checkpoint(api: APIClient, args: argparse.Namespace) -> int:
    payload = UpdatesClient(api, tenant=args.tenant).checkpoint()
    console.print(
        f"checkpoint {payload['seq']} at version {payload['state_version']} "
        f"(WAL replay starts at segment {payload['wal_start_segment']})"
    )
    return 0


def _cmd_promote(api: APIClient, args: argparse.Namespace) -> int:
    payload = ReplicationClient(api, tenant=args.tenant).promote(epoch=args.epoch)
    if payload.get("already_primary"):
        console.print(
            f"tenant {payload['tenant']!r} is already primary "
            f"(epoch {payload['epoch']})"
        )
    elif payload.get("reenabled"):
        console.print(
            f"re-enabled writes on primary {payload['tenant']!r} "
            f"(epoch {payload['epoch']}, version {payload['version']})"
        )
    else:
        console.print(
            f"promoted tenant {payload['tenant']!r} to primary at epoch "
            f"{payload['epoch']} (version {payload['version']}); "
            f"the old primary is being fenced"
        )
    return 0


def _cmd_replication(api: APIClient, args: argparse.Namespace) -> int:
    payload = ReplicationClient(api, tenant=args.tenant).status()
    line = (
        f"tenant={payload['tenant']} role={payload['role']} "
        f"epoch={payload['epoch']} version={payload['state_version']}"
    )
    if payload.get("wal_end"):
        segment, offset = payload["wal_end"]
        line += f" wal_end={segment}:{offset}"
    lag = payload.get("replication_lag")
    if lag is not None:
        line += f" lag={lag['records']} records/{lag['bytes']} bytes"
    if payload.get("read_only"):
        line += f" read_only=({payload['read_only']})"
    console.print(line)
    link = payload.get("link")
    if link is not None:
        console.print(
            f"link: upstream={link['upstream']} connected={link['connected']} "
            f"polls={link['polls']} shipped={link['frames_shipped']} frames/"
            f"{link['bytes_shipped']} bytes bootstraps={link['bootstraps']}"
            + (f" last_error=({link['last_error']})" if link["last_error"] else "")
        )
    if args.verbose:
        console.print(json.dumps(payload, indent=2))
    return 0


def _cmd_watch(api: APIClient, args: argparse.Namespace) -> int:
    """Poll with ``If-None-Match``: an unchanged view costs a body-less 304
    (the server never encodes the result), and the table redraws only when
    the version actually advanced."""
    client = ViewsClient(api, tenant=args.tenant)
    version: Optional[int] = None
    remaining = args.count
    while remaining != 0:
        payload = client.show(args.name, etag=version)
        if not payload.get("unchanged"):
            version = payload["version"]
            console.print(
                _pairs_table(f"{args.name} @ version {version}", payload)
            )
        if remaining > 0:
            remaining -= 1
        if remaining != 0:
            time.sleep(args.interval)
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Client for the repro IVM service (see docs/serve.md)",
    )
    parser.add_argument(
        "--server",
        default=None,
        help=f"server URL (default: ${DEFAULT_SERVER} or http://127.0.0.1:8765)",
    )
    parser.add_argument(
        "--tenant",
        default=os.environ.get(DEFAULT_TENANT, "default"),
        help=f"tenant name (default: ${DEFAULT_TENANT} or 'default')",
    )
    parser.add_argument("--verbose", action="store_true", help="extra output")
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run a server in the foreground")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--queue-depth", type=int, default=256)
    serve.add_argument("--coalesce", type=int, default=64)
    serve.add_argument("--shards", type=int, default=None)
    serve.add_argument("--parallel-views", type=int, default=None)
    serve.add_argument(
        "--data-dir",
        default=None,
        help="durable root: per-tenant WALs + checkpoints, recovered on start",
    )
    serve.add_argument(
        "--fsync",
        choices=("always", "batch", "off"),
        default=None,
        help="WAL fsync policy (default: $REPRO_FSYNC or 'batch')",
    )
    serve.add_argument(
        "--replica-of",
        default=None,
        metavar="URL",
        help="follow this upstream server's tenants as read-only replicas "
        "(requires --data-dir; see docs/replication.md)",
    )
    serve.add_argument(
        "--poll-wait",
        type=float,
        default=5.0,
        help="replication long-poll duration in seconds (replica mode)",
    )

    commands.add_parser("health", help="server liveness")
    commands.add_parser("stats", help="server + tenant admission statistics")

    datasets = commands.add_parser("datasets", help="manage datasets")
    datasets_commands = datasets.add_subparsers(dest="datasets_command", required=True)
    datasets_commands.add_parser("list", help="list datasets")
    datasets_create = datasets_commands.add_parser("create", help="create a dataset")
    datasets_create.add_argument("name")
    datasets_create.add_argument(
        "--fields", default=None, help="comma-separated base field names"
    )
    datasets_create.add_argument(
        "--fields-json", default=None, help="fields spec as JSON (for nested columns)"
    )
    datasets_create.add_argument("--rows", default=None, help="initial rows as JSON")
    datasets_create.add_argument("--rows-file", default=None)
    datasets_show = datasets_commands.add_parser("show", help="dataset contents")
    datasets_show.add_argument("name")

    views = commands.add_parser("views", help="manage maintained views")
    views_commands = views.add_subparsers(dest="views_command", required=True)
    views_commands.add_parser("list", help="list views")
    views_create = views_commands.add_parser("create", help="create a view")
    views_create.add_argument("name")
    views_create.add_argument("--query", default=None, help="query spec as JSON")
    views_create.add_argument("--query-file", default=None)
    views_create.add_argument("--strategy", default="auto")
    views_show = views_commands.add_parser("show", help="view result")
    views_show.add_argument("name")
    views_explain = views_commands.add_parser("explain", help="maintenance plan")
    views_explain.add_argument("name")
    views_indexes = views_commands.add_parser("indexes", help="live index report")
    views_indexes.add_argument("name")

    apply_parser = commands.add_parser("apply", help="apply updates")
    apply_parser.add_argument("--data", default=None, help="update(s) as JSON")
    apply_parser.add_argument("--file", default=None, help="update(s) from a JSON file")
    apply_parser.add_argument("--mode", choices=("sync", "async"), default="sync")

    commands.add_parser("vacuum", help="reclaim derived state")

    commands.add_parser(
        "checkpoint", help="cut a durable snapshot checkpoint for the tenant"
    )

    promote = commands.add_parser(
        "promote", help="promote this endpoint's tenant to writable primary"
    )
    promote.add_argument(
        "--epoch",
        type=int,
        default=None,
        help="explicit fencing epoch (default: past everything observed)",
    )

    commands.add_parser(
        "replication", help="role, epoch and replication lag for the tenant"
    )

    watch = commands.add_parser("watch", help="poll a view, print on change")
    watch.add_argument("name")
    watch.add_argument("--interval", type=float, default=1.0)
    watch.add_argument(
        "--count", type=int, default=-1, help="polls before exiting (-1 = forever)"
    )
    return parser


_COMMANDS = {
    "health": _cmd_health,
    "stats": _cmd_stats,
    "datasets": _cmd_datasets,
    "views": _cmd_views,
    "apply": _cmd_apply,
    "vacuum": _cmd_vacuum,
    "checkpoint": _cmd_checkpoint,
    "promote": _cmd_promote,
    "replication": _cmd_replication,
    "watch": _cmd_watch,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    api = APIClient(args.server)
    try:
        return _COMMANDS[args.command](api, args)
    except APIError as error:
        return _fail(str(error))
    except (ValueError, KeyError, json.JSONDecodeError) as error:
        return _fail(str(error))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
