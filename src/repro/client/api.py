"""The base HTTP client: one connection policy shared by every resource.

:class:`APIClient` speaks the server's JSON protocol over the standard
library (:mod:`urllib.request` — no third-party HTTP dependency) and owns
the retry policy:

* **429 backpressure** — honored via the server's ``Retry-After`` header
  (capped at :attr:`APIClient.max_retry_after`), retried up to
  ``max_retries`` times.  This is the client half of the admission-control
  contract: a well-behaved writer backs off exactly as long as the server's
  ingest queue predicts.
* **503 + Retry-After** — a tenant still replaying its WAL after a server
  restart (``docs/durability.md``); retried exactly like backpressure.  A
  503 *without* the header (e.g. an apply timeout) surfaces immediately.
* **connection errors** (refused, reset, timeout) — retried with
  exponential backoff ``backoff_base * 2**attempt`` plus ±25% jitter, for
  servers that are restarting.
* a **total retry deadline** (``retry_deadline``, default 60 s) bounds the
  whole retry dance per logical request: a tenant that answers every probe
  with 503 + ``Retry-After`` (dead, endlessly recovering, or fenced behind
  a long replay) surfaces as an :class:`APIError` with code
  ``retry_deadline`` instead of the client spinning forever.
* **304 Not Modified** — the success path of a conditional read (an
  ``If-None-Match`` ETag matched); decoded to
  ``{"unchanged": True, "not_modified": True, "etag", "version"}`` rather
  than raised, so pollers treat it like the legacy ``since_version``
  short-circuit.
* every other HTTP error surfaces immediately as :class:`APIError` with the
  server's structured ``{"error": {"code", "message"}}`` body decoded.

Resource clients (:mod:`repro.client.resources`) compose on top of this,
mirroring the ``APIClient`` + per-resource-client layering of typical
service CLIs.
"""

from __future__ import annotations

import json
import os
import random
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

__all__ = ["APIClient", "APIError", "DEFAULT_SERVER", "DEFAULT_TENANT"]

#: Environment variables the CLI and SDK default from.
DEFAULT_SERVER = "REPRO_SERVER"
DEFAULT_TENANT = "REPRO_TENANT"


class APIError(Exception):
    """A non-retryable (or retries-exhausted) API failure."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.message = message


class APIClient:
    """JSON-over-HTTP client with 429/connection retries."""

    def __init__(
        self,
        base_url: Optional[str] = None,
        *,
        timeout: float = 30.0,
        max_retries: int = 5,
        backoff_base: float = 0.05,
        max_retry_after: float = 5.0,
        retry_deadline: Optional[float] = 60.0,
        sleep=time.sleep,
    ) -> None:
        if base_url is None:
            base_url = os.environ.get(DEFAULT_SERVER, "http://127.0.0.1:8765")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.max_retry_after = max_retry_after
        # Total wall-clock budget for one logical request including every
        # retry sleep; None disables the bound.
        self.retry_deadline = retry_deadline
        self._sleep = sleep
        # Observability for tests and the CLI's --verbose mode.
        self.retries_performed = 0

    # ------------------------------------------------------------------ #
    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        """One logical request; transparently retries 429s and dead sockets.

        Extra ``headers`` merge over the defaults (conditional reads pass
        ``If-None-Match``).  A **304 Not Modified** answer is not an error:
        it decodes to ``{"unchanged": True, "not_modified": True}`` — plus
        the server's ``etag`` and the ``version`` parsed from it — so
        polling callers branch on ``payload.get("unchanged")`` exactly as
        they do for the legacy ``since_version`` short-circuit.
        """
        url = f"{self.base_url}/{path.lstrip('/')}"
        data = None if body is None else json.dumps(body).encode("utf-8")
        request_headers = {"Content-Type": "application/json"}
        if headers:
            request_headers.update(headers)
        attempt = 0
        started = time.monotonic()
        slept = 0.0

        def _budget_allows(delay: float) -> bool:
            # Measured wall clock when sleeps are real; the accumulated
            # requested delays when tests inject a no-op sleep.  Either
            # running past the deadline means: stop retrying, surface it.
            if self.retry_deadline is None:
                return True
            elapsed = max(time.monotonic() - started, slept)
            return elapsed + delay <= self.retry_deadline

        while True:
            request = urllib.request.Request(
                url,
                data=data,
                method=method,
                headers=dict(request_headers),
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    payload = response.read()
                    return json.loads(payload.decode("utf-8")) if payload else {}
            except urllib.error.HTTPError as error:
                if error.status == 304:
                    return self._decode_not_modified(error)
                raw = error.read()
                code, message = self._decode_error(raw, error)
                # 429 is always the admission-control contract; 503 is
                # retryable only when the server stamped a Retry-After (a
                # tenant mid-recovery) — a bare 503 (apply timeout) is not.
                retryable = error.status == 429 or (
                    error.status == 503
                    and error.headers is not None
                    and error.headers.get("Retry-After") is not None
                )
                if retryable and attempt < self.max_retries:
                    retry_after = self._retry_after_of(error)
                    if not _budget_allows(retry_after):
                        raise APIError(
                            error.status,
                            "retry_deadline",
                            f"gave up after {self.retry_deadline:g}s of retries: "
                            f"{message}",
                        ) from None
                    self.retries_performed += 1
                    attempt += 1
                    slept += retry_after
                    self._sleep(retry_after)
                    continue
                raise APIError(error.status, code, message) from None
            except (urllib.error.URLError, ConnectionError, socket.timeout) as error:
                if attempt < self.max_retries:
                    delay = self.backoff_base * (2 ** attempt)
                    delay *= 1.0 + random.uniform(-0.25, 0.25)
                    delay = min(delay, self.max_retry_after)
                    if not _budget_allows(delay):
                        reason = getattr(error, "reason", error)
                        raise APIError(
                            0,
                            "retry_deadline",
                            f"gave up after {self.retry_deadline:g}s of retries: "
                            f"{url}: {reason}",
                        ) from None
                    self.retries_performed += 1
                    attempt += 1
                    slept += delay
                    self._sleep(delay)
                    continue
                reason = getattr(error, "reason", error)
                raise APIError(0, "connection", f"{url}: {reason}") from None

    @staticmethod
    def _decode_not_modified(error: urllib.error.HTTPError) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"unchanged": True, "not_modified": True}
        etag = error.headers.get("ETag") if error.headers else None
        if etag:
            payload["etag"] = etag
            stripped = etag.strip()
            if stripped.startswith("W/"):
                stripped = stripped[2:]
            stripped = stripped.strip('"')
            if stripped.isdigit():
                payload["version"] = int(stripped)
        return payload

    def _retry_after_of(self, error: urllib.error.HTTPError) -> float:
        header = error.headers.get("Retry-After") if error.headers else None
        try:
            retry_after = float(header) if header is not None else self.backoff_base
        except ValueError:
            retry_after = self.backoff_base
        return min(max(retry_after, 0.0), self.max_retry_after)

    @staticmethod
    def _decode_error(raw: bytes, error: urllib.error.HTTPError):
        try:
            decoded = json.loads(raw.decode("utf-8"))
            details = decoded.get("error", {})
            return (
                str(details.get("code", "http_error")),
                str(details.get("message", error.reason)),
            )
        except (UnicodeDecodeError, json.JSONDecodeError, AttributeError):
            return "http_error", str(error.reason)

    # ------------------------------------------------------------------ #
    # Convenience verbs
    # ------------------------------------------------------------------ #
    def get(self, path: str, headers: Optional[Dict[str, str]] = None) -> Any:
        return self.request("GET", path, headers=headers)

    def post(self, path: str, body: Optional[Dict[str, Any]] = None) -> Any:
        return self.request("POST", path, body or {})

    def __repr__(self) -> str:
        return f"APIClient({self.base_url!r})"
