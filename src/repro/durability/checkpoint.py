"""Snapshot checkpoints: per-shard blobs plus a manifest, written atomically.

A checkpoint is a directory ``<checkpoints>/ckpt-00000042/`` holding

* one **blob file per store shard** (``blob-0000.bin``, …) — the shard's
  ``(element, multiplicity)`` pairs in the PR 7 pair codec, pickle fallback
  for codec-unsendable elements; each file is framed
  ``u32 length | u32 crc32 | kind byte + payload`` so load detects rot;
* a **dictionaries blob** (the shredded input dictionaries) and a
  **shredder blob** (the label factory counter and value→label memo —
  what makes replayed label assignment deterministic);
* ``manifest.bin``, written **last**: engine ``state_version``, every
  dataset's schema and shard counts, every view's spec (name, pinned
  strategy, pickled expression, result-store shard count), and
  ``wal_start_segment`` — the WAL segment the log was rotated to at
  capture time, so replay starts exactly where the checkpoint's coverage
  ends.

**Capture never blocks writers**: the state it grabs is the storage
layer's frozen copy-on-write snapshots (``O(shards)`` per store) plus an
``O(labels)`` copy of the dictionary entries and shredder state; the
``O(|DB|)`` encoding happens later, in :func:`write_checkpoint`, against
those immutable snapshots — the serving layer runs it on a handler thread
while the ingest worker keeps applying.

**Atomicity**: blobs are written into a ``.tmp-ckpt-*`` directory, each
file fsynced, the manifest written last, and the directory renamed into
place in one step.  A crash anywhere before the rename leaves only a tmp
directory (deleted on the next open); a crash after it leaves a complete,
valid checkpoint.  Load walks checkpoints newest-first and falls back past
any that fail CRC validation.
"""

from __future__ import annotations

import os
import pickle
import shutil
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.bag.bag import Bag
from repro.bag.codec import UnsendableValueError, decode_pairs, encode_pairs
from repro.durability.faults import FaultInjector, InjectedCrash, fire
from repro.durability.wal import _fsync_directory
from repro.storage.shards import ShardedBag

__all__ = [
    "CheckpointCapture",
    "LoadedCheckpoint",
    "list_checkpoints",
    "load_newest_checkpoint",
    "read_manifest",
    "write_checkpoint",
]

_FRAME = struct.Struct("<II")

_KIND_CODEC = 0x01
_KIND_PICKLE = 0x02

_PROTO = pickle.HIGHEST_PROTOCOL

_MANIFEST = "manifest.bin"


class CheckpointCapture:
    """Everything a checkpoint needs, pinned at one state version.

    Holds *frozen* bag snapshots (copy-on-write: retaining them is free
    until the next write touches a shard) plus already-copied dictionary
    entries and pickled shredder state.  Safe to encode on another thread
    while the engine keeps applying updates.
    """

    __slots__ = (
        "state_version",
        "wal_start_segment",
        "datasets",
        "dictionaries",
        "shredder_blob",
        "views",
        "epoch",
    )

    def __init__(
        self,
        state_version: int,
        wal_start_segment: int,
        datasets: List[Dict[str, Any]],
        dictionaries: Dict[str, Dict[Any, Bag]],
        shredder_blob: bytes,
        views: List[Dict[str, Any]],
        epoch: int = 0,
    ) -> None:
        self.state_version = state_version
        self.wal_start_segment = wal_start_segment
        self.datasets = datasets
        self.dictionaries = dictionaries
        self.shredder_blob = shredder_blob
        self.views = views
        self.epoch = epoch


class LoadedCheckpoint:
    """A validated checkpoint: manifest plus decoded per-store bags."""

    __slots__ = ("seq", "path", "manifest", "bags", "dictionaries", "shredder_blob")

    def __init__(
        self,
        seq: int,
        path: str,
        manifest: Dict[str, Any],
        bags: Dict[str, Bag],
        dictionaries: Dict[str, Dict[Any, Bag]],
        shredder_blob: bytes,
    ) -> None:
        self.seq = seq
        self.path = path
        self.manifest = manifest
        self.bags = bags  # blob-list key → merged bag
        self.dictionaries = dictionaries
        self.shredder_blob = shredder_blob


# ---------------------------------------------------------------------- #
# Directory layout
# ---------------------------------------------------------------------- #

def checkpoint_dirname(seq: int) -> str:
    return f"ckpt-{seq:08d}"


def checkpoint_seq(dirname: str) -> Optional[int]:
    if not dirname.startswith("ckpt-"):
        return None
    digits = dirname[5:]
    return int(digits) if digits.isdigit() else None


def list_checkpoints(root: str) -> List[Tuple[int, str]]:
    """``(seq, path)`` of every finalized checkpoint directory, ascending."""
    found = []
    try:
        names = os.listdir(root)
    except FileNotFoundError:
        return []
    for name in names:
        seq = checkpoint_seq(name)
        path = os.path.join(root, name)
        if seq is not None and os.path.isdir(path):
            found.append((seq, path))
    return sorted(found)


def next_checkpoint_seq(root: str) -> int:
    existing = list_checkpoints(root)
    return (existing[-1][0] + 1) if existing else 1


# ---------------------------------------------------------------------- #
# Framed file IO
# ---------------------------------------------------------------------- #

def _write_framed(path: str, payload: bytes) -> None:
    frame = _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload
    with open(path, "wb") as handle:
        handle.write(frame)
        handle.flush()
        os.fsync(handle.fileno())


def _read_framed(path: str) -> bytes:
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < _FRAME.size:
        raise ValueError(f"{path}: truncated frame")
    length, crc = _FRAME.unpack_from(data, 0)
    payload = data[_FRAME.size : _FRAME.size + length]
    if len(payload) != length:
        raise ValueError(f"{path}: truncated payload")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ValueError(f"{path}: crc mismatch")
    return payload


def _encode_shard(bag: Bag) -> bytes:
    try:
        return bytes([_KIND_CODEC]) + encode_pairs(bag.items())
    except UnsendableValueError:
        return bytes([_KIND_PICKLE]) + pickle.dumps(bag, protocol=_PROTO)


def _decode_shard(payload: bytes) -> Bag:
    kind, data = payload[0], payload[1:]
    if kind == _KIND_CODEC:
        return Bag.from_pairs(decode_pairs(data))
    if kind == _KIND_PICKLE:
        return pickle.loads(data)
    raise ValueError(f"unknown shard blob kind 0x{kind:02x}")


def _shard_bags(bag: Bag) -> Tuple[Bag, ...]:
    if isinstance(bag, ShardedBag):
        return tuple(bag.shard_bags)
    return (bag,)


# ---------------------------------------------------------------------- #
# Write
# ---------------------------------------------------------------------- #

def write_checkpoint(
    root: str,
    capture: CheckpointCapture,
    faults: Optional[FaultInjector] = None,
) -> Tuple[str, int]:
    """Encode a capture into ``root`` atomically; returns ``(path, seq)``."""
    os.makedirs(root, exist_ok=True)
    seq = next_checkpoint_seq(root)
    tmp = os.path.join(root, f".tmp-{checkpoint_dirname(seq)}")
    final = os.path.join(root, checkpoint_dirname(seq))
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    blob_counter = 0

    def _next_blob(payload: bytes) -> str:
        nonlocal blob_counter
        name = f"blob-{blob_counter:04d}.bin"
        blob_counter += 1
        _write_framed(os.path.join(tmp, name), payload)
        if fire(faults, "checkpoint.mid_write"):
            raise InjectedCrash("checkpoint.mid_write")
        return name

    datasets_meta: List[Dict[str, Any]] = []
    for entry in capture.datasets:
        nested_blobs = [
            _next_blob(_encode_shard(shard)) for shard in _shard_bags(entry["nested_bag"])
        ]
        flat_blobs = [
            _next_blob(_encode_shard(shard)) for shard in _shard_bags(entry["flat_bag"])
        ]
        datasets_meta.append(
            {
                "name": entry["name"],
                "schema": entry["schema"],
                "nested_shards": entry["nested_shards"],
                "flat_shards": entry["flat_shards"],
                "nested_blobs": nested_blobs,
                "flat_blobs": flat_blobs,
            }
        )
    dictionaries_blob = _next_blob(
        bytes([_KIND_PICKLE]) + pickle.dumps(capture.dictionaries, protocol=_PROTO)
    )
    shredder_blob = _next_blob(bytes([_KIND_PICKLE]) + capture.shredder_blob)
    manifest = {
        "format": 1,
        "seq": seq,
        "state_version": capture.state_version,
        "wal_start_segment": capture.wal_start_segment,
        # The replication epoch at capture time.  Checkpoints double as the
        # bootstrap a cold replica seeds from, so the fencing epoch must
        # travel with them (readers default a missing key to 0 — manifests
        # from before replication existed stay loadable).
        "epoch": capture.epoch,
        "datasets": datasets_meta,
        "dictionaries_blob": dictionaries_blob,
        "shredder_blob": shredder_blob,
        "views": capture.views,
    }
    _write_framed(os.path.join(tmp, _MANIFEST), pickle.dumps(manifest, protocol=_PROTO))
    if fire(faults, "checkpoint.pre_rename"):
        raise InjectedCrash("checkpoint.pre_rename")
    os.rename(tmp, final)
    _fsync_directory(root)
    if fire(faults, "checkpoint.post_rename"):
        raise InjectedCrash("checkpoint.post_rename")
    return final, seq


# ---------------------------------------------------------------------- #
# Load
# ---------------------------------------------------------------------- #

def read_manifest(path: str) -> Dict[str, Any]:
    """Decode one checkpoint's manifest without loading its blobs."""
    manifest = pickle.loads(_read_framed(os.path.join(path, _MANIFEST)))
    if manifest.get("format") != 1:
        raise ValueError(f"{path}: unknown manifest format {manifest.get('format')!r}")
    return manifest


def _read_checkpoint(seq: int, path: str) -> LoadedCheckpoint:
    manifest = read_manifest(path)
    bags: Dict[str, Bag] = {}
    for entry in manifest["datasets"]:
        for side in ("nested", "flat"):
            merged: List[Tuple[Any, int]] = []
            for blob_name in entry[f"{side}_blobs"]:
                shard = _decode_shard(_read_framed(os.path.join(path, blob_name)))
                merged.extend(shard.items())
            # Shards hold disjoint elements, so folding is a plain union.
            bags[f"{side}:{entry['name']}"] = Bag.from_pairs(merged)
    dict_payload = _read_framed(os.path.join(path, manifest["dictionaries_blob"]))
    if dict_payload[0] != _KIND_PICKLE:
        raise ValueError(f"{path}: bad dictionaries blob")
    dictionaries = pickle.loads(dict_payload[1:])
    shredder_payload = _read_framed(os.path.join(path, manifest["shredder_blob"]))
    if shredder_payload[0] != _KIND_PICKLE:
        raise ValueError(f"{path}: bad shredder blob")
    return LoadedCheckpoint(seq, path, manifest, bags, dictionaries, shredder_payload[1:])


def load_newest_checkpoint(
    root: str,
) -> Tuple[Optional[LoadedCheckpoint], List[Dict[str, str]]]:
    """The newest checkpoint that validates, plus the ones that did not.

    Walks finalized checkpoints newest-first; any that fail to read
    (missing files, CRC mismatches, undecodable manifests) are reported in
    the second element for the manager to quarantine, and the walk falls
    back to the next older one.
    """
    discarded: List[Dict[str, str]] = []
    for seq, path in sorted(list_checkpoints(root), reverse=True):
        try:
            return _read_checkpoint(seq, path), discarded
        except Exception as error:  # noqa: BLE001 - any damage means fall back
            discarded.append(
                {"path": path, "reason": f"{type(error).__name__}: {error}"}
            )
    return None, discarded
