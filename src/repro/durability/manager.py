"""The durability manager: WAL logging, checkpoint capture, replay-on-open.

One :class:`DurabilityManager` lives inside a durable
:class:`~repro.engine.core.Engine` and owns the ``data_dir`` layout::

    <data_dir>/wal/wal-00000001.log …      the write-ahead log segments
    <data_dir>/checkpoints/ckpt-00000001/  snapshot checkpoints
    <data_dir>/quarantine/                 damaged files recovery set aside

**Logging discipline** is append-after-apply: the engine mutates memory
first and logs the operation only once the store accepted it, both under
the database's lifecycle lock, so the WAL never records a rejected
mutation.  Durability of *acknowledged* writes is the caller's sync point:
``always`` syncs inside every append, the serving layer calls
:meth:`sync` once per acknowledged batch under ``batch``, and ``off``
never syncs (best-effort, bounded loss).

**Recovery** (:meth:`open_and_recover`) restores the newest valid
checkpoint — adopting shard contents wholesale through
``Database.adopt_relation`` and recreating views through the normal
``Engine.view`` path with their checkpointed strategies and result-store
shard counts pinned — then replays the WAL tail from the checkpoint's
``wal_start_segment`` through the normal engine API.  A **torn tail**
(damage extending to the end of the last segment — what a mid-write crash
leaves) is truncated away and recovery stays writable; **corruption**
anywhere else quarantines the damaged file and degrades the engine to
read-only, because records past the damage can no longer be replayed in
order.  The outcome is a :class:`RecoveryReport`.
"""

from __future__ import annotations

import os
import pickle
import shutil
import threading
import time
from typing import Any, Dict, List, Optional

from repro.bag.bag import Bag
from repro.durability.checkpoint import (
    CheckpointCapture,
    LoadedCheckpoint,
    list_checkpoints,
    load_newest_checkpoint,
    read_manifest,
    write_checkpoint,
)
from repro.durability.faults import FaultInjector
from repro.durability.records import (
    decode_record,
    encode_dataset_record,
    encode_update_record,
    encode_vacuum_record,
    encode_view_record,
)
from repro.durability.wal import (
    WriteAheadLog,
    list_segments,
    resolve_fsync_policy,
    scan_segment,
    segment_filename,
)
from repro.errors import EngineError
from repro.ivm.updates import Update

__all__ = ["DurabilityManager", "RecoveryReport"]

_PROTO = pickle.HIGHEST_PROTOCOL


class RecoveryReport:
    """What one replay-on-open found, did, and gave up on."""

    __slots__ = (
        "data_dir",
        "duration_seconds",
        "checkpoint",
        "checkpoints_discarded",
        "segments_scanned",
        "records_replayed",
        "torn",
        "quarantined",
        "read_only",
        "reason",
        "state_version",
    )

    def __init__(self, data_dir: str) -> None:
        self.data_dir = data_dir
        self.duration_seconds = 0.0
        #: ``{"seq", "path", "state_version"}`` of the restored checkpoint,
        #: or ``None`` when recovery started from an empty database.
        self.checkpoint: Optional[Dict[str, Any]] = None
        self.checkpoints_discarded: List[Dict[str, str]] = []
        self.segments_scanned = 0
        self.records_replayed = 0
        #: Torn tails truncated: ``{"path", "dropped_bytes"}`` each.
        self.torn: List[Dict[str, Any]] = []
        #: Corrupt files moved aside: ``{"path", "reason"}`` each.
        self.quarantined: List[Dict[str, str]] = []
        self.read_only = False
        self.reason: Optional[str] = None
        self.state_version = 0

    def to_dict(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        status = f"read-only ({self.reason})" if self.read_only else "writable"
        return (
            f"RecoveryReport(version={self.state_version}, "
            f"replayed={self.records_replayed}, {status})"
        )


class DurabilityManager:
    """Owns one engine's WAL, checkpoints, and recovery state."""

    def __init__(
        self,
        data_dir: str,
        *,
        fsync: Optional[str] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.data_dir = data_dir
        self.wal_dir = os.path.join(data_dir, "wal")
        self.checkpoint_dir = os.path.join(data_dir, "checkpoints")
        self.quarantine_dir = os.path.join(data_dir, "quarantine")
        self.policy = resolve_fsync_policy(fsync)
        self._faults = faults
        self._wal: Optional[WriteAheadLog] = None
        #: True while recovery replays through the engine API — the engine's
        #: logging hooks check it so replayed operations are not re-logged.
        self.replaying = False
        self.report: Optional[RecoveryReport] = None
        self._checkpoint_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def open_and_recover(self, engine) -> RecoveryReport:
        """Restore ``engine`` from ``data_dir`` and open the WAL for appends."""
        start = time.monotonic()
        os.makedirs(self.wal_dir, exist_ok=True)
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        report = RecoveryReport(self.data_dir)
        # A crash mid-checkpoint leaves only a .tmp directory: never valid,
        # never referenced, safe to sweep.
        for name in os.listdir(self.checkpoint_dir):
            if name.startswith(".tmp-"):
                shutil.rmtree(os.path.join(self.checkpoint_dir, name), ignore_errors=True)
        loaded, discarded = load_newest_checkpoint(self.checkpoint_dir)
        for entry in discarded:
            moved = self._quarantine(entry["path"])
            report.checkpoints_discarded.append(
                {"path": moved, "reason": entry["reason"]}
            )
        wal_start = 1
        damaged: Optional[str] = None
        self.replaying = True
        try:
            if loaded is not None:
                self._restore_checkpoint(engine, loaded)
                wal_start = loaded.manifest["wal_start_segment"]
                report.checkpoint = {
                    "seq": loaded.seq,
                    "path": loaded.path,
                    "state_version": loaded.manifest["state_version"],
                }
            segments = [
                (number, path)
                for number, path in list_segments(self.wal_dir)
                if number >= wal_start
            ]
            for index, (number, path) in enumerate(segments):
                is_last = index == len(segments) - 1
                scan = scan_segment(number, path, is_last)
                report.segments_scanned += 1
                if damaged is None:
                    try:
                        for payload in scan.payloads:
                            self._replay_payload(engine, payload)
                            report.records_replayed += 1
                    except Exception as error:  # noqa: BLE001 - any replay
                        # failure means the record stream lies about the
                        # state machine: treat the segment as corrupt.
                        scan.status = "corrupt"
                        scan.detail = f"replay failed: {type(error).__name__}: {error}"
                if scan.status == "torn":
                    dropped = os.path.getsize(path) - scan.valid_bytes
                    os.truncate(path, scan.valid_bytes)
                    report.torn.append({"path": path, "dropped_bytes": dropped})
                elif scan.status == "corrupt":
                    moved = self._quarantine(path)
                    report.quarantined.append({"path": moved, "reason": scan.detail})
                    if damaged is None:
                        damaged = (
                            f"WAL segment {segment_filename(number)} is corrupt "
                            f"({scan.detail}); acknowledged writes past it cannot "
                            f"be replayed"
                        )
        finally:
            self.replaying = False
        if damaged is not None:
            engine.database.set_read_only(damaged)
            report.read_only = True
            report.reason = damaged
        else:
            # Segments below wal_start are covered by the restored
            # checkpoint (a crash between rename and prune leaves them).
            for number, path in list_segments(self.wal_dir):
                if number < wal_start:
                    os.remove(path)
            self._wal = WriteAheadLog(
                self.wal_dir, fsync=self.policy, faults=self._faults
            )
        report.state_version = engine.state_version
        report.duration_seconds = time.monotonic() - start
        self.report = report
        return report

    def _restore_checkpoint(self, engine, loaded: LoadedCheckpoint) -> None:
        database = engine.database
        for entry in loaded.manifest["datasets"]:
            name = entry["name"]
            bag_type = engine._restore_dataset(name, entry["schema"])
            database.adopt_relation(
                name,
                bag_type,
                loaded.bags[f"nested:{name}"],
                loaded.bags[f"flat:{name}"],
                nested_shards=entry["nested_shards"],
                flat_shards=entry["flat_shards"],
            )
        for dict_name, entries in loaded.dictionaries.items():
            database.adopt_dictionary(dict_name, entries)
        database.adopt_shredder(pickle.loads(loaded.shredder_blob))
        for spec in loaded.manifest["views"]:
            database.pin_next_result_shards(spec["result_shards"])
            engine.view(
                spec["name"],
                spec["expr"],
                strategy=spec["strategy"],
                targets=spec["targets"],
                expected_update_size=spec["expected_update_size"],
            )
        database.restore_state_version(loaded.manifest["state_version"])

    def _replay_payload(self, engine, payload: bytes) -> None:
        kind, value = decode_record(payload)
        if kind == "update":
            engine.apply(value)
        elif kind == "dataset":
            name, schema, rows = value
            engine.dataset(name, schema, rows=rows)
        elif kind == "view":
            name, strategy, expr, targets, expected_update_size = value
            engine.view(
                name,
                expr,
                strategy=strategy,
                targets=targets,
                expected_update_size=expected_update_size,
            )
        elif kind == "vacuum":
            engine.vacuum()
        else:  # pragma: no cover - decode_record owns the type dispatch
            raise ValueError(f"unreplayable record kind {kind!r}")

    def _quarantine(self, path: str) -> str:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        base = os.path.basename(path.rstrip(os.sep))
        target = os.path.join(self.quarantine_dir, base)
        suffix = 1
        while os.path.exists(target):
            target = os.path.join(self.quarantine_dir, f"{base}.{suffix}")
            suffix += 1
        os.rename(path, target)
        return target

    # ------------------------------------------------------------------ #
    # Logging (called by the engine, under its lifecycle lock)
    # ------------------------------------------------------------------ #
    @property
    def logging(self) -> bool:
        """True while operations should be appended to the WAL."""
        return (
            self._wal is not None and not self._wal.closed and not self.replaying
        )

    def log_update(self, update: Update) -> None:
        if self.logging:
            self._wal.append(encode_update_record(update))

    def prepare_dataset(self, name: str, schema: Any, rows: Optional[Bag]) -> Optional[bytes]:
        """Encode a dataset record up front (so encoding failures surface
        before the registration mutates anything); ``None`` when not logging."""
        if not self.logging:
            return None
        return encode_dataset_record(name, schema, rows)

    def prepare_view(
        self,
        name: str,
        strategy: str,
        expr: Any,
        targets,
        expected_update_size: int,
    ) -> Optional[bytes]:
        """Encode a view record up front — an unpicklable query fails loudly
        here, before the view is built; ``None`` when not logging."""
        if not self.logging:
            return None
        return encode_view_record(name, strategy, expr, targets, expected_update_size)

    def commit(self, record: Optional[bytes]) -> None:
        """Append a prepared record once the operation actually applied."""
        if record is not None and self.logging:
            self._wal.append(record)

    def log_vacuum(self) -> None:
        if self.logging:
            self._wal.append(encode_vacuum_record())

    def sync(self) -> None:
        """Make every logged record durable (the ack barrier under ``batch``)."""
        if self.logging:
            self._wal.sync()

    # ------------------------------------------------------------------ #
    # Checkpoints
    # ------------------------------------------------------------------ #
    def capture(self, engine) -> CheckpointCapture:
        """Pin a checkpoint capture — cheap, must run on the applying thread.

        Rotates the WAL so the capture covers exactly the segments before
        the returned ``wal_start_segment``; the expensive encoding happens
        in :meth:`write_capture`, from any thread.  Refused when the WAL is
        not open for appends (engine closed, mid-replay, or degraded to
        read-only after recovery): without a live rotation point the
        capture would claim coverage from segment 1, and pruning against
        that claim deletes — or double-replays — surviving WAL segments
        whose records the captured state already contains.
        """
        if not self.logging:
            raise EngineError(
                "cannot checkpoint: the WAL is not open for appends "
                "(the engine is closed, replaying, or was degraded to "
                "read-only by recovery)"
            )
        state = engine.database.export_durable_state()
        views = []
        for handle in engine.views():
            store_of = getattr(handle.view, "result_store", None)
            store = store_of() if callable(store_of) else None
            views.append(
                {
                    "name": handle.name,
                    "strategy": handle.strategy,
                    "expr": handle.expr,
                    "targets": handle.targets,
                    "expected_update_size": handle.expected_update_size,
                    "result_shards": None if store is None else store.shards,
                }
            )
        datasets = []
        for name, relation in state["relations"].items():
            datasets.append(
                {
                    "name": name,
                    "schema": engine._dataset_schemas[name],
                    "nested_bag": relation["nested_bag"],
                    "flat_bag": relation["flat_bag"],
                    "nested_shards": relation["nested_shards"],
                    "flat_shards": relation["flat_shards"],
                }
            )
        shredder_blob = pickle.dumps(state["shredder"], protocol=_PROTO)
        wal_start = self._wal.rotate()
        return CheckpointCapture(
            state_version=state["state_version"],
            wal_start_segment=wal_start,
            datasets=datasets,
            dictionaries=state["dictionaries"],
            shredder_blob=shredder_blob,
            views=views,
        )

    def write_capture(self, capture: CheckpointCapture) -> Dict[str, Any]:
        """Encode a capture to disk atomically, then prune what it covers.

        The lock serializes concurrent writers but not the order their
        captures were pinned in, so a capture older than the newest on-disk
        checkpoint is refused: were it written (with a higher seq), the
        next recovery would restore the older state whose WAL tail the
        newer checkpoint's prune already deleted.
        """
        with self._checkpoint_lock:
            existing = list_checkpoints(self.checkpoint_dir)
            if existing:
                try:
                    newest = read_manifest(existing[-1][1])
                except Exception:  # noqa: BLE001 - an unreadable newest
                    # checkpoint cannot order anything; writing a fresh
                    # valid one past it is strictly an improvement.
                    newest = None
                if newest is not None and (
                    capture.wal_start_segment < newest["wal_start_segment"]
                    or capture.state_version < newest["state_version"]
                ):
                    raise EngineError(
                        f"stale checkpoint capture (state_version "
                        f"{capture.state_version}, wal start segment "
                        f"{capture.wal_start_segment}) is older than the "
                        f"newest on-disk checkpoint (state_version "
                        f"{newest['state_version']}, wal start segment "
                        f"{newest['wal_start_segment']}); a concurrent "
                        f"checkpoint already covers this state"
                    )
            path, seq = write_checkpoint(self.checkpoint_dir, capture, self._faults)
            # Everything before the capture's rotation point — and every
            # older checkpoint — is now redundant.
            for number, segment_path in list_segments(self.wal_dir):
                if number < capture.wal_start_segment:
                    os.remove(segment_path)
            for old_seq, old_path in list_checkpoints(self.checkpoint_dir):
                if old_seq < seq:
                    shutil.rmtree(old_path, ignore_errors=True)
            return {
                "seq": seq,
                "path": path,
                "state_version": capture.state_version,
                "wal_start_segment": capture.wal_start_segment,
            }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush and close the WAL.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._wal is not None and not self._wal.closed:
            self._wal.close()

    def discard(self) -> None:
        """Simulated power loss: drop unwritten buffers, abandon the WAL."""
        self._closed = True
        if self._wal is not None:
            self._wal.simulate_crash()

    def describe(self) -> Dict[str, Any]:
        return {
            "data_dir": self.data_dir,
            "policy": self.policy,
            "wal": (
                self._wal.describe()
                if self._wal is not None and not self._wal.closed
                else None
            ),
            "recovery": None if self.report is None else self.report.to_dict(),
        }
