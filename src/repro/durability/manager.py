"""The durability manager: WAL logging, checkpoint capture, replay-on-open.

One :class:`DurabilityManager` lives inside a durable
:class:`~repro.engine.core.Engine` and owns the ``data_dir`` layout::

    <data_dir>/wal/wal-00000001.log …      the write-ahead log segments
    <data_dir>/checkpoints/ckpt-00000001/  snapshot checkpoints
    <data_dir>/quarantine/                 damaged files recovery set aside

**Logging discipline** is append-after-apply: the engine mutates memory
first and logs the operation only once the store accepted it, both under
the database's lifecycle lock, so the WAL never records a rejected
mutation.  Durability of *acknowledged* writes is the caller's sync point:
``always`` syncs inside every append, the serving layer calls
:meth:`sync` once per acknowledged batch under ``batch``, and ``off``
never syncs (best-effort, bounded loss).

**Recovery** (:meth:`open_and_recover`) restores the newest valid
checkpoint — adopting shard contents wholesale through
``Database.adopt_relation`` and recreating views through the normal
``Engine.view`` path with their checkpointed strategies and result-store
shard counts pinned — then replays the WAL tail from the checkpoint's
``wal_start_segment`` through the normal engine API.  A **torn tail**
(damage extending to the end of the last segment — what a mid-write crash
leaves) is truncated away and recovery stays writable; **corruption**
anywhere else quarantines the damaged file and degrades the engine to
read-only, because records past the damage can no longer be replayed in
order.  The outcome is a :class:`RecoveryReport`.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import threading
import time
from typing import Any, Dict, List, Optional

from repro.bag.bag import Bag
from repro.durability.checkpoint import (
    CheckpointCapture,
    LoadedCheckpoint,
    list_checkpoints,
    load_newest_checkpoint,
    read_manifest,
    write_checkpoint,
)
from repro.durability.faults import FaultInjector
from repro.durability.records import (
    decode_record,
    encode_dataset_record,
    encode_update_record,
    encode_vacuum_record,
    encode_view_record,
)
from repro.durability.wal import (
    WriteAheadLog,
    list_segments,
    resolve_fsync_policy,
    scan_segment,
    segment_filename,
)
from repro.errors import EngineError
from repro.ivm.updates import Update

__all__ = [
    "DurabilityManager",
    "RecoveryReport",
    "load_replication_state",
    "store_replication_state",
]

_PROTO = pickle.HIGHEST_PROTOCOL

#: Per-data-dir replication state: the fencing epoch, the last known role,
#: and (when fenced) the demotion reason.  Tiny, human-readable, written
#: atomically — the authoritative copy of the epoch that checkpoint
#: manifests mirror.
_REPLICATION_STATE = "replication.json"


def load_replication_state(data_dir: str) -> Dict[str, Any]:
    """The persisted ``{"epoch", "role", "fenced"}`` of a data directory.

    Missing or unreadable files mean a pre-replication directory: epoch 0,
    no role, not fenced.  Callers (the serving layer) read this *before*
    opening the engine to decide whether a tenant opens standby or primary.
    """
    path = os.path.join(data_dir, _REPLICATION_STATE)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (FileNotFoundError, NotADirectoryError):
        raw = {}
    except (OSError, ValueError):
        # A torn write of the tmp+rename pair cannot happen; garbage here
        # means external damage — fall back to defaults rather than refuse
        # to open (the manifest epoch still floors the epoch below).
        raw = {}
    return {
        "epoch": int(raw.get("epoch", 0) or 0),
        "role": raw.get("role"),
        "fenced": raw.get("fenced"),
    }


def store_replication_state(
    data_dir: str, epoch: int, role: Optional[str], fenced: Optional[str]
) -> None:
    """Persist the replication state atomically (tmp + fsync + rename)."""
    os.makedirs(data_dir, exist_ok=True)
    path = os.path.join(data_dir, _REPLICATION_STATE)
    tmp = path + ".tmp"
    payload = {"format": 1, "epoch": epoch, "role": role, "fenced": fenced}
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class RecoveryReport:
    """What one replay-on-open found, did, and gave up on."""

    __slots__ = (
        "data_dir",
        "duration_seconds",
        "checkpoint",
        "checkpoints_discarded",
        "segments_scanned",
        "records_replayed",
        "torn",
        "quarantined",
        "read_only",
        "reason",
        "state_version",
    )

    def __init__(self, data_dir: str) -> None:
        self.data_dir = data_dir
        self.duration_seconds = 0.0
        #: ``{"seq", "path", "state_version"}`` of the restored checkpoint,
        #: or ``None`` when recovery started from an empty database.
        self.checkpoint: Optional[Dict[str, Any]] = None
        self.checkpoints_discarded: List[Dict[str, str]] = []
        self.segments_scanned = 0
        self.records_replayed = 0
        #: Torn tails truncated: ``{"path", "dropped_bytes"}`` each.
        self.torn: List[Dict[str, Any]] = []
        #: Corrupt files moved aside: ``{"path", "reason"}`` each.
        self.quarantined: List[Dict[str, str]] = []
        self.read_only = False
        self.reason: Optional[str] = None
        self.state_version = 0

    def to_dict(self) -> Dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        status = f"read-only ({self.reason})" if self.read_only else "writable"
        return (
            f"RecoveryReport(version={self.state_version}, "
            f"replayed={self.records_replayed}, {status})"
        )


class DurabilityManager:
    """Owns one engine's WAL, checkpoints, and recovery state."""

    def __init__(
        self,
        data_dir: str,
        *,
        fsync: Optional[str] = None,
        faults: Optional[FaultInjector] = None,
        standby: bool = False,
    ) -> None:
        self.data_dir = data_dir
        self.wal_dir = os.path.join(data_dir, "wal")
        self.checkpoint_dir = os.path.join(data_dir, "checkpoints")
        self.quarantine_dir = os.path.join(data_dir, "quarantine")
        self.policy = resolve_fsync_policy(fsync)
        self._faults = faults
        self._wal: Optional[WriteAheadLog] = None
        #: True while recovery replays through the engine API — the engine's
        #: logging hooks check it so replayed operations are not re-logged.
        self.replaying = False
        #: Standby managers recover but never open the WAL for appends: the
        #: replication layer mirrors the primary's segments byte-for-byte
        #: instead, and ``logging`` staying False keeps replicated applies
        #: from being re-logged locally.  ``open_wal`` (promotion) ends it.
        self.standby = standby
        #: The replication fencing epoch of this directory (monotone); 0
        #: until a failover ever touched the tenant.
        self.epoch = 0
        #: Last persisted role (``"primary"``/``"replica"``/``None``) and,
        #: when fenced by a higher epoch, the demotion reason.
        self.role: Optional[str] = None
        self.fenced: Optional[str] = None
        self.report: Optional[RecoveryReport] = None
        self._checkpoint_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def open_and_recover(self, engine) -> RecoveryReport:
        """Restore ``engine`` from ``data_dir`` and open the WAL for appends."""
        start = time.monotonic()
        os.makedirs(self.wal_dir, exist_ok=True)
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        report = RecoveryReport(self.data_dir)
        # A crash mid-checkpoint leaves only a .tmp directory: never valid,
        # never referenced, safe to sweep.
        for name in os.listdir(self.checkpoint_dir):
            if name.startswith(".tmp-"):
                shutil.rmtree(os.path.join(self.checkpoint_dir, name), ignore_errors=True)
        state = load_replication_state(self.data_dir)
        self.epoch = state["epoch"]
        self.role = state["role"]
        self.fenced = state["fenced"]
        loaded, discarded = load_newest_checkpoint(self.checkpoint_dir)
        for entry in discarded:
            moved = self._quarantine(entry["path"])
            report.checkpoints_discarded.append(
                {"path": moved, "reason": entry["reason"]}
            )
        wal_start = 1
        damaged: Optional[str] = None
        self.replaying = True
        try:
            if loaded is not None:
                self._restore_checkpoint(engine, loaded)
                wal_start = loaded.manifest["wal_start_segment"]
                # The manifest mirrors the epoch file; a bootstrap-shipped
                # checkpoint is the only copy a cold replica has, and a lost
                # epoch file must never rewind the fence.
                self.epoch = max(self.epoch, loaded.manifest.get("epoch", 0))
                report.checkpoint = {
                    "seq": loaded.seq,
                    "path": loaded.path,
                    "state_version": loaded.manifest["state_version"],
                }
            segments = [
                (number, path)
                for number, path in list_segments(self.wal_dir)
                if number >= wal_start
            ]
            for index, (number, path) in enumerate(segments):
                is_last = index == len(segments) - 1
                scan = scan_segment(number, path, is_last)
                report.segments_scanned += 1
                if damaged is None:
                    try:
                        for payload in scan.payloads:
                            self._replay_payload(engine, payload)
                            report.records_replayed += 1
                    except Exception as error:  # noqa: BLE001 - any replay
                        # failure means the record stream lies about the
                        # state machine: treat the segment as corrupt.
                        scan.status = "corrupt"
                        scan.detail = f"replay failed: {type(error).__name__}: {error}"
                if scan.status == "torn":
                    dropped = os.path.getsize(path) - scan.valid_bytes
                    os.truncate(path, scan.valid_bytes)
                    report.torn.append({"path": path, "dropped_bytes": dropped})
                elif scan.status == "corrupt":
                    moved = self._quarantine(path)
                    report.quarantined.append({"path": moved, "reason": scan.detail})
                    if damaged is None:
                        damaged = (
                            f"WAL segment {segment_filename(number)} is corrupt "
                            f"({scan.detail}); acknowledged writes past it cannot "
                            f"be replayed"
                        )
        finally:
            self.replaying = False
        if damaged is not None:
            engine.database.set_read_only(damaged)
            report.read_only = True
            report.reason = damaged
        else:
            # Segments below wal_start are covered by the restored
            # checkpoint (a crash between rename and prune leaves them).
            for number, path in list_segments(self.wal_dir):
                if number < wal_start:
                    os.remove(path)
            if not self.standby:
                self._wal = WriteAheadLog(
                    self.wal_dir, fsync=self.policy, faults=self._faults
                )
        report.state_version = engine.state_version
        report.duration_seconds = time.monotonic() - start
        self.report = report
        return report

    def _restore_checkpoint(self, engine, loaded: LoadedCheckpoint) -> None:
        database = engine.database
        for entry in loaded.manifest["datasets"]:
            name = entry["name"]
            bag_type = engine._restore_dataset(name, entry["schema"])
            database.adopt_relation(
                name,
                bag_type,
                loaded.bags[f"nested:{name}"],
                loaded.bags[f"flat:{name}"],
                nested_shards=entry["nested_shards"],
                flat_shards=entry["flat_shards"],
            )
        for dict_name, entries in loaded.dictionaries.items():
            database.adopt_dictionary(dict_name, entries)
        database.adopt_shredder(pickle.loads(loaded.shredder_blob))
        for spec in loaded.manifest["views"]:
            database.pin_next_result_shards(spec["result_shards"])
            engine.view(
                spec["name"],
                spec["expr"],
                strategy=spec["strategy"],
                targets=spec["targets"],
                expected_update_size=spec["expected_update_size"],
            )
        database.restore_state_version(loaded.manifest["state_version"])

    def _replay_payload(self, engine, payload: bytes) -> None:
        kind, value = decode_record(payload)
        if kind == "update":
            engine.apply(value)
        elif kind == "dataset":
            name, schema, rows = value
            engine.dataset(name, schema, rows=rows)
        elif kind == "view":
            name, strategy, expr, targets, expected_update_size = value
            engine.view(
                name,
                expr,
                strategy=strategy,
                targets=targets,
                expected_update_size=expected_update_size,
            )
        elif kind == "vacuum":
            engine.vacuum()
        else:  # pragma: no cover - decode_record owns the type dispatch
            raise ValueError(f"unreplayable record kind {kind!r}")

    def _quarantine(self, path: str) -> str:
        os.makedirs(self.quarantine_dir, exist_ok=True)
        base = os.path.basename(path.rstrip(os.sep))
        target = os.path.join(self.quarantine_dir, base)
        suffix = 1
        while os.path.exists(target):
            target = os.path.join(self.quarantine_dir, f"{base}.{suffix}")
            suffix += 1
        os.rename(path, target)
        return target

    # ------------------------------------------------------------------ #
    # Replication (epoch fencing, standby promotion, shipped-record apply)
    # ------------------------------------------------------------------ #
    _KEEP = object()

    def set_epoch(
        self,
        epoch: int,
        *,
        role: Any = _KEEP,
        fenced: Any = _KEEP,
    ) -> None:
        """Adopt a (never lower) fencing epoch and persist it atomically.

        ``role``/``fenced`` update only when passed; the epoch itself is
        clamped monotone — fencing must never rewind, whatever a lagging
        caller believes.  A call that changes nothing (a replica re-adopting
        the epoch it already holds, once per poll) skips the disk write.
        """
        epoch = max(self.epoch, int(epoch))
        role_changed = role is not DurabilityManager._KEEP and role != self.role
        fenced_changed = (
            fenced is not DurabilityManager._KEEP and fenced != self.fenced
        )
        if epoch == self.epoch and not role_changed and not fenced_changed:
            return
        self.epoch = epoch
        if role is not DurabilityManager._KEEP:
            self.role = role
        if fenced is not DurabilityManager._KEEP:
            self.fenced = fenced
        store_replication_state(self.data_dir, self.epoch, self.role, self.fenced)

    def open_wal(self) -> None:
        """Open the WAL for appends — the promotion half of standby mode.

        Appends start on a fresh segment after whatever the mirror holds,
        exactly as a normal recovery would.  Idempotent; refused on a
        closed manager.
        """
        if self._closed:
            raise EngineError("cannot open the WAL of a closed engine")
        if self._wal is not None and not self._wal.closed:
            return
        self.standby = False
        self._wal = WriteAheadLog(self.wal_dir, fsync=self.policy, faults=self._faults)

    def replay_one(self, engine, payload: bytes) -> None:
        """Apply one shipped WAL record through the normal replay path.

        The ``replaying`` flag suspends the engine's logging hooks for the
        duration, so a replicated operation is never re-logged locally —
        the replication layer mirrors the primary's raw frames instead,
        keeping the replica's WAL a byte-identical prefix of the primary's.
        """
        if self.logging:
            raise EngineError(
                "refusing a replicated apply: the WAL is open for appends "
                "(this engine is a writable primary, not a standby)"
            )
        self.replaying = True
        try:
            self._replay_payload(engine, payload)
        finally:
            self.replaying = False

    # ------------------------------------------------------------------ #
    # Logging (called by the engine, under its lifecycle lock)
    # ------------------------------------------------------------------ #
    @property
    def logging(self) -> bool:
        """True while operations should be appended to the WAL."""
        return (
            self._wal is not None and not self._wal.closed and not self.replaying
        )

    def log_update(self, update: Update) -> None:
        if self.logging:
            self._wal.append(encode_update_record(update))

    def prepare_dataset(self, name: str, schema: Any, rows: Optional[Bag]) -> Optional[bytes]:
        """Encode a dataset record up front (so encoding failures surface
        before the registration mutates anything); ``None`` when not logging."""
        if not self.logging:
            return None
        return encode_dataset_record(name, schema, rows)

    def prepare_view(
        self,
        name: str,
        strategy: str,
        expr: Any,
        targets,
        expected_update_size: int,
    ) -> Optional[bytes]:
        """Encode a view record up front — an unpicklable query fails loudly
        here, before the view is built; ``None`` when not logging."""
        if not self.logging:
            return None
        return encode_view_record(name, strategy, expr, targets, expected_update_size)

    def commit(self, record: Optional[bytes]) -> None:
        """Append a prepared record once the operation actually applied."""
        if record is not None and self.logging:
            self._wal.append(record)

    def log_vacuum(self) -> None:
        if self.logging:
            self._wal.append(encode_vacuum_record())

    def sync(self) -> None:
        """Make every logged record durable (the ack barrier under ``batch``)."""
        if self.logging:
            self._wal.sync()

    # ------------------------------------------------------------------ #
    # Checkpoints
    # ------------------------------------------------------------------ #
    def capture(self, engine) -> CheckpointCapture:
        """Pin a checkpoint capture — cheap, must run on the applying thread.

        Rotates the WAL so the capture covers exactly the segments before
        the returned ``wal_start_segment``; the expensive encoding happens
        in :meth:`write_capture`, from any thread.  Refused when the WAL is
        not open for appends (engine closed, mid-replay, or degraded to
        read-only after recovery): without a live rotation point the
        capture would claim coverage from segment 1, and pruning against
        that claim deletes — or double-replays — surviving WAL segments
        whose records the captured state already contains.
        """
        if not self.logging:
            raise EngineError(
                "cannot checkpoint: the WAL is not open for appends "
                "(the engine is closed, replaying, or was degraded to "
                "read-only by recovery)"
            )
        state = engine.database.export_durable_state()
        views = []
        for handle in engine.views():
            store_of = getattr(handle.view, "result_store", None)
            store = store_of() if callable(store_of) else None
            views.append(
                {
                    "name": handle.name,
                    "strategy": handle.strategy,
                    "expr": handle.expr,
                    "targets": handle.targets,
                    "expected_update_size": handle.expected_update_size,
                    "result_shards": None if store is None else store.shards,
                }
            )
        datasets = []
        for name, relation in state["relations"].items():
            datasets.append(
                {
                    "name": name,
                    "schema": engine._dataset_schemas[name],
                    "nested_bag": relation["nested_bag"],
                    "flat_bag": relation["flat_bag"],
                    "nested_shards": relation["nested_shards"],
                    "flat_shards": relation["flat_shards"],
                }
            )
        shredder_blob = pickle.dumps(state["shredder"], protocol=_PROTO)
        wal_start = self._wal.rotate()
        return CheckpointCapture(
            state_version=state["state_version"],
            wal_start_segment=wal_start,
            datasets=datasets,
            dictionaries=state["dictionaries"],
            shredder_blob=shredder_blob,
            views=views,
            epoch=self.epoch,
        )

    def write_capture(self, capture: CheckpointCapture) -> Dict[str, Any]:
        """Encode a capture to disk atomically, then prune what it covers.

        The lock serializes concurrent writers but not the order their
        captures were pinned in, so a capture older than the newest on-disk
        checkpoint is refused: were it written (with a higher seq), the
        next recovery would restore the older state whose WAL tail the
        newer checkpoint's prune already deleted.
        """
        with self._checkpoint_lock:
            existing = list_checkpoints(self.checkpoint_dir)
            if existing:
                try:
                    newest = read_manifest(existing[-1][1])
                except Exception:  # noqa: BLE001 - an unreadable newest
                    # checkpoint cannot order anything; writing a fresh
                    # valid one past it is strictly an improvement.
                    newest = None
                if newest is not None and (
                    capture.wal_start_segment < newest["wal_start_segment"]
                    or capture.state_version < newest["state_version"]
                ):
                    raise EngineError(
                        f"stale checkpoint capture (state_version "
                        f"{capture.state_version}, wal start segment "
                        f"{capture.wal_start_segment}) is older than the "
                        f"newest on-disk checkpoint (state_version "
                        f"{newest['state_version']}, wal start segment "
                        f"{newest['wal_start_segment']}); a concurrent "
                        f"checkpoint already covers this state"
                    )
            path, seq = write_checkpoint(self.checkpoint_dir, capture, self._faults)
            # Everything before the capture's rotation point — and every
            # older checkpoint — is now redundant.
            for number, segment_path in list_segments(self.wal_dir):
                if number < capture.wal_start_segment:
                    os.remove(segment_path)
            for old_seq, old_path in list_checkpoints(self.checkpoint_dir):
                if old_seq < seq:
                    shutil.rmtree(old_path, ignore_errors=True)
            return {
                "seq": seq,
                "path": path,
                "state_version": capture.state_version,
                "wal_start_segment": capture.wal_start_segment,
            }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush and close the WAL.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._wal is not None and not self._wal.closed:
            self._wal.close()

    def discard(self) -> None:
        """Simulated power loss: drop unwritten buffers, abandon the WAL."""
        self._closed = True
        if self._wal is not None:
            self._wal.simulate_crash()

    def describe(self) -> Dict[str, Any]:
        return {
            "data_dir": self.data_dir,
            "policy": self.policy,
            "standby": self.standby,
            "epoch": self.epoch,
            "fenced": self.fenced,
            "wal": (
                self._wal.describe()
                if self._wal is not None and not self._wal.closed
                else None
            ),
            "recovery": None if self.report is None else self.report.to_dict(),
        }
