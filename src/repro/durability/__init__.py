"""Durability: write-ahead logging, snapshot checkpoints, replay-on-open.

The subsystem behind ``Engine(data_dir=...)`` (ROADMAP open item 3).  Three
cooperating pieces:

* :mod:`repro.durability.wal` — an append-only, segmented write-ahead log of
  length-prefixed, CRC32-checksummed records (the PR 7 pair codec with a
  pickle fallback), with an ``always``/``batch``/``off`` fsync policy
  (``REPRO_FSYNC``) and size-triggered segment rotation
  (``REPRO_WAL_SEGMENT_BYTES``);
* :mod:`repro.durability.checkpoint` — per-shard snapshot checkpoints cut
  from the storage layer's frozen copy-on-write snapshots (capture never
  blocks writers), with a manifest recording the engine ``state_version``,
  schema/view specs, and the WAL segment the checkpoint covers up to;
* :mod:`repro.durability.manager` — the recovery orchestrator: on open it
  loads the newest valid checkpoint (adopting shard contents through
  ``RelationStore.adopt_shard``), replays the WAL tail, truncates torn
  tails, quarantines corrupt segments, and degrades to read-only with a
  :class:`~repro.durability.manager.RecoveryReport` when unrecoverable.

:mod:`repro.durability.faults` injects crashes at write/fsync/rotate/
checkpoint points; ``python -m repro.durability.faultcheck`` runs the
differential battery proving a crash-restarted engine equals the
uninterrupted one across all four strategies.  See ``docs/durability.md``.
"""

from repro.durability.faults import CRASH_POINTS, FaultInjector, InjectedCrash
from repro.durability.manager import DurabilityManager, RecoveryReport
from repro.durability.wal import (
    FSYNC_POLICIES,
    REPRO_FSYNC,
    REPRO_WAL_SEGMENT_BYTES,
    WriteAheadLog,
    resolve_fsync_policy,
)

__all__ = [
    "CRASH_POINTS",
    "FSYNC_POLICIES",
    "REPRO_FSYNC",
    "REPRO_WAL_SEGMENT_BYTES",
    "DurabilityManager",
    "FaultInjector",
    "InjectedCrash",
    "RecoveryReport",
    "WriteAheadLog",
    "resolve_fsync_policy",
]
