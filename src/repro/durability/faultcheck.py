"""``python -m repro.durability.faultcheck``: the crash-recovery battery.

For every maintenance strategy (naive / classic / recursive / nested) and
every :data:`~repro.durability.faults.CRASH_POINTS` entry, this module

1. runs the movie workload (dataset, one pinned-strategy view, a batched
   update stream with deletions, a final vacuum) on a plain in-memory
   engine — the **uninterrupted baseline**;
2. runs it again against a durable engine with a
   :class:`~repro.durability.faults.FaultInjector` armed at the point,
   simulates the power loss, reopens the engine from the same data
   directory, and re-applies exactly the ops the recovery did not restore;
3. requires the two engines to be indistinguishable: identical
   ``state_version``, identical dataset and view contents, identical
   normalized storage reports (volatile counters stripped — see
   :func:`~repro.durability.faults.normalized_storage_report`).

It also asserts the RPO contract of the sync points: a crash *after* the
k-th fsync must preserve exactly k acknowledged operations
(``wal.post_fsync`` at offset k recovers version ``k + 1``; ``pre_fsync``
recovers ``k``), and that offset 0 actually fires every point — a battery
that never crashes proves nothing.

Exit status 0 when every cell converges, 1 with a per-cell report
otherwise.  CI runs this as its crash-recovery leg with
``REPRO_FSYNC=batch``; the fsync policy is also selectable with
``--fsync``.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from typing import List, Optional, Sequence, Tuple

from repro.durability.faults import (
    CRASH_POINTS,
    crash_and_recover,
    engine_state,
    state_differences,
)
from repro.durability.wal import resolve_fsync_policy
from repro.engine import Engine
from repro.workloads.movies import (
    MOVIE_SCHEMA,
    generate_movies,
    genre_selfjoin_query,
    movie_update_stream,
    related_query,
)

__all__ = ["main", "run_battery"]

STRATEGIES = ("naive", "classic", "recursive", "nested")

#: Offsets that exercise first-occurrence and mid-workload crashes.  The
#: one-shot points (rotation and the checkpoint seams) only occur once per
#: run, so later offsets legitimately never fire — the cell then checks
#: the no-crash path still converges.
DEFAULT_AFTERS = (0, 2)


def build_ops(strategy: str, movies: int, updates: int) -> List[Tuple]:
    """The workload of one battery cell, as replayable op tuples."""
    rows = generate_movies(movies)
    query = related_query() if strategy == "nested" else genre_selfjoin_query()
    ops: List[Tuple] = [
        ("dataset", "M", MOVIE_SCHEMA, rows),
        ("view", f"{strategy}_view", query, strategy),
    ]
    stream = movie_update_stream(
        updates, batch_size=3, existing=rows, deletion_ratio=0.25
    )
    ops.extend(("update", update) for update in stream)
    ops.append(("vacuum",))
    return ops


def _baseline(ops: Sequence[Tuple]) -> dict:
    from repro.durability.faults import apply_op

    engine = Engine()
    try:
        for op in ops:
            apply_op(engine, op)
        return engine_state(engine)
    finally:
        engine.close()


def _check_rpo(crash_at: str, after: int, crashed: bool, survived: int) -> List[str]:
    """The sync-point durability contract, stated as assertions."""
    problems = []
    if after == 0 and not crashed:
        problems.append(f"{crash_at}: injector armed at offset 0 never fired")
    if not crashed:
        return problems
    if crash_at == "wal.post_fsync" and survived != after + 1:
        problems.append(
            f"post_fsync@{after}: {after + 1} synced op(s) must survive, got {survived}"
        )
    if crash_at == "wal.pre_fsync" and survived != after:
        problems.append(
            f"pre_fsync@{after}: only {after} synced op(s) may survive, got {survived}"
        )
    if crash_at == "wal.mid_record" and survived > after:
        problems.append(
            f"mid_record@{after}: a torn record cannot be recovered, got {survived}"
        )
    return problems


def run_battery(
    strategies: Sequence[str] = STRATEGIES,
    crash_points: Sequence[str] = CRASH_POINTS,
    afters: Sequence[int] = DEFAULT_AFTERS,
    *,
    movies: int = 18,
    updates: int = 4,
    fsync: Optional[str] = None,
    verbose: bool = False,
) -> List[str]:
    """Run the full differential battery; returns the list of failures."""
    policy = resolve_fsync_policy(fsync)
    failures: List[str] = []
    for strategy in strategies:
        ops = build_ops(strategy, movies, updates)
        expected = _baseline(ops)
        for crash_at in crash_points:
            for after in afters:
                with tempfile.TemporaryDirectory(prefix="repro-faultcheck-") as tmp:
                    recovered, crashed, survived = crash_and_recover(
                        ops,
                        os.path.join(tmp, "db"),
                        crash_at=crash_at,
                        after=after,
                        fsync=policy,
                        sync_each=True,
                    )
                    try:
                        problems = state_differences(expected, engine_state(recovered))
                    finally:
                        recovered.close()
                problems += _check_rpo(crash_at, after, crashed, survived)
                cell = f"{strategy} × {crash_at}@{after}"
                status = "crashed" if crashed else "no-crash"
                if problems:
                    failures.extend(f"{cell}: {problem}" for problem in problems)
                    print(f"FAIL  {cell} [{status}, survived={survived}]")
                    for problem in problems:
                        print(f"      - {problem}")
                elif verbose:
                    print(f"ok    {cell} [{status}, survived={survived}]")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.durability.faultcheck",
        description="Differential crash-recovery battery (see docs/durability.md)",
    )
    parser.add_argument(
        "--strategy",
        action="append",
        choices=STRATEGIES,
        default=None,
        help="restrict to one strategy (repeatable; default: all four)",
    )
    parser.add_argument(
        "--crash-at",
        action="append",
        choices=CRASH_POINTS,
        default=None,
        help="restrict to one crash point (repeatable; default: all)",
    )
    parser.add_argument(
        "--after",
        type=int,
        action="append",
        default=None,
        help="crash-point offsets to arm (repeatable; default: 0 and 2)",
    )
    parser.add_argument("--movies", type=int, default=18)
    parser.add_argument("--updates", type=int, default=4)
    parser.add_argument(
        "--fsync",
        choices=("always", "batch", "off"),
        default=None,
        help="WAL fsync policy (default: $REPRO_FSYNC or 'batch')",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    strategies = tuple(args.strategy or STRATEGIES)
    points = tuple(args.crash_at or CRASH_POINTS)
    afters = tuple(args.after if args.after is not None else DEFAULT_AFTERS)
    started = time.perf_counter()
    failures = run_battery(
        strategies,
        points,
        afters,
        movies=args.movies,
        updates=args.updates,
        fsync=args.fsync,
        verbose=args.verbose,
    )
    cells = len(strategies) * len(points) * len(afters)
    elapsed = time.perf_counter() - started
    policy = resolve_fsync_policy(args.fsync)
    if failures:
        print(
            f"faultcheck: {len(failures)} failure(s) across {cells} cells "
            f"(fsync={policy}, {elapsed:.1f}s)"
        )
        return 1
    print(
        f"faultcheck: {cells} cells converged bit-for-bit "
        f"(strategies={','.join(strategies)}, fsync={policy}, {elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
