"""WAL record payloads: every logged operation as self-describing bytes.

The log records *operations*, not state: ``U`` an applied
:class:`~repro.ivm.updates.Update`, ``D`` a dataset registration, ``V`` a
view creation (with its strategy pinned, so replay never re-plans), and
``X`` a vacuum pass.  Replaying the records through the normal engine API
reproduces the state machine exactly — label assignment included, because
the shredder's label counter is part of every checkpoint and the records
preserve insertion order.

Bags travel in the PR 7 pair codec (:mod:`repro.bag.codec`) whenever the
codec accepts them — compact, allocation-light, and it *rejects* the values
pickle would silently corrupt across processes — with a pickle fallback for
codec-unsendable values (NaN floats, exotic element types).  Registration
and view records carry schemas and NRC+ expressions, which are plain frozen
dataclasses and pickle exactly; a view whose expression cannot be pickled
(e.g. a hand-built backend closure) fails loudly at creation time rather
than corrupting the log.

Framing (length prefix + CRC32) is the WAL's job, not the payload's — see
:mod:`repro.durability.wal`.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.bag.bag import Bag
from repro.bag.codec import (
    UnsendableValueError,
    decode_bag,
    decode_value,
    encode_bag,
    encode_value,
)
from repro.errors import EngineError
from repro.ivm.updates import Update

__all__ = [
    "decode_record",
    "encode_dataset_record",
    "encode_update_record",
    "encode_vacuum_record",
    "encode_view_record",
]

#: Payload type bytes (first byte of every record payload).
_RT_UPDATE = ord("U")
_RT_DATASET = ord("D")
_RT_VIEW = ord("V")
_RT_VACUUM = ord("X")

#: Blob encodings: the pair codec when it accepts the value, pickle otherwise.
_KIND_CODEC = 0x01
_KIND_PICKLE = 0x02

_PROTO = pickle.HIGHEST_PROTOCOL


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        out.append(byte | (0x80 if value else 0x00))
        if not value:
            return


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _write_blob(out: bytearray, kind: int, blob: bytes) -> None:
    out.append(kind)
    _write_uvarint(out, len(blob))
    out += blob


def _read_blob(data: bytes, pos: int) -> Tuple[int, bytes, int]:
    kind = data[pos]
    length, pos = _read_uvarint(data, pos + 1)
    return kind, data[pos : pos + length], pos + length


def _write_str(out: bytearray, text: str) -> None:
    blob = text.encode("utf-8")
    _write_uvarint(out, len(blob))
    out += blob


def _read_str(data: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _read_uvarint(data, pos)
    return data[pos : pos + length].decode("utf-8"), pos + length


def _write_bag(out: bytearray, bag: Bag) -> None:
    try:
        _write_blob(out, _KIND_CODEC, encode_bag(bag))
    except UnsendableValueError:
        _write_blob(out, _KIND_PICKLE, pickle.dumps(bag, protocol=_PROTO))


def _read_bag(data: bytes, pos: int) -> Tuple[Bag, int]:
    kind, blob, pos = _read_blob(data, pos)
    if kind == _KIND_CODEC:
        return decode_bag(blob), pos
    return pickle.loads(blob), pos


def _write_scalar(out: bytearray, value: Any) -> None:
    try:
        _write_blob(out, _KIND_CODEC, encode_value(value))
    except UnsendableValueError:
        _write_blob(out, _KIND_PICKLE, pickle.dumps(value, protocol=_PROTO))


def _read_scalar(data: bytes, pos: int) -> Tuple[Any, int]:
    kind, blob, pos = _read_blob(data, pos)
    if kind == _KIND_CODEC:
        return decode_value(blob), pos
    return pickle.loads(blob), pos


# ---------------------------------------------------------------------- #
# Encoders
# ---------------------------------------------------------------------- #

def encode_update_record(update: Update) -> bytes:
    """``U`` record: relation deltas plus deep (per-label) dictionary deltas."""
    out = bytearray([_RT_UPDATE])
    _write_uvarint(out, len(update.relations))
    for name, bag in update.relations.items():
        _write_str(out, name)
        _write_bag(out, bag)
    _write_uvarint(out, len(update.deep))
    for dict_name, entries in update.deep.items():
        _write_str(out, dict_name)
        _write_uvarint(out, len(entries))
        for label, bag in entries.items():
            _write_scalar(out, label)
            _write_bag(out, bag)
    return bytes(out)


def encode_dataset_record(name: str, schema: Any, rows: Optional[Bag]) -> bytes:
    """``D`` record: the registration call, initial rows in the bag codec."""
    out = bytearray([_RT_DATASET])
    _write_blob(out, _KIND_PICKLE, pickle.dumps((name, schema), protocol=_PROTO))
    if rows is None:
        out.append(0)
    else:
        out.append(1)
        _write_bag(out, rows)
    return bytes(out)


def encode_view_record(
    name: str,
    strategy: str,
    expr: Any,
    targets: Optional[Sequence[str]],
    expected_update_size: int,
) -> bytes:
    """``V`` record: view spec with the *resolved* strategy pinned.

    Pinning means replay recreates the view with the exact backend the
    original run chose, even if the cost model's auto pick would differ on
    the restored (larger) database.
    """
    spec = (
        name,
        strategy,
        expr,
        tuple(targets) if targets is not None else None,
        expected_update_size,
    )
    try:
        blob = pickle.dumps(spec, protocol=_PROTO)
    except Exception as error:
        raise EngineError(
            f"view {name!r} cannot be persisted: its query does not pickle "
            f"({error}); durable engines require picklable view expressions"
        ) from error
    out = bytearray([_RT_VIEW])
    _write_blob(out, _KIND_PICKLE, blob)
    return bytes(out)


def encode_vacuum_record() -> bytes:
    """``X`` record: a vacuum pass (mutates derived state deterministically)."""
    return bytes([_RT_VACUUM])


# ---------------------------------------------------------------------- #
# Decoder
# ---------------------------------------------------------------------- #

def decode_record(payload: bytes) -> Tuple[str, Any]:
    """Decode one record payload to ``(kind, value)``.

    ``("update", Update)``, ``("dataset", (name, schema, rows))``,
    ``("view", (name, strategy, expr, targets, expected_update_size))``, or
    ``("vacuum", None)``.  Raises ``ValueError`` on an unknown type byte —
    the manager treats that as segment corruption.
    """
    if not payload:
        raise ValueError("empty WAL record payload")
    record_type = payload[0]
    pos = 1
    if record_type == _RT_UPDATE:
        relations: Dict[str, Bag] = {}
        count, pos = _read_uvarint(payload, pos)
        for _ in range(count):
            name, pos = _read_str(payload, pos)
            relations[name], pos = _read_bag(payload, pos)
        deep: Dict[str, Dict[Any, Bag]] = {}
        count, pos = _read_uvarint(payload, pos)
        for _ in range(count):
            dict_name, pos = _read_str(payload, pos)
            entry_count, pos = _read_uvarint(payload, pos)
            entries: Dict[Any, Bag] = {}
            for _ in range(entry_count):
                label, pos = _read_scalar(payload, pos)
                entries[label], pos = _read_bag(payload, pos)
            deep[dict_name] = entries
        return "update", Update(relations=relations, deep=deep)
    if record_type == _RT_DATASET:
        kind, blob, pos = _read_blob(payload, pos)
        name, schema = pickle.loads(blob)
        rows: Optional[Bag] = None
        if payload[pos]:
            rows, _ = _read_bag(payload, pos + 1)
        return "dataset", (name, schema, rows)
    if record_type == _RT_VIEW:
        kind, blob, _ = _read_blob(payload, pos)
        return "view", pickle.loads(blob)
    if record_type == _RT_VACUUM:
        return "vacuum", None
    raise ValueError(f"unknown WAL record type byte 0x{record_type:02x}")
