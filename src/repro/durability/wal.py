"""The write-ahead log: segmented, checksummed, fsync-policied appends.

Layout: ``<wal_dir>/wal-00000001.log``, ``wal-00000002.log``, … — each
segment an 8-byte magic header (:data:`SEGMENT_MAGIC`) followed by record
frames ``u32 length (LE) | u32 crc32 (LE) | payload``.  Segments rotate at
:data:`DEFAULT_SEGMENT_BYTES` (``REPRO_WAL_SEGMENT_BYTES``) and at every
checkpoint capture, so a checkpoint covers exactly the segments before its
``wal_start_segment``.

**Fsync policy** (``REPRO_FSYNC`` / ``Engine(fsync=...)``):

* ``always`` — every append is written *and* fsynced before returning;
* ``batch`` — appends accumulate in an application-level buffer until
  :meth:`WriteAheadLog.sync` (the serving layer syncs once per
  acknowledged batch; checkpoints and ``close`` also sync);
* ``off`` — appends buffer and are written without ever fsyncing (the
  64 KiB threshold bounds the buffer); durability is best-effort.

The buffering is deliberately application-level over an *unbuffered* file
(``open(..., "ab", buffering=0)``): the file's content at any instant is
exactly the bytes a power loss would preserve, which is what lets the
fault-injection harness simulate a crash faithfully in-process by simply
discarding the buffer (:meth:`WriteAheadLog.simulate_crash`) — no OS page
cache to lie about what was durable.

**Recovery scan** (:func:`scan_segment`): records are read until the first
frame that fails its length or CRC check.  A failure that extends to the
end of the *last* segment is a **torn tail** — the bytes a mid-write crash
left behind — and is truncated away; a failure anywhere else (mid-segment
garbage, a non-final segment that ends early, a bad magic header) is
**corruption**, and the manager quarantines the segment.  After recovery,
appends always start a fresh segment.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.durability.faults import FaultInjector, InjectedCrash, fire

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "FSYNC_POLICIES",
    "REPRO_FSYNC",
    "REPRO_WAL_SEGMENT_BYTES",
    "SEGMENT_MAGIC",
    "SegmentScan",
    "WriteAheadLog",
    "list_segments",
    "resolve_fsync_policy",
    "resolve_segment_bytes",
    "scan_segment",
    "segment_filename",
]

#: First 8 bytes of every segment file.
SEGMENT_MAGIC = b"RWAL0001"

#: ``u32 length | u32 crc32``, little-endian.
_FRAME = struct.Struct("<II")

REPRO_FSYNC = "REPRO_FSYNC"
REPRO_WAL_SEGMENT_BYTES = "REPRO_WAL_SEGMENT_BYTES"

FSYNC_POLICIES = ("always", "batch", "off")

DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: The ``off`` policy still drains its buffer past this size.
_OFF_FLUSH_BYTES = 64 * 1024


def resolve_fsync_policy(policy: Optional[str] = None) -> str:
    """Explicit argument, else ``REPRO_FSYNC``, else ``batch``."""
    if policy is None:
        policy = os.environ.get(REPRO_FSYNC) or "batch"
    if policy not in FSYNC_POLICIES:
        raise ValueError(
            f"fsync policy must be one of {FSYNC_POLICIES}, got {policy!r}"
        )
    return policy


def resolve_segment_bytes(segment_bytes: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WAL_SEGMENT_BYTES``, else 4 MiB."""
    if segment_bytes is None:
        raw = os.environ.get(REPRO_WAL_SEGMENT_BYTES)
        segment_bytes = int(raw) if raw else DEFAULT_SEGMENT_BYTES
    if segment_bytes < 1:
        raise ValueError(f"segment size must be positive, got {segment_bytes}")
    return segment_bytes


def segment_filename(number: int) -> str:
    return f"wal-{number:08d}.log"


def segment_number(filename: str) -> Optional[int]:
    if not (filename.startswith("wal-") and filename.endswith(".log")):
        return None
    digits = filename[4:-4]
    return int(digits) if digits.isdigit() else None


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(number, path)`` of every segment file, ascending."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        number = segment_number(name)
        if number is not None:
            found.append((number, os.path.join(directory, name)))
    return sorted(found)


def _fsync_directory(directory: str) -> None:
    """Make a file creation/rename durable (best effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class SegmentScan:
    """The result of scanning one segment file."""

    __slots__ = ("number", "path", "payloads", "status", "valid_bytes", "detail")

    def __init__(
        self,
        number: int,
        path: str,
        payloads: List[bytes],
        status: str,
        valid_bytes: int,
        detail: str = "",
    ) -> None:
        self.number = number
        self.path = path
        self.payloads = payloads  # the valid prefix, in order
        self.status = status  # "ok" | "torn" | "corrupt"
        self.valid_bytes = valid_bytes  # where the valid prefix ends
        self.detail = detail


def scan_segment(number: int, path: str, is_last: bool) -> SegmentScan:
    """Read one segment's valid record prefix and classify what follows.

    Torn (truncatable) requires *both* that the damage extends to the end
    of the file and that this is the final segment — only there can a crash
    mid-append explain the bytes.  Everything else is corruption: replay
    keeps the valid prefix but must not continue past the gap.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    tail_kind = "torn" if is_last else "corrupt"
    if not data:
        # A crash between segment creation and the header write, or a torn
        # tail a previous recovery truncated away entirely: no records were
        # ever durable here, so there is nothing lost and nothing to replay.
        return SegmentScan(number, path, [], "ok", 0, "empty segment")
    if len(data) < len(SEGMENT_MAGIC):
        if SEGMENT_MAGIC.startswith(data):
            # A crash mid-header (rotation) leaves a magic prefix.
            return SegmentScan(number, path, [], tail_kind, 0, "partial segment header")
        return SegmentScan(number, path, [], "corrupt", 0, "bad segment header")
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        return SegmentScan(number, path, [], "corrupt", 0, "bad segment magic")
    payloads: List[bytes] = []
    pos = len(SEGMENT_MAGIC)
    size = len(data)
    while pos < size:
        frame_start = pos
        if size - pos < _FRAME.size:
            return SegmentScan(
                number, path, payloads, tail_kind, frame_start, "truncated frame header"
            )
        length, crc = _FRAME.unpack_from(data, pos)
        pos += _FRAME.size
        end = pos + length
        if end > size:
            # Either a mid-write crash (payload missing) or a corrupted
            # length prefix pointing past EOF — indistinguishable, and both
            # only self-explain at the tail of the final segment.
            return SegmentScan(
                number, path, payloads, tail_kind, frame_start, "truncated payload"
            )
        payload = data[pos:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            if is_last and end == size:
                return SegmentScan(
                    number, path, payloads, "torn", frame_start, "crc mismatch at tail"
                )
            return SegmentScan(
                number, path, payloads, "corrupt", frame_start, "crc mismatch"
            )
        payloads.append(payload)
        pos = end
    return SegmentScan(number, path, payloads, "ok", size)


class WriteAheadLog:
    """Appends framed records to the current segment under one fsync policy."""

    def __init__(
        self,
        directory: str,
        *,
        fsync: Optional[str] = None,
        segment_bytes: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
        start_segment: Optional[int] = None,
    ) -> None:
        self.directory = directory
        self.policy = resolve_fsync_policy(fsync)
        self.segment_bytes = resolve_segment_bytes(segment_bytes)
        self._faults = faults
        self._buffer = bytearray()
        self._file: Optional[io.FileIO] = None
        self._segment = 0
        self._segment_written = 0
        self._closed = False
        self.records_appended = 0
        self.records_synced = 0
        self.syncs = 0
        self.rotations = 0
        self.bytes_written = 0
        if start_segment is None:
            existing = list_segments(directory)
            start_segment = (existing[-1][0] + 1) if existing else 1
        self._open_segment(start_segment, rotation=False)

    # ------------------------------------------------------------------ #
    @property
    def segment(self) -> int:
        """The segment number appends currently go to."""
        return self._segment

    @property
    def closed(self) -> bool:
        return self._closed

    def _open_segment(self, number: int, rotation: bool) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, segment_filename(number))
        # Unbuffered: the file's bytes are exactly what a crash preserves.
        file = open(path, "ab", buffering=0)
        if rotation and fire(self._faults, "wal.mid_rotation"):
            file.write(SEGMENT_MAGIC[: len(SEGMENT_MAGIC) // 2])
            file.close()
            self._file = None
            raise InjectedCrash("wal.mid_rotation")
        file.write(SEGMENT_MAGIC)
        if self.policy != "off":
            os.fsync(file.fileno())
            _fsync_directory(self.directory)
        self._file = file
        self._segment = number
        self._segment_written = len(SEGMENT_MAGIC)

    # ------------------------------------------------------------------ #
    def append(self, payload: bytes) -> None:
        """Buffer one framed record; the policy decides when it hits disk."""
        self._check_open()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload
        if fire(self._faults, "wal.mid_record"):
            # The torn half of the physical write: earlier buffered-but-
            # unsynced records are lost (they were in the same doomed
            # buffer), and this frame reaches the file cut in half.
            self._buffer.clear()
            assert self._file is not None
            self._file.write(frame[: max(1, len(frame) // 2)])
            raise InjectedCrash("wal.mid_record")
        self._buffer += frame
        self.records_appended += 1
        if self.policy == "always":
            self._sync_buffer()
        elif self.policy == "off" and len(self._buffer) >= _OFF_FLUSH_BYTES:
            self._write_buffer()
        self._maybe_rotate()

    def sync(self) -> None:
        """Make every appended record durable (a no-op burden under ``off``)."""
        self._check_open()
        if self.policy == "off":
            self._write_buffer()
        else:
            self._sync_buffer()
        self._maybe_rotate()

    def rotate(self) -> int:
        """Seal the current segment and open the next; returns its number.

        The checkpoint writer calls this at capture time: everything before
        the returned segment is covered by the checkpoint.
        """
        self._check_open()
        if self.policy == "off":
            self._write_buffer()
        else:
            self._sync_buffer()
        assert self._file is not None
        self._file.close()
        self._file = None
        self.rotations += 1
        self._open_segment(self._segment + 1, rotation=True)
        return self._segment

    def close(self) -> None:
        """Flush (and fsync, policy permitting) then close the segment file."""
        if self._closed:
            return
        if self._file is not None:
            if self.policy == "off":
                self._write_buffer()
            else:
                self._sync_buffer()
            self._file.close()
            self._file = None
        self._closed = True

    def simulate_crash(self) -> None:
        """Drop the unwritten buffer and abandon the file — a power loss."""
        self._buffer.clear()
        if self._file is not None:
            self._file.close()
            self._file = None
        self._closed = True

    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("write-ahead log is closed")

    def _write_buffer(self) -> None:
        if not self._buffer:
            return
        assert self._file is not None
        self._file.write(bytes(self._buffer))
        written = len(self._buffer)
        self._segment_written += written
        self.bytes_written += written
        self._buffer.clear()
        self.records_synced = self.records_appended

    def _sync_buffer(self) -> None:
        if fire(self._faults, "wal.pre_fsync"):
            # The buffered records never reached the file: modelling the
            # worst case of a crash before (or during) the write+fsync.
            raise InjectedCrash("wal.pre_fsync")
        self._write_buffer()
        assert self._file is not None
        os.fsync(self._file.fileno())
        self.syncs += 1
        if fire(self._faults, "wal.post_fsync"):
            raise InjectedCrash("wal.post_fsync")

    def _maybe_rotate(self) -> None:
        if self._segment_written >= self.segment_bytes:
            self.rotate()

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "segment": self._segment,
            "segment_bytes": self.segment_bytes,
            "records_appended": self.records_appended,
            "records_synced": self.records_synced,
            "buffered_bytes": len(self._buffer),
            "bytes_written": self.bytes_written,
            "syncs": self.syncs,
            "rotations": self.rotations,
        }

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, policy={self.policy}, "
            f"segment={self._segment}, appended={self.records_appended})"
        )
