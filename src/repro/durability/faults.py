"""Fault injection: deterministic crashes at the durability layer's seams.

A :class:`FaultInjector` is armed with one crash point and a countdown; the
WAL and checkpoint writers consult it at every dangerous moment
(:data:`CRASH_POINTS`), and when the armed point's countdown reaches zero
they *perform the torn half of the operation* (e.g. write half a record
frame) and raise :class:`InjectedCrash`.  The harness then calls
``Engine.simulate_crash()`` — which discards the application-level write
buffers without flushing them, so the bytes on disk are exactly what a
power loss at that instant would have preserved — and reopens the engine
from the same ``data_dir``.

The differential helpers at the bottom are shared by the test suite and the
``python -m repro.durability.faultcheck`` battery: build a workload once,
run it uninterrupted on a plain in-memory engine, run it against a durable
engine with an armed injector, recover, re-apply the lost suffix, and
require the two engines to agree — view results bit-for-bit, storage
reports up to the documented volatile counters
(:func:`normalized_storage_report`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "CRASH_POINTS",
    "FaultInjector",
    "InjectedCrash",
    "apply_op",
    "crash_and_recover",
    "engine_state",
    "fire",
    "normalized_storage_report",
    "state_differences",
]

#: Every seam the WAL and checkpoint writers consult the injector at.
CRASH_POINTS = (
    "wal.mid_record",  # half a record frame written, then power loss
    "wal.pre_fsync",  # crash before the buffered records reach the file
    "wal.post_fsync",  # crash immediately after a successful fsync
    "wal.mid_rotation",  # new segment created with half its magic header
    "checkpoint.mid_write",  # crash after the first shard blob of a checkpoint
    "checkpoint.pre_rename",  # complete .tmp checkpoint, crash before the rename
    "checkpoint.post_rename",  # checkpoint renamed live, crash before pruning
)


class InjectedCrash(RuntimeError):
    """The simulated power loss: raised at the armed crash point."""

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point}")
        self.point = point


class FaultInjector:
    """Arms one crash point with a countdown; fires exactly once.

    ``after=N`` skips the first N occurrences of the point, so a workload
    can be crashed at its first WAL append, its fourth fsync, or its only
    segment rotation without changing the workload itself.
    """

    def __init__(self, crash_at: str, after: int = 0) -> None:
        if crash_at not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {crash_at!r}; choose one of {CRASH_POINTS}"
            )
        if after < 0:
            raise ValueError(f"after must be non-negative, got {after}")
        self.crash_at = crash_at
        self.remaining = after
        self.fired = False

    def check(self, point: str) -> bool:
        """True exactly once, when the armed point's countdown expires."""
        if self.fired or point != self.crash_at:
            return False
        if self.remaining > 0:
            self.remaining -= 1
            return False
        self.fired = True
        return True


def fire(injector: Optional[FaultInjector], point: str) -> bool:
    """Injector-optional form of :meth:`FaultInjector.check`."""
    return injector is not None and injector.check(point)


# ---------------------------------------------------------------------- #
# Differential comparison
# ---------------------------------------------------------------------- #

#: Counters that legitimately depend on *history* rather than state: how
#: many snapshots were frozen, how often an index was probed or rebuilt,
#: how many deltas a store saw.  A recovered engine reaches the same state
#: through a different history (checkpoint adoption + tail replay), so the
#: differential contract strips these before comparing — everything else
#: (cardinalities, distinct counts, shard counts, index sizes, poison
#: state, dictionary label counts, routing keys) must match exactly.
_VOLATILE_KEYS = frozenset(
    {
        "version",
        "store_version",
        "snapshot_freezes",
        "freezes",
        "hits",
        "rebuilds",
        "deltas_applied",
        "probes",
        "backend_id",
    }
)


def _strip_volatile(value: Any) -> Any:
    if isinstance(value, dict):
        return {
            key: _strip_volatile(entry)
            for key, entry in value.items()
            if key not in _VOLATILE_KEYS
        }
    if isinstance(value, (list, tuple)):
        return [_strip_volatile(entry) for entry in value]
    return value


def normalized_storage_report(report: Any) -> str:
    """A storage report as a canonical string, volatile counters stripped.

    The ``execution`` section is dropped wholesale (which backend applied
    which delta is pure scheduling), and :data:`_VOLATILE_KEYS` are removed
    recursively.  Two engines in the same state — whatever their histories —
    normalize identically.
    """
    data = {key: value for key, value in dict(report).items() if key != "execution"}
    return json.dumps(_strip_volatile(data), sort_keys=True, default=repr)


def engine_state(engine) -> Dict[str, Any]:
    """The comparable state of an engine: results, datasets, report, version."""
    return {
        "version": engine.state_version,
        "datasets": {name: engine.relation(name) for name in engine.dataset_names()},
        "views": {handle.name: handle.result() for handle in engine.views()},
        "report": normalized_storage_report(engine.storage_report()),
    }


def state_differences(expected: Dict[str, Any], actual: Dict[str, Any]) -> List[str]:
    """Human-readable differences between two :func:`engine_state` captures."""
    problems: List[str] = []
    if expected["version"] != actual["version"]:
        problems.append(
            f"state_version: expected {expected['version']}, got {actual['version']}"
        )
    for section in ("datasets", "views"):
        left, right = expected[section], actual[section]
        if sorted(left) != sorted(right):
            problems.append(
                f"{section}: expected names {sorted(left)}, got {sorted(right)}"
            )
            continue
        for name, bag in left.items():
            if bag != right[name]:
                problems.append(f"{section}[{name!r}]: contents differ")
    if expected["report"] != actual["report"]:
        problems.append("normalized storage reports differ")
    return problems


# ---------------------------------------------------------------------- #
# Workload driving
# ---------------------------------------------------------------------- #

def apply_op(engine, op: Tuple) -> None:
    """Apply one workload op: ``("dataset", name, schema, rows)``,
    ``("view", name, query, strategy)``, ``("update", update)``, or
    ``("vacuum",)``."""
    kind = op[0]
    if kind == "dataset":
        engine.dataset(op[1], op[2], rows=op[3])
    elif kind == "view":
        engine.view(op[1], op[2], strategy=op[3])
    elif kind == "update":
        engine.apply(op[1])
    elif kind == "vacuum":
        engine.vacuum()
    else:  # pragma: no cover - workload construction bug
        raise ValueError(f"unknown workload op {kind!r}")


def _version_cost(op: Tuple) -> int:
    """How much one op advances ``state_version`` (vacuum advances nothing)."""
    return 0 if op[0] == "vacuum" else 1


def crash_and_recover(
    ops: List[Tuple],
    data_dir: str,
    *,
    crash_at: str,
    after: int = 0,
    fsync: str = "batch",
    sync_each: bool = False,
):
    """Run ``ops`` against a durable engine, crash, recover, replay the rest.

    Returns ``(recovered_engine, crashed, survived_version)``: the reopened
    engine with the lost suffix of ``ops`` re-applied (so it should equal
    the uninterrupted run), whether the injector actually fired, and the
    ``state_version`` the recovery alone restored.  ``sync_each`` calls
    ``sync_wal()`` after every op — the serving layer's sync-before-ack
    discipline, and the way ``batch``-policy runs reach the fsync points.

    Crash points under ``checkpoint.*`` fire during an explicit
    ``engine.checkpoint()`` issued after the whole workload applied.
    The caller owns closing the returned engine.
    """
    from repro.engine import Engine

    injector = FaultInjector(crash_at, after=after)
    engine = Engine(data_dir=data_dir, fsync=fsync, fault_injector=injector)
    crashed = False
    try:
        for op in ops:
            apply_op(engine, op)
            if sync_each:
                engine.sync_wal()
        if crash_at.startswith("checkpoint.") or crash_at == "wal.mid_rotation":
            # Checkpoint capture rotates the WAL, giving rotation-point
            # injectors a deterministic segment boundary to fire at (size-
            # triggered rotations also fire them, when the workload is big
            # enough to rotate on its own).
            engine.checkpoint()
        engine.close()
    except InjectedCrash:
        crashed = True
        engine.simulate_crash()
    recovered = Engine(data_dir=data_dir, fsync=fsync)
    survived = recovered.state_version
    cumulative = 0
    for op in ops:
        cost = _version_cost(op)
        # Re-apply every op the recovery did not restore.  Vacuum ops are
        # always re-run: they advance no version (so survival is not
        # observable) and are idempotent on state.
        if cost == 0 or cumulative + cost > survived:
            apply_op(recovered, op)
        cumulative += cost
    return recovered, crashed, survived
