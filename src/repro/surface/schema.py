"""Named-record schemas for the comprehension DSL.

The calculus works with positional tuples; collection APIs (Spark, LINQ —
the motivation of Section 1) work with named fields.  A :class:`Record`
declares an ordered list of field names and their types and handles the
translation between the two views: field name → tuple position → projection
path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

from repro.errors import TypeCheckError
from repro.nrc.types import BASE, BagType, ProductType, Type

__all__ = ["Record", "STRING", "NUMBER", "field_types"]

#: Convenience aliases: all base values share the calculus' single Base type,
#: the distinct names exist purely for schema readability.
STRING = BASE
NUMBER = BASE


@dataclass(frozen=True)
class Record:
    """An ordered record schema: field names mapped to types."""

    name: str
    fields: Tuple[Tuple[str, Type], ...]

    def __post_init__(self) -> None:
        names = [field_name for field_name, _ in self.fields]
        if len(set(names)) != len(names):
            raise TypeCheckError(f"duplicate field names in record {self.name!r}")
        if not names:
            raise TypeCheckError(f"record {self.name!r} needs at least one field")

    # ------------------------------------------------------------------ #
    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(field_name for field_name, _ in self.fields)

    def position(self, field_name: str) -> int:
        """Tuple position of a field."""
        for index, (name, _) in enumerate(self.fields):
            if name == field_name:
                return index
        raise TypeCheckError(f"record {self.name!r} has no field {field_name!r}")

    def field_type(self, field_name: str) -> Type:
        return self.fields[self.position(field_name)][1]

    def product_type(self) -> Union[ProductType, Type]:
        """The positional tuple type of this record (a single field stays bare)."""
        if len(self.fields) == 1:
            return self.fields[0][1]
        return ProductType(tuple(field_type for _, field_type in self.fields))

    def bag_type(self) -> BagType:
        """The bag-of-records type used for datasets of this record."""
        return BagType(self.product_type())

    def as_dict(self, row: Tuple) -> Dict[str, object]:
        """Render a positional tuple as a field-name dictionary (for display)."""
        if len(self.fields) == 1:
            return {self.fields[0][0]: row}
        return dict(zip(self.field_names, row))

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {type_.render()}" for name, type_ in self.fields)
        return f"Record {self.name}({inner})"


def field_types(**fields: Type) -> Tuple[Tuple[str, Type], ...]:
    """Build the ``fields`` tuple of a :class:`Record` from keyword arguments."""
    return tuple(fields.items())
