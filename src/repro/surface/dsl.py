"""A Spark/LINQ-flavoured comprehension DSL that compiles to NRC+.

Section 1 motivates incremental maintenance for collection frameworks whose
programs are for-comprehensions over (possibly nested) datasets.  This module
provides that front-end: datasets, row variables with named-field access,
``where`` filters, ``select`` projections and ``nest(...)`` for building
nested collections — all compiling down to the calculus of Figure 3 so the
delta/shredding machinery applies unchanged.

The running example of the paper reads almost like its Spark original::

    movies = Dataset("M", MOVIE)
    m, m2 = movies.row("m"), movies.row("m2")
    rel_b = (movies.iterate(m2)
                   .where((m.field("name") != m2.field("name"))
                          & ((m.field("gen") == m2.field("gen"))
                             | (m.field("dir") == m2.field("dir"))))
                   .select(m2.field("name")))
    related = movies.iterate(m).select(m.field("name"), nest(rel_b))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.errors import TypeCheckError
from repro.nrc import ast
from repro.nrc import predicates as preds
from repro.nrc.ast import Expr
from repro.nrc.builders import for_in, tuple_bag
from repro.nrc.types import BagType, ProductType, Type
from repro.surface.schema import Record

__all__ = ["Dataset", "RowVar", "FieldRef", "Condition", "nest", "lit", "Query"]


# --------------------------------------------------------------------------- #
# Field references and conditions
# --------------------------------------------------------------------------- #
class FieldRef:
    """A reference to a (base-typed) field of a row variable.

    Comparison operators produce :class:`Condition` objects that later become
    the calculus' predicate sub-language.
    """

    def __init__(self, var: str, path: Tuple[int, ...], type_: Type, label: str) -> None:
        self.var = var
        self.path = path
        self.type = type_
        self.label = label

    def _operand(self) -> preds.VarPath:
        return preds.VarPath(self.var, self.path)

    # Comparisons --------------------------------------------------------
    def __eq__(self, other: Any) -> "Condition":  # type: ignore[override]
        return Condition(preds.eq(self._operand(), _to_operand(other)))

    def __ne__(self, other: Any) -> "Condition":  # type: ignore[override]
        return Condition(preds.ne(self._operand(), _to_operand(other)))

    def __lt__(self, other: Any) -> "Condition":
        return Condition(preds.lt(self._operand(), _to_operand(other)))

    def __le__(self, other: Any) -> "Condition":
        return Condition(preds.le(self._operand(), _to_operand(other)))

    def __gt__(self, other: Any) -> "Condition":
        return Condition(preds.gt(self._operand(), _to_operand(other)))

    def __ge__(self, other: Any) -> "Condition":
        return Condition(preds.ge(self._operand(), _to_operand(other)))

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"{self.var}.{self.label}"


def _to_operand(value: Any) -> preds.Operand:
    if isinstance(value, FieldRef):
        return value._operand()
    return preds.Const(value)


@dataclass(frozen=True)
class Condition:
    """A boolean condition over base-typed fields (wraps a calculus predicate)."""

    predicate: preds.Predicate

    def __and__(self, other: "Condition") -> "Condition":
        return Condition(preds.And((self.predicate, other.predicate)))

    def __or__(self, other: "Condition") -> "Condition":
        return Condition(preds.Or((self.predicate, other.predicate)))

    def __invert__(self) -> "Condition":
        return Condition(preds.Not(self.predicate))


class RowVar:
    """A row variable bound by ``iterate``; gives named access to fields."""

    def __init__(self, name: str, record: Record) -> None:
        self.name = name
        self.record = record

    def field(self, field_name: str) -> FieldRef:
        position = self.record.position(field_name)
        path = () if len(self.record.fields) == 1 else (position,)
        return FieldRef(self.name, path, self.record.field_type(field_name), field_name)

    def __getitem__(self, field_name: str) -> FieldRef:
        return self.field(field_name)

    def whole(self) -> "RowRef":
        """Select the entire row (used by identity-style selects)."""
        return RowRef(self)

    def __repr__(self) -> str:
        return f"RowVar({self.name}: {self.record.name})"


@dataclass(frozen=True)
class RowRef:
    """Marks 'the whole row' as a select item."""

    row: RowVar


@dataclass(frozen=True)
class NestedItem:
    """Marks a sub-query whose result becomes an inner collection."""

    query: "Query"


@dataclass(frozen=True)
class LiteralItem:
    """A constant base value used as a select item."""

    value: Any


def nest(query: "Query") -> NestedItem:
    """Use a sub-query's result as a nested collection inside ``select``."""
    return NestedItem(query)


def lit(value: Any) -> LiteralItem:
    """A constant select item (must be a base value)."""
    return LiteralItem(value)


# --------------------------------------------------------------------------- #
# Datasets and queries
# --------------------------------------------------------------------------- #
class Dataset:
    """A named top-level collection of records (a database relation)."""

    def __init__(self, name: str, record: Record) -> None:
        self.name = name
        self.record = record

    def row(self, var_name: str) -> RowVar:
        """Declare a row variable ranging over this dataset."""
        return RowVar(var_name, self.record)

    def iterate(self, row: RowVar) -> "Query":
        """Start a comprehension ``for row in dataset``."""
        return Query(source=self, row=row)

    def to_expr(self) -> ast.Relation:
        return ast.Relation(self.name, self.record.bag_type())

    def __repr__(self) -> str:
        return f"Dataset({self.name}: {self.record.name})"


SelectItem = Union[FieldRef, RowRef, NestedItem, LiteralItem, RowVar]


class Query:
    """A comprehension under construction: source, filters and projection."""

    def __init__(
        self,
        source: Union[Dataset, "Query"],
        row: RowVar,
        conditions: Optional[List[Condition]] = None,
        items: Optional[List[SelectItem]] = None,
    ) -> None:
        self._source = source
        self._row = row
        self._conditions: List[Condition] = list(conditions or [])
        self._items: List[SelectItem] = list(items or [])

    # Builder steps -------------------------------------------------------
    def where(self, condition: Condition) -> "Query":
        """Add a filter condition (chainable; conditions are conjoined)."""
        return Query(self._source, self._row, self._conditions + [condition], self._items)

    def select(self, *items: SelectItem) -> "Query":
        """Choose the output: field refs, whole rows, constants or nested queries."""
        if not items:
            raise TypeCheckError("select needs at least one item")
        return Query(self._source, self._row, self._conditions, list(items))

    def iterate(self, row: RowVar) -> "Query":
        """Nest another comprehension over this query's output."""
        return Query(source=self, row=row)

    # Compilation ----------------------------------------------------------
    def output_record(self) -> Record:
        """Schema of the rows this query produces."""
        if not self._items:
            return self._row.record
        fields = []
        for index, item in enumerate(self._items):
            fields.append((self._item_name(item, index), self._item_type(item)))
        return Record(f"{self._row.record.name}_out", tuple(fields))

    def to_expr(self) -> Expr:
        """Compile to an NRC+ expression."""
        source_expr = self._source.to_expr()
        body = self._select_body()
        condition = None
        if self._conditions:
            predicate: preds.Predicate = self._conditions[0].predicate
            for extra in self._conditions[1:]:
                predicate = preds.And((predicate, extra.predicate))
            condition = predicate
        return for_in(self._row.name, source_expr, body, condition=condition)

    def bag_type(self) -> BagType:
        return self.output_record().bag_type()

    # Internal helpers -----------------------------------------------------
    def _select_body(self) -> Expr:
        if not self._items:
            return ast.SngVar(self._row.name)
        factors = [self._item_expr(item) for item in self._items]
        return tuple_bag(*factors)

    def _item_expr(self, item: SelectItem) -> Expr:
        if isinstance(item, FieldRef):
            if not item.path:
                return ast.SngVar(item.var)
            return ast.SngProj(item.var, item.path)
        if isinstance(item, RowVar):
            return ast.SngVar(item.name)
        if isinstance(item, RowRef):
            return ast.SngVar(item.row.name)
        if isinstance(item, NestedItem):
            return ast.Sng(item.query.to_expr())
        if isinstance(item, LiteralItem):
            raise TypeCheckError(
                "constant select items are not expressible in the positive calculus; "
                "add the constant to the data instead"
            )
        raise TypeCheckError(f"unsupported select item {item!r}")

    def _item_type(self, item: SelectItem) -> Type:
        if isinstance(item, FieldRef):
            return item.type
        if isinstance(item, RowVar):
            return item.record.product_type()
        if isinstance(item, RowRef):
            return item.row.record.product_type()
        if isinstance(item, NestedItem):
            return item.query.bag_type()
        raise TypeCheckError(f"unsupported select item {item!r}")

    @staticmethod
    def _item_name(item: SelectItem, index: int) -> str:
        if isinstance(item, FieldRef):
            return item.label
        if isinstance(item, RowVar):
            return item.name
        if isinstance(item, RowRef):
            return item.row.name
        if isinstance(item, NestedItem):
            return f"nested_{index}"
        return f"item_{index}"

    def __repr__(self) -> str:
        return f"Query(for {self._row.name} in {self._source!r})"
