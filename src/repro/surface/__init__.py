"""Comprehension DSL (Spark/LINQ-style) compiling to NRC+ expressions."""

from repro.surface.dsl import Condition, Dataset, FieldRef, Query, RowVar, lit, nest
from repro.surface.schema import NUMBER, Record, STRING, field_types

__all__ = [
    "Condition",
    "Dataset",
    "FieldRef",
    "Query",
    "RowVar",
    "lit",
    "nest",
    "NUMBER",
    "Record",
    "STRING",
    "field_types",
]
