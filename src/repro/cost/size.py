"""The ``size`` function: from nested values to cost-domain values.

``size_A : A → A°`` (Section 4.2) maps every value to a cost proportional to
its size: base values cost 1, tuples cost component-wise, and a bag costs its
cardinality (counting repetitions) paired with the supremum of its elements'
costs.  An update ``ΔR`` is *incremental* for ``R`` exactly when
``size(ΔR) ≺ size(R)``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.bag.bag import Bag
from repro.bag.values import is_base_value
from repro.cost.domains import ATOM_COST, BagCost, Cost, TupleCost, bottom_cost, strictly_less, sup
from repro.errors import CostModelError
from repro.nrc.types import BagType, Type
from repro.labels import Label

__all__ = ["size_of", "is_incremental_update"]


def size_of(value: Any, type_: Optional[Type] = None) -> Cost:
    """Return ``size(value)`` in the cost domain of its type.

    The optional ``type_`` is only used to produce the correct bottom element
    for empty bags (an empty bag of nested type still records the shape of
    its would-be elements); without it, empty bags cost ``0{1}``.
    """
    if is_base_value(value) or isinstance(value, Label):
        return ATOM_COST
    if isinstance(value, tuple):
        if not value:
            return ATOM_COST
        return TupleCost(tuple(size_of(component) for component in value))
    if isinstance(value, Bag):
        element_bound: Cost
        if value.is_empty():
            if isinstance(type_, BagType):
                element_bound = bottom_cost(type_.element)
            else:
                element_bound = ATOM_COST
            return BagCost(0, element_bound)
        element_bound = None  # type: ignore[assignment]
        for element in value.elements():
            element_cost = size_of(element)
            element_bound = element_cost if element_bound is None else sup(element_bound, element_cost)
        return BagCost(value.cardinality(), element_bound)
    raise CostModelError(f"cannot compute the size of {value!r}")


def is_incremental_update(update: Bag, base: Bag) -> bool:
    """True iff ``size(update) ≺ size(base)`` (the paper's incrementality test)."""
    return strictly_less(size_of(update), size_of(base))
