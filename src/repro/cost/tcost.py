"""Time bounds from cost values: ``tcost`` (Lemma 3) and Theorem 4's check.

``tcost_A : A° → N`` converts a cost-domain value into a scalar time bound::

    tcost(1)        = 1
    tcost(⟨c1,c2⟩)  = tcost(c1) + tcost(c2)
    tcost(n{c})     = n · tcost(c)

Lemma 3: an IncNRC+ expression ``h`` can be evaluated within
``O(tcost(C[[h]]))`` under the lazy evaluation strategy.  Theorem 4: for an
incremental update, ``tcost(C[[δ(h)]]) < tcost(C[[h]])`` — the delta is
strictly cheaper than re-evaluation.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cost.domains import AtomCost, BagCost, Cost, TupleCost
from repro.cost.transform import CostContext, cost_of
from repro.delta.rules import delta
from repro.errors import CostModelError
from repro.nrc.ast import Expr

__all__ = ["tcost", "delta_is_cheaper"]


def tcost(cost: Cost) -> int:
    """Scalar time bound of a cost-domain value."""
    if isinstance(cost, AtomCost):
        return 1
    if isinstance(cost, TupleCost):
        return sum(tcost(component) for component in cost.components)
    if isinstance(cost, BagCost):
        return cost.cardinality * tcost(cost.element)
    raise CostModelError(f"cannot compute tcost of {cost!r}")


def delta_is_cheaper(
    expr: Expr,
    context: CostContext,
    targets: Optional[Iterable[str]] = None,
) -> bool:
    """Check Theorem 4 on a concrete query and cost context.

    Returns ``True`` when ``tcost(C[[δ(expr)]]) < tcost(C[[expr]])`` — i.e.
    the derived delta has a strictly lower running-time estimate than
    re-evaluating the query.
    """
    original_cost = tcost(cost_of(expr, context))
    delta_expr = delta(expr, targets)
    delta_cost = tcost(cost_of(delta_expr, context))
    return delta_cost < original_cost
