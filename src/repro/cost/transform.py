"""The cost interpretation ``C[[·]]`` of IncNRC+ expressions (Figure 5).

Given cost estimates for the inputs (relations, updates, dictionaries and
free variables), ``C[[e]]`` computes an upper bound ``n{c}`` on the output of
``e``: ``n`` bounds the cardinality of the result bag and ``c`` bounds the
cost of its elements.  Together with :func:`repro.cost.tcost.tcost` this
yields the running-time bound of Lemma 3 and the efficiency guarantee of
Theorem 4 (``tcost(C[[δ(h)]]) < tcost(C[[h]])`` for incremental updates).

Constant-output constructs (``p(x)``, ``sng(⟨⟩)``, ``∅``, ``inL``) are costed
as single-element bags of bottom-cost elements, which matches the paper's
``1_{Bag(1)}`` constants while remaining a safe upper bound for ``∅``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.bag.bag import Bag
from repro.cost.domains import (
    ATOM_COST,
    BagCost,
    Cost,
    TupleCost,
    bottom_cost,
    sup,
)
from repro.cost.size import size_of
from repro.errors import CostModelError
from repro.nrc import ast
from repro.nrc.ast import Expr
from repro.nrc.types import BagType, Type

__all__ = ["CostContext", "cost_of", "dictionary_cost_of"]


class CostContext:
    """Cost assignments for the free inputs of an expression.

    * ``relations`` / ``dictionaries`` — cost of database sources,
    * ``deltas`` — cost of update symbols, keyed by ``(name, order)``,
    * ``bag_vars`` — the ``γ°`` assignment for ``let``-bound variables,
    * ``elem_vars`` — the ``ε°`` assignment for ``for``-bound variables.

    :meth:`from_instances` builds a context by measuring actual bag values
    with :func:`repro.cost.size.size_of`, which is how the cost-model
    experiments compare predictions with measured work.
    """

    def __init__(
        self,
        relations: Optional[Mapping[str, BagCost]] = None,
        deltas: Optional[Mapping[Tuple[str, int], BagCost]] = None,
        dictionaries: Optional[Mapping[str, BagCost]] = None,
        bag_vars: Optional[Mapping[str, Cost]] = None,
        elem_vars: Optional[Mapping[str, Cost]] = None,
    ) -> None:
        self.relations: Dict[str, BagCost] = dict(relations or {})
        self.deltas: Dict[Tuple[str, int], BagCost] = dict(deltas or {})
        self.dictionaries: Dict[str, BagCost] = dict(dictionaries or {})
        self.bag_vars: Dict[str, Cost] = dict(bag_vars or {})
        self.elem_vars: Dict[str, Cost] = dict(elem_vars or {})

    @classmethod
    def from_instances(
        cls,
        relations: Optional[Mapping[str, Bag]] = None,
        deltas: Optional[Mapping[Tuple[str, int], Bag]] = None,
        dictionary_entry_bounds: Optional[Mapping[str, BagCost]] = None,
    ) -> "CostContext":
        """Build a context by measuring concrete relation and update instances."""
        relation_costs = {
            name: _as_bag_cost(size_of(bag), name) for name, bag in (relations or {}).items()
        }
        delta_costs = {
            key: _as_bag_cost(size_of(bag), str(key)) for key, bag in (deltas or {}).items()
        }
        return cls(relation_costs, delta_costs, dictionary_entry_bounds)

    def copy(self) -> "CostContext":
        return CostContext(
            self.relations, self.deltas, self.dictionaries, self.bag_vars, self.elem_vars
        )


def _as_bag_cost(cost: Cost, context: str) -> BagCost:
    if not isinstance(cost, BagCost):
        raise CostModelError(f"{context}: expected a bag cost, got {cost.render()}")
    return cost


def cost_of(expr: Expr, context: Optional[CostContext] = None) -> BagCost:
    """Compute ``C[[expr]]`` under the given cost context."""
    return _CostTransformer(context or CostContext()).cost(expr)


def dictionary_cost_of(expr: Expr, context: Optional[CostContext] = None) -> BagCost:
    """Bound on a single entry of a dictionary-typed expression.

    Dictionary expressions (``h^Γ`` components and their deltas) are costed by
    the bag bound of one entry — the quantity Figure 5 assigns to dictionary
    sources.  Used by the strategy planner to estimate shredded maintenance.
    """
    return _CostTransformer(context or CostContext())._dictionary_cost(expr)


class _CostTransformer:
    """Recursive implementation of Figure 5 plus the label-construct rules."""

    def __init__(self, context: CostContext) -> None:
        self._ctx = context

    # ------------------------------------------------------------------ #
    def cost(self, expr: Expr) -> BagCost:
        method = getattr(self, f"_cost_{type(expr).__name__}", None)
        if method is None:
            raise CostModelError(f"no cost rule for node {type(expr).__name__}")
        result = method(expr)
        return _as_bag_cost(result, type(expr).__name__)

    @staticmethod
    def _unit_bag_cost(element_type: Optional[Type] = None) -> BagCost:
        element = bottom_cost(element_type) if element_type is not None else ATOM_COST
        return BagCost(1, element)

    # Sources -------------------------------------------------------------
    def _cost_Relation(self, expr: ast.Relation) -> BagCost:
        if expr.name in self._ctx.relations:
            return self._ctx.relations[expr.name]
        raise CostModelError(f"no cost estimate for relation {expr.name!r}")

    def _cost_DeltaRelation(self, expr: ast.DeltaRelation) -> BagCost:
        key = (expr.name, expr.order)
        if key in self._ctx.deltas:
            return self._ctx.deltas[key]
        raise CostModelError(f"no cost estimate for update Δ^{expr.order}{expr.name}")

    def _cost_BagVar(self, expr: ast.BagVar) -> Cost:
        if expr.name in self._ctx.bag_vars:
            return self._ctx.bag_vars[expr.name]
        raise CostModelError(f"no cost estimate for bag variable {expr.name!r}")

    # Constants and singletons ---------------------------------------------
    def _cost_Empty(self, expr: ast.Empty) -> BagCost:
        return self._unit_bag_cost(expr.element_type)

    def _cost_Pred(self, expr: ast.Pred) -> BagCost:
        return self._unit_bag_cost()

    def _cost_SngUnit(self, expr: ast.SngUnit) -> BagCost:
        return self._unit_bag_cost()

    def _cost_SngVar(self, expr: ast.SngVar) -> BagCost:
        return BagCost(1, self._elem_cost(expr.var))

    def _cost_SngProj(self, expr: ast.SngProj) -> BagCost:
        return BagCost(1, _project_cost(self._elem_cost(expr.var), expr.path))

    def _cost_Sng(self, expr: ast.Sng) -> BagCost:
        return BagCost(1, self.cost(expr.body))

    def _elem_cost(self, var: str) -> Cost:
        if var in self._ctx.elem_vars:
            return self._ctx.elem_vars[var]
        raise CostModelError(f"no cost estimate for element variable {var!r}")

    # Structural constructs -------------------------------------------------
    def _cost_Let(self, expr: ast.Let) -> BagCost:
        bound_cost = self.cost(expr.bound)
        saved = self._ctx.bag_vars.get(expr.name)
        had = expr.name in self._ctx.bag_vars
        self._ctx.bag_vars[expr.name] = bound_cost
        try:
            return self.cost(expr.body)
        finally:
            if had:
                self._ctx.bag_vars[expr.name] = saved  # type: ignore[assignment]
            else:
                self._ctx.bag_vars.pop(expr.name, None)

    def _cost_For(self, expr: ast.For) -> BagCost:
        source_cost = self.cost(expr.source)
        saved = self._ctx.elem_vars.get(expr.var)
        had = expr.var in self._ctx.elem_vars
        self._ctx.elem_vars[expr.var] = source_cost.element
        try:
            body_cost = self.cost(expr.body)
        finally:
            if had:
                self._ctx.elem_vars[expr.var] = saved  # type: ignore[assignment]
            else:
                self._ctx.elem_vars.pop(expr.var, None)
        return BagCost(source_cost.cardinality * body_cost.cardinality, body_cost.element)

    def _cost_Flatten(self, expr: ast.Flatten) -> BagCost:
        body_cost = self.cost(expr.body)
        inner = body_cost.element
        if isinstance(inner, BagCost):
            return BagCost(body_cost.cardinality * inner.cardinality, inner.element)
        # Polymorphic/unknown element costs (e.g. empty inputs): stay safe.
        return BagCost(body_cost.cardinality, ATOM_COST)

    def _cost_Product(self, expr: ast.Product) -> BagCost:
        factor_costs = [self.cost(factor) for factor in expr.factors]
        cardinality = 1
        for factor_cost in factor_costs:
            cardinality *= factor_cost.cardinality
        return BagCost(cardinality, TupleCost(tuple(fc.element for fc in factor_costs)))

    def _cost_Union(self, expr: ast.Union) -> BagCost:
        result: Cost = self.cost(expr.terms[0])
        for term in expr.terms[1:]:
            result = sup(result, self.cost(term))
        return _as_bag_cost(result, "⊎")

    def _cost_Negate(self, expr: ast.Negate) -> BagCost:
        return self.cost(expr.body)

    # Label / dictionary constructs -----------------------------------------
    def _cost_InLabel(self, expr: ast.InLabel) -> BagCost:
        return BagCost(1, ATOM_COST)

    def _cost_DictLookup(self, expr: ast.DictLookup) -> BagCost:
        return self._dictionary_cost(expr.dictionary)

    def _dictionary_cost(self, expr: Expr) -> BagCost:
        if isinstance(expr, ast.DictSingleton):
            saved: Dict[str, Optional[Cost]] = {}
            param_types = expr.param_types or tuple(None for _ in expr.params)
            for param, param_type in zip(expr.params, param_types):
                saved[param] = self._ctx.elem_vars.get(param)
                self._ctx.elem_vars[param] = (
                    bottom_cost(param_type) if param_type is not None else ATOM_COST
                )
            try:
                return self.cost(expr.body)
            finally:
                for param, previous in saved.items():
                    if previous is None:
                        self._ctx.elem_vars.pop(param, None)
                    else:
                        self._ctx.elem_vars[param] = previous
        if isinstance(expr, ast.DictEmpty):
            return self._unit_bag_cost(expr.value_type)
        if isinstance(expr, (ast.DictUnion, ast.DictAdd)):
            result: Cost = self._dictionary_cost(expr.terms[0])
            for term in expr.terms[1:]:
                result = sup(result, self._dictionary_cost(term))
            return _as_bag_cost(result, "dictionary combination")
        if isinstance(expr, ast.DictVar):
            if expr.name in self._ctx.dictionaries:
                return self._ctx.dictionaries[expr.name]
            raise CostModelError(f"no cost estimate for dictionary {expr.name!r}")
        if isinstance(expr, ast.DeltaDictVar):
            key = (expr.name, expr.order)
            if key in self._ctx.deltas:
                return self._ctx.deltas[key]
            raise CostModelError(f"no cost estimate for dictionary update Δ{expr.name}")
        if isinstance(expr, ast.BagVar):
            cost = self._cost_BagVar(expr)
            return _as_bag_cost(cost, expr.name)
        raise CostModelError(f"no dictionary cost rule for node {type(expr).__name__}")


def _project_cost(cost: Cost, path) -> Cost:
    current = cost
    for index in path:
        if isinstance(current, TupleCost) and index < len(current.components):
            current = current.components[index]
        else:
            return ATOM_COST
    return current
