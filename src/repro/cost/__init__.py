"""Cost domains, the ``size`` function, the cost interpretation and ``tcost``."""

from repro.cost.domains import (
    ATOM_COST,
    AtomCost,
    BagCost,
    Cost,
    TupleCost,
    bottom_cost,
    less_equal,
    strictly_less,
    sup,
)
from repro.cost.size import is_incremental_update, size_of
from repro.cost.tcost import delta_is_cheaper, tcost
from repro.cost.transform import CostContext, cost_of, dictionary_cost_of

__all__ = [
    "ATOM_COST",
    "AtomCost",
    "BagCost",
    "Cost",
    "TupleCost",
    "bottom_cost",
    "less_equal",
    "strictly_less",
    "sup",
    "is_incremental_update",
    "size_of",
    "delta_is_cheaper",
    "tcost",
    "CostContext",
    "cost_of",
    "dictionary_cost_of",
]
