"""Cost domains ``A°`` with their partial orders (Section 4.2).

Every NRC+ type ``A`` gets a cost domain::

    Base° = 1°     (A1 × A2)° = A1° × A2°     Bag(A)° = N+{A°}

``1°`` has the single constant cost 1, tuple costs track each component
separately, and a bag cost pairs a cardinality estimate with the least upper
bound of its elements' costs — so the cost value preserves how data is
distributed across nesting levels (the introduction's ``3{2}`` example for
``{{a},{b},{c,d}}``).

The strict order ``≺`` and the non-strict order ``⪯`` follow the paper's
type-indexed definitions; ``sup`` is the least upper bound used by ``⊎`` in
the cost interpretation.  Labels cost the same as base values (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import CostModelError
from repro.nrc.types import (
    BagType,
    BaseType,
    DictType,
    LabelType,
    ProductType,
    Type,
    UnitType,
)

__all__ = [
    "Cost",
    "AtomCost",
    "TupleCost",
    "BagCost",
    "ATOM_COST",
    "bottom_cost",
    "sup",
    "strictly_less",
    "less_equal",
]


class Cost:
    """Abstract base class of cost-domain values."""

    def render(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class AtomCost(Cost):
    """The cost ``1`` of a base value, unit value or label (``Base° = 1°``)."""

    def render(self) -> str:
        return "1"


@dataclass(frozen=True)
class TupleCost(Cost):
    """Component-wise cost of a tuple value (``(A1 × A2)° = A1° × A2°``)."""

    components: Tuple[Cost, ...]

    def render(self) -> str:
        return "⟨" + ", ".join(component.render() for component in self.components) + "⟩"


@dataclass(frozen=True)
class BagCost(Cost):
    """Cost ``n{c}`` of a bag: cardinality ``n`` and element-cost bound ``c``."""

    cardinality: int
    element: Cost

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise CostModelError("bag cardinality estimates must be non-negative")

    def render(self) -> str:
        if self.cardinality == 1:
            return "{" + self.element.render() + "}"
        return f"{self.cardinality}{{{self.element.render()}}}"


#: Shared instance of the base-value cost.
ATOM_COST = AtomCost()


def bottom_cost(type_: Type) -> Cost:
    """The bottom element ``1_A`` of the cost domain of ``type_``."""
    if isinstance(type_, (BaseType, UnitType, LabelType)):
        return ATOM_COST
    if isinstance(type_, ProductType):
        return TupleCost(tuple(bottom_cost(component) for component in type_.components))
    if isinstance(type_, BagType):
        return BagCost(0, bottom_cost(type_.element))
    if isinstance(type_, DictType):
        # Dictionaries are costed through their entry bags; the bottom is the
        # bottom of the entry type.
        return bottom_cost(type_.value)
    # Unknown/polymorphic types (from polymorphic empties) cost like atoms.
    return ATOM_COST


def sup(left: Cost, right: Cost) -> Cost:
    """Least upper bound of two cost values of the same shape."""
    if isinstance(left, AtomCost) and isinstance(right, AtomCost):
        return ATOM_COST
    if isinstance(left, AtomCost):
        return right
    if isinstance(right, AtomCost):
        return left
    if isinstance(left, TupleCost) and isinstance(right, TupleCost):
        if len(left.components) != len(right.components):
            raise CostModelError("cannot take sup of tuple costs with different arities")
        return TupleCost(
            tuple(sup(l, r) for l, r in zip(left.components, right.components))
        )
    if isinstance(left, BagCost) and isinstance(right, BagCost):
        return BagCost(max(left.cardinality, right.cardinality), sup(left.element, right.element))
    raise CostModelError(f"cannot take sup of {left.render()} and {right.render()}")


def less_equal(left: Cost, right: Cost) -> bool:
    """The non-strict order ``left ⪯ right``."""
    if isinstance(left, AtomCost) and isinstance(right, AtomCost):
        return True
    if isinstance(left, AtomCost) or isinstance(right, AtomCost):
        # Mixing shapes can happen with polymorphic empties; an atom is the
        # cheapest possible shape.
        return isinstance(left, AtomCost)
    if isinstance(left, TupleCost) and isinstance(right, TupleCost):
        if len(left.components) != len(right.components):
            raise CostModelError("cannot compare tuple costs with different arities")
        return all(less_equal(l, r) for l, r in zip(left.components, right.components))
    if isinstance(left, BagCost) and isinstance(right, BagCost):
        return left.cardinality <= right.cardinality and less_equal(left.element, right.element)
    raise CostModelError(f"cannot compare {left.render()} and {right.render()}")


def strictly_less(left: Cost, right: Cost) -> bool:
    """The strict order ``left ≺ right`` of Section 4.2.

    Base values are never strictly comparable; tuples compare component-wise
    strictly; bags require a strictly smaller cardinality and ``⪯`` elements.
    """
    if isinstance(left, AtomCost) and isinstance(right, AtomCost):
        return False
    if isinstance(left, TupleCost) and isinstance(right, TupleCost):
        if len(left.components) != len(right.components):
            raise CostModelError("cannot compare tuple costs with different arities")
        return all(
            strictly_less(l, r) for l, r in zip(left.components, right.components)
        )
    if isinstance(left, BagCost) and isinstance(right, BagCost):
        return left.cardinality < right.cardinality and less_equal(left.element, right.element)
    if isinstance(left, AtomCost) or isinstance(right, AtomCost):
        return False
    raise CostModelError(f"cannot compare {left.render()} and {right.render()}")
