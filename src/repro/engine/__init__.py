"""The public facade: one engine, many maintenance strategies.

The paper's thesis is that a single calculus serves naive re-evaluation,
classical delta processing, recursive (higher-order) IVM and shredded/nested
IVM, with the cost model of Section 4 deciding which to use.  This package is
that thesis as an API: :class:`Engine` registers datasets and views,
``strategy="auto"`` routes through the cost-driven planner, and the backend
registry keeps the strategy set open for new engines.
"""

from repro.engine import backends as _backends  # noqa: F401 — installs built-ins
from repro.engine.core import Engine, EngineSnapshot, Session, ViewHandle
from repro.engine.plan import MaintenancePlan, StrategyEstimate
from repro.engine.planner import PlanningInputs, plan_view
from repro.engine.registry import (
    DEFAULT_REGISTRY,
    BackendRegistry,
    BackendSpec,
    backend_names,
    get_backend,
    register_backend,
)
from repro.engine.scheduler import (
    REPRO_PARALLEL_VIEWS,
    ViewRefreshScheduler,
    forced_parallel_views,
    resolve_view_workers,
)

__all__ = [
    "Engine",
    "EngineSnapshot",
    "Session",
    "ViewHandle",
    "MaintenancePlan",
    "StrategyEstimate",
    "PlanningInputs",
    "plan_view",
    "BackendRegistry",
    "BackendSpec",
    "DEFAULT_REGISTRY",
    "REPRO_PARALLEL_VIEWS",
    "ViewRefreshScheduler",
    "backend_names",
    "forced_parallel_views",
    "get_backend",
    "register_backend",
    "resolve_view_workers",
]
