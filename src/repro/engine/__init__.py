"""The public facade: one engine, many maintenance strategies.

The paper's thesis is that a single calculus serves naive re-evaluation,
classical delta processing, recursive (higher-order) IVM and shredded/nested
IVM, with the cost model of Section 4 deciding which to use.  This package is
that thesis as an API: :class:`Engine` registers datasets and views,
``strategy="auto"`` routes through the cost-driven planner, and the backend
registry keeps the strategy set open for new engines.
"""

from repro.engine import backends as _backends  # noqa: F401 — installs built-ins
from repro.engine.core import Engine, EngineSnapshot, Session, ViewHandle
from repro.engine.plan import MaintenancePlan, StrategyEstimate
from repro.engine.planner import PlanningInputs, plan_view
from repro.engine.registry import (
    DEFAULT_REGISTRY,
    BackendRegistry,
    BackendSpec,
    backend_names,
    get_backend,
    register_backend,
)
from repro.engine.scheduler import (
    EXECUTION_BACKENDS,
    REPRO_BACKEND,
    REPRO_PARALLEL_VIEWS,
    ExecutionBackend,
    ViewRefreshScheduler,
    backend_availability,
    create_execution_backend,
    forced_backend,
    forced_parallel_views,
    recommend_backend,
    resolve_backend_spec,
    resolve_view_workers,
)

__all__ = [
    "Engine",
    "EngineSnapshot",
    "Session",
    "ViewHandle",
    "MaintenancePlan",
    "StrategyEstimate",
    "PlanningInputs",
    "plan_view",
    "BackendRegistry",
    "BackendSpec",
    "DEFAULT_REGISTRY",
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "REPRO_BACKEND",
    "REPRO_PARALLEL_VIEWS",
    "ViewRefreshScheduler",
    "backend_availability",
    "backend_names",
    "create_execution_backend",
    "forced_backend",
    "forced_parallel_views",
    "get_backend",
    "recommend_backend",
    "register_backend",
    "resolve_backend_spec",
    "resolve_view_workers",
]
