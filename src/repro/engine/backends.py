"""The four built-in maintenance backends, registered at import time.

Each spec pairs a :mod:`repro.ivm` view class with the planner estimator
that scores it (Section 4's cost model).  Importing :mod:`repro.engine`
installs them into the default registry in planner-priority order:
naive first (the Theorem 4 baseline), then classic, recursive, nested.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.planner import (
    estimate_classic,
    estimate_naive,
    estimate_nested,
    estimate_recursive,
)
from repro.engine.registry import DEFAULT_REGISTRY, BackendSpec
from repro.ivm.classic import ClassicIVMView
from repro.ivm.database import Database
from repro.ivm.naive import NaiveView
from repro.ivm.nested import NestedIVMView
from repro.ivm.recursive import RecursiveIVMView
from repro.nrc.analysis import is_incremental_fragment
from repro.nrc.ast import Expr

__all__ = ["BUILTIN_BACKENDS"]


def _build_naive(
    query: Expr, database: Database, targets: Optional[Sequence[str]] = None
) -> NaiveView:
    return NaiveView(query, database)


def _build_classic(
    query: Expr, database: Database, targets: Optional[Sequence[str]] = None
) -> ClassicIVMView:
    return ClassicIVMView(query, database, targets=targets)


def _build_recursive(
    query: Expr, database: Database, targets: Optional[Sequence[str]] = None
) -> RecursiveIVMView:
    return RecursiveIVMView(query, database, targets=targets)


def _build_nested(
    query: Expr, database: Database, targets: Optional[Sequence[str]] = None
) -> NestedIVMView:
    return NestedIVMView(query, database)


BUILTIN_BACKENDS = (
    BackendSpec(
        name="naive",
        description="full re-evaluation per update (the Theorem 4 baseline)",
        build=_build_naive,
        estimator=estimate_naive,
    ),
    BackendSpec(
        name="classic",
        description="first-order delta processing for IncNRC+ (Proposition 4.1)",
        build=_build_classic,
        supports=is_incremental_fragment,
        estimator=estimate_classic,
        honors_targets=True,
    ),
    BackendSpec(
        name="recursive",
        description="higher-order deltas with materialized partial evaluations (Section 4.1)",
        build=_build_recursive,
        supports=is_incremental_fragment,
        estimator=estimate_recursive,
        honors_targets=True,
    ),
    BackendSpec(
        name="nested",
        description="shredded IVM for full NRC+: flat view plus dictionaries (Section 5)",
        build=_build_nested,
        estimator=estimate_nested,
    ),
)

for _spec in BUILTIN_BACKENDS:
    if _spec.name not in DEFAULT_REGISTRY:
        DEFAULT_REGISTRY.register(_spec)
