"""Concurrent multi-view refresh: the ThreadPoolExecutor-backed scheduler.

``Database.apply_update`` notifies every registered view *before* mutating
the stored instances, and each view's refresh reads only immutable
pre-update snapshots plus its own materialization — the delta environments
are snapshots, so running independent views concurrently is a *scheduling*
decision, not a semantics change.  This module supplies that schedule:

* :func:`resolve_view_workers` turns the ``REPRO_PARALLEL_VIEWS``
  environment variable (or an explicit engine/database override) into a
  worker count — ``0`` is the escape hatch reproducing the legacy serial
  per-view notification (each view builds its own environments), ``1`` runs
  the new shared-snapshot refresh inline, and ``N > 1`` dispatches view
  refreshes onto a thread pool;
* :class:`ViewRefreshScheduler` owns the pool, reuses it across updates,
  and re-raises the first failure in view-registration order so error
  behavior stays deterministic.

On a single-CPU host the ``auto`` default resolves to ``1``: the CPython
GIL serializes pure-Python refresh work, so a pool would add dispatch
latency without buying overlap — the shared-snapshot refresh and the
sharded stores' per-shard copy-on-write still apply.  Multi-core hosts get
``min(cpu_count, 4)`` workers.

Thread-safety contract for view backends (see ``docs/api.md``): a view's
``on_update`` may read the shared :class:`~repro.ivm.database.RefreshContext`
environments and the database's frozen snapshots, and may mutate only its
own state.  Stats counters on shared index structures (hits, interner
tallies) are best-effort under concurrency — increments may race — but
never influence results, only reporting.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bag.builder import REPRO_NO_BUILDER
from repro.bag.codec import UnsendableValueError, decode_pairs, encode_pairs

__all__ = [
    "EXECUTION_BACKENDS",
    "PROCESS_DELTA_THRESHOLD",
    "REPRO_BACKEND",
    "REPRO_PARALLEL_VIEWS",
    "ExecutionBackend",
    "ProcessExecutionBackend",
    "SerialExecutionBackend",
    "SubinterpreterExecutionBackend",
    "ThreadExecutionBackend",
    "ViewRefreshScheduler",
    "backend_availability",
    "create_execution_backend",
    "forced_backend",
    "forced_parallel_views",
    "parse_backend_spec",
    "recommend_backend",
    "resolve_backend_spec",
    "resolve_view_workers",
]

#: Environment variable selecting the refresh mode: ``0`` legacy serial
#: (pre-scheduler behavior), ``1`` shared-snapshot inline, ``N`` threads.
REPRO_PARALLEL_VIEWS = "REPRO_PARALLEL_VIEWS"


def _auto_workers() -> int:
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        return 1
    return min(cpus, 4)


def resolve_view_workers(override: Optional[int] = None) -> int:
    """The effective refresh worker count.

    Precedence: explicit ``override`` > ``REPRO_PARALLEL_VIEWS`` > auto.
    ``0`` means the legacy serial per-view path (no shared context at all);
    ``1`` means shared-snapshot refresh without threads.
    """
    if override is not None:
        if not isinstance(override, int) or override < 0:
            raise ValueError(f"worker count must be a non-negative int, got {override!r}")
        return override
    raw = os.environ.get(REPRO_PARALLEL_VIEWS)
    if raw is not None and raw != "":
        if raw == "auto":
            return _auto_workers()
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{REPRO_PARALLEL_VIEWS} must be an integer or 'auto', got {raw!r}"
            ) from None
        if value < 0:
            raise ValueError(f"{REPRO_PARALLEL_VIEWS} must be >= 0, got {value}")
        return value
    return _auto_workers()


@contextmanager
def forced_parallel_views(workers: Optional[int]) -> Iterator[None]:
    """Pin (or, with ``None``, un-pin) the refresh worker count.

    Mirrors the other escape hatches (``forced_no_index``, ``forced_shards``):
    dynamic — databases re-resolve the mode on every update, so the hatch
    affects applies performed inside the block regardless of when the
    engine was built.
    """
    saved = os.environ.get(REPRO_PARALLEL_VIEWS)
    try:
        if workers is None:
            os.environ.pop(REPRO_PARALLEL_VIEWS, None)
        else:
            os.environ[REPRO_PARALLEL_VIEWS] = str(int(workers))
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_PARALLEL_VIEWS, None)
        else:
            os.environ[REPRO_PARALLEL_VIEWS] = saved


class ViewRefreshScheduler:
    """Runs one update's view-refresh tasks, concurrently when configured.

    The pool is created lazily on the first multi-task dispatch and reused
    for the lifetime of the owning database (thread startup is three orders
    of magnitude above a refresh task, so per-update pools would drown the
    benefit).  All tasks of one dispatch are awaited before returning —
    ``apply_update`` must not mutate the stores while a refresh is in
    flight — and the first exception *in task order* is re-raised, so a
    failing view aborts the update exactly as it does on the serial path.
    """

    __slots__ = ("_workers", "_executor")

    def __init__(self, workers: int) -> None:
        self._workers = max(1, workers)
        self._executor: Optional[ThreadPoolExecutor] = None

    @property
    def workers(self) -> int:
        return self._workers

    def resize(self, workers: int) -> None:
        """Adopt a new worker count (the pool is rebuilt on next dispatch)."""
        workers = max(1, workers)
        if workers == self._workers:
            return
        self._workers = workers
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def run(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Execute every task; block until all complete."""
        if self._workers <= 1 or len(tasks) <= 1:
            for task in tasks:
                task()
            return
        executor = self._executor
        if executor is None:
            executor = self._executor = ThreadPoolExecutor(
                max_workers=self._workers,
                thread_name_prefix="repro-view-refresh",
            )
        futures = [executor.submit(task) for task in tasks]
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                future.result()
            except BaseException as error:  # noqa: BLE001 - deterministic re-raise
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:
        state = "live" if self._executor is not None else "idle"
        return f"ViewRefreshScheduler(workers={self._workers}, {state})"


# --------------------------------------------------------------------------- #
# Execution backends: where shard-apply work units run
# --------------------------------------------------------------------------- #
#: Environment variable selecting the execution backend.  Accepts a backend
#: name (``serial``/``threads``/``processes``/``subinterpreters``), ``auto``
#: (or empty — the cost model decides per delta), and an optional worker
#: count suffix (``processes:4``).
REPRO_BACKEND = "REPRO_BACKEND"

#: The registered backend names, in fallback-chain order.
EXECUTION_BACKENDS = ("serial", "threads", "processes", "subinterpreters")

#: Minimum delta cardinality (distinct elements) before the ``auto`` cost
#: model considers shipping work units to processes: below it, the export/
#: adopt round-trip dwarfs the fold itself (see benchmarks/results/
#: core_scale.json for the measured crossover methodology).
PROCESS_DELTA_THRESHOLD = 128


def parse_backend_spec(spec: str) -> Tuple[str, Optional[int]]:
    """Parse ``"name"`` or ``"name:workers"`` into ``(name, workers)``.

    ``"auto"`` (and ``""``) mean "let the cost model choose per delta".
    Raises ``ValueError`` for unknown names or invalid worker counts, so a
    typo'd ``REPRO_BACKEND`` fails loudly at resolution time.
    """
    text = (spec or "").strip()
    workers: Optional[int] = None
    if ":" in text:
        text, _, raw = text.partition(":")
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"backend worker count must be an integer, got {raw!r}"
            ) from None
        if workers < 1:
            raise ValueError(f"backend worker count must be >= 1, got {workers}")
    name = text.strip().lower() or "auto"
    if name != "auto" and name not in EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown execution backend {name!r}; available: "
            f"auto, {', '.join(EXECUTION_BACKENDS)}"
        )
    return name, workers


def resolve_backend_spec(override: Optional[str] = None) -> Tuple[str, Optional[int]]:
    """The requested backend: explicit ``override`` > ``REPRO_BACKEND`` > auto."""
    if override is not None:
        return parse_backend_spec(override)
    return parse_backend_spec(os.environ.get(REPRO_BACKEND, ""))


@contextmanager
def forced_backend(spec: Optional[str]) -> Iterator[None]:
    """Pin (or, with ``None``, un-pin) the execution backend.

    Mirrors the other escape hatches (``forced_shards``,
    ``forced_parallel_views``): dynamic — databases re-resolve the backend
    on every update, so the hatch affects applies performed inside the
    block regardless of when the engine was built.
    """
    saved = os.environ.get(REPRO_BACKEND)
    try:
        if spec is None:
            os.environ.pop(REPRO_BACKEND, None)
        else:
            parse_backend_spec(spec)  # fail loudly before pinning
            os.environ[REPRO_BACKEND] = spec
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_BACKEND, None)
        else:
            os.environ[REPRO_BACKEND] = saved


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - platform probing must never raise
        return False


def _interpreters_module():
    """The PEP 734 interpreters module, or ``None`` when the runtime lacks it."""
    try:
        import concurrent.interpreters as interpreters  # type: ignore[import-not-found]

        return interpreters
    except ImportError:
        return None


def backend_availability() -> Dict[str, Dict[str, object]]:
    """Per-backend availability on this runtime, with reasons.

    ``serial`` and ``threads`` are always available; ``processes`` needs
    the ``fork`` start method (workers inherit the parent's hash seed, so
    already-partitioned pairs stay on the shard that hashed them);
    ``subinterpreters`` needs the PEP 734 module.
    """
    fork = _fork_available()
    interpreters = _interpreters_module() is not None
    return {
        "serial": {"available": True, "reason": ""},
        "threads": {"available": True, "reason": ""},
        "processes": {
            "available": fork,
            "reason": "" if fork else "fork start method unavailable on this platform",
        },
        "subinterpreters": {
            "available": interpreters,
            "reason": "" if interpreters else "PEP 734 interpreters module unavailable",
        },
    }


def availability_fallback(name: str) -> Tuple[str, str]:
    """Degrade an unavailable backend along the documented chain.

    ``subinterpreters`` and ``processes`` both fall back to ``threads``
    (same shard-unit schedule, in-process), which is always available.
    Returns ``(effective name, reason)`` — the reason is empty when no
    degradation happened.
    """
    availability = backend_availability()
    entry = availability.get(name)
    if entry is None or entry["available"]:
        return name, ""
    return "threads", f"{name} unavailable ({entry['reason']}); using threads"


def recommend_backend(delta_size: int, shard_count: int, workers: int) -> str:
    """The cost model's per-delta backend choice (the ``auto`` policy).

    Offloading pays only when there is parallelism to exploit (*workers*
    and *shards* both > 1) and enough delta per shard to amortize dispatch;
    process offload additionally re-ships the folded shard contents home,
    so it needs :data:`PROCESS_DELTA_THRESHOLD` distinct delta elements
    before the cost model prefers it over in-process threads.  On a
    single-CPU host ``workers`` resolves to 1 and everything stays serial.
    """
    if shard_count <= 1 or workers <= 1:
        return "serial"
    if delta_size >= PROCESS_DELTA_THRESHOLD and _fork_available():
        return "processes"
    return "threads"


class ExecutionBackend:
    """Where one relation store's delta application actually runs.

    ``apply_delta(store, delta)`` must leave the store in exactly the state
    the serial path produces — contents, index buckets, *and* counters
    (version stamps, ``deltas_applied``, snapshot ``freezes``) — so that
    backends are interchangeable bit-for-bit and the differential tests can
    hold them to it.  It returns the name of the backend that effectively
    performed the work (a backend may degrade to a fallback mid-flight).
    """

    name = "abstract"

    def apply_delta(self, store, delta) -> str:
        raise NotImplementedError

    def view_workers(self, workers: int) -> int:
        """Clamp the view-refresh worker count (backends may narrow it)."""
        return workers

    def shutdown(self) -> None:
        """Release pools/processes; idempotent."""

    def describe(self) -> Dict[str, object]:
        return {"name": self.name}

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class SerialExecutionBackend(ExecutionBackend):
    """Today's inline path: every shard unit folds on the calling thread.

    Also clamps view refresh to at most one worker, making
    ``REPRO_BACKEND=serial`` a true single-threaded mode (the ``0`` legacy
    per-view refresh is preserved as-is).
    """

    name = "serial"

    def apply_delta(self, store, delta) -> str:
        store.apply_delta(delta)
        return self.name

    def view_workers(self, workers: int) -> int:
        return min(workers, 1)


class ThreadExecutionBackend(ExecutionBackend):
    """Shard units on a thread pool: scheduling changes, semantics don't.

    The units of one delta touch disjoint shards (builder dicts and index
    slices included), so running them concurrently under the GIL is safe;
    the pool mirrors :class:`ViewRefreshScheduler`'s lifecycle (lazy
    creation, reuse across updates, deterministic first-error re-raise in
    unit dispatch order).
    """

    name = "threads"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = max(1, workers if workers is not None else _auto_workers())
        self._executor: Optional[ThreadPoolExecutor] = None

    def apply_delta(self, store, delta) -> str:
        if delta.is_empty():
            return self.name
        if self.workers <= 1 or store.shards <= 1:
            store.apply_delta(delta)
            return self.name
        groups = store.partition_delta(delta)
        if len(groups) <= 1:
            store.apply_delta(delta)
            return self.name
        executor = self._executor
        if executor is None:
            executor = self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard-apply",
            )
        store.begin_delta()
        futures = [
            executor.submit(store.apply_shard_pairs, position, pairs)
            for position, pairs in groups.items()
        ]
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                future.result()
            except BaseException as error:  # noqa: BLE001 - deterministic re-raise
                if first_error is None:
                    first_error = error
        store.finish_delta()
        if first_error is not None:
            raise first_error
        return self.name

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "workers": self.workers}


class ProcessExecutionBackend(ExecutionBackend):
    """Shared-nothing shard ownership across forked worker processes.

    Each worker owns a stable subset of shards (``position % workers``).
    The parent stays authoritative for routing: it partitions every delta
    with the store's own ``_shard_of`` (fork inherits the hash seed, so
    parent and children agree, but workers never route anything), ships
    codec-encoded pair payloads, and folds the returned frozen result bags
    and index delta summaries back through ``adopt_shard`` — no re-hashing
    on either side of the transfer.

    A worker's cached shard copy is valid only while the store's
    ``routing_token()`` matches the token recorded at the last adopt; any
    out-of-band mutation (a replace, a vacuum, a delta applied by another
    backend) changes the token and forces a re-export.

    Degradation ("what poisons a process backend back to threads"): a
    delta or stored value the codec refuses (``NaN``, unknown types) marks
    the *store* as unsendable and its applies run on the threads fallback
    from then on; the ``REPRO_NO_BUILDER`` hatch does the same (offloaded
    folds bypass the builder the hatch asks to exercise); a worker crash
    or pipe failure disables the whole backend for the session after the
    in-flight delta is recovered locally.  All fallbacks are recorded and
    surfaced through :meth:`describe`.
    """

    name = "processes"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = max(1, workers if workers is not None else _auto_workers())
        self._procs: List[Tuple[Any, Any]] = []  # (Process, Connection)
        #: (store key, shard position) → routing token the worker's copy has.
        self._adopted: Dict[Tuple[str, int], Tuple] = {}
        #: store name → reason its applies run on the fallback (sticky).
        self._store_fallbacks: Dict[str, str] = {}
        self._disabled: str = ""
        self._fallback = ThreadExecutionBackend(self.workers)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _store_key(store) -> str:
        return f"{store.name}#{id(store):x}"

    def _ensure_workers(self) -> None:
        if self._procs:
            return
        from repro.engine.workunits import shard_worker_loop

        context = multiprocessing.get_context("fork")
        for index in range(self.workers):
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(
                target=shard_worker_loop,
                args=(child_end,),
                daemon=True,
                name=f"repro-shard-worker-{index}",
            )
            process.start()
            child_end.close()
            self._procs.append((process, parent_end))

    def _disable(self, reason: str) -> None:
        self._disabled = reason
        self._adopted.clear()
        self._terminate()

    def _terminate(self) -> None:
        for _, conn in self._procs:
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for process, _ in self._procs:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        self._procs = []

    # ------------------------------------------------------------------ #
    def apply_delta(self, store, delta) -> str:
        if delta.is_empty():
            return self.name
        if self._disabled or self.workers <= 1:
            return self._fallback.apply_delta(store, delta)
        reason = self._store_fallbacks.get(store.name)
        if reason is not None:
            return self._fallback.apply_delta(store, delta)
        if os.environ.get(REPRO_NO_BUILDER):
            # The hatch asks for the seed's freeze-union-readopt builder
            # behavior on every fold; offloaded units bypass the builder
            # entirely, so honoring the hatch means staying in-process.
            return self._fallback.apply_delta(store, delta)
        groups = store.partition_delta(delta)
        token_before = store.routing_token()
        store_key = self._store_key(store)
        try:
            encoded = {
                position: encode_pairs(pairs) for position, pairs in groups.items()
            }
            exports: Dict[int, bytes] = {}
            for position in groups:
                if self._adopted.get((store_key, position)) != token_before:
                    shard_state = store.export_shard(position)
                    exports[position] = encode_pairs(shard_state["data"].items())
        except UnsendableValueError as error:
            self._store_fallbacks[store.name] = f"unsendable value: {error}"
            return self._fallback.apply_delta(store, delta)
        try:
            self._ensure_workers()
        except Exception as error:  # noqa: BLE001 - startup must degrade cleanly
            self._disable(f"worker startup failed: {error!r}")
            return self._fallback.apply_delta(store, delta)

        version = store.begin_delta()
        token_after = (store.shards, store.routing_paths, version)
        paths_by_position = {
            position: store.shard_unit_paths(position) for position in groups
        }
        remaining = dict(groups)
        worker_count = len(self._procs)
        queues: Dict[int, List[int]] = {}
        for position in groups:
            queues.setdefault(position % worker_count, []).append(position)
        inflight: Dict[Any, Tuple[int, int]] = {}

        def dispatch(worker_index: int) -> None:
            queue = queues.get(worker_index)
            if not queue:
                return
            position = queue.pop(0)
            _, conn = self._procs[worker_index]
            export = exports.pop(position, None)
            if export is not None:
                conn.send(("adopt", store_key, position, export))
            conn.send(
                ("apply", store_key, position, encoded[position], paths_by_position[position])
            )
            inflight[conn] = (worker_index, position)

        try:
            from multiprocessing.connection import wait as connection_wait

            # One outstanding unit per worker bounds pipe buffering on both
            # sides, so a large export can never deadlock against a large
            # result travelling the other way.
            for worker_index in range(worker_count):
                dispatch(worker_index)
            while inflight:
                for conn in connection_wait(list(inflight)):
                    worker_index, position = inflight.pop(conn)
                    reply = conn.recv()
                    if reply[0] == "ok":
                        _, _, data_blob, summaries = reply
                        from repro.engine.workunits import decode_triples

                        index_deltas = {
                            paths: None if blob is None else decode_triples(blob)
                            for paths, blob in summaries.items()
                        }
                        store.adopt_shard(
                            position,
                            dict(decode_pairs(data_blob)),
                            index_deltas,
                            version=version,
                        )
                        self._adopted[(store_key, position)] = token_after
                    else:
                        # The worker survived but the unit failed: recover
                        # this shard locally and invalidate its remote copy.
                        store.apply_shard_pairs(position, groups[position])
                        self._adopted.pop((store_key, position), None)
                    del remaining[position]
                    dispatch(worker_index)
        except (OSError, EOFError, BrokenPipeError) as error:
            for position, pairs in remaining.items():
                store.apply_shard_pairs(position, pairs)
            self._disable(f"worker communication failed: {error!r}")
        store.finish_delta()
        return self.name

    def shutdown(self) -> None:
        self._terminate()
        self._adopted.clear()
        self._fallback.shutdown()

    def describe(self) -> Dict[str, object]:
        report: Dict[str, object] = {
            "name": self.name,
            "workers": self.workers,
            "live_workers": len(self._procs),
        }
        if self._disabled:
            report["disabled"] = self._disabled
        if self._store_fallbacks:
            report["store_fallbacks"] = dict(self._store_fallbacks)
        return report


class SubinterpreterExecutionBackend(ExecutionBackend):
    """Shard units on a PEP 734 subinterpreter, where the runtime has one.

    Feature-detected: on runtimes without ``concurrent.interpreters`` the
    resolution layer never reaches this class (``availability_fallback``
    degrades to threads first).  Units run through the *stateless* payload
    form — each carries its shard's full pre-fold contents — because the
    interpreters API offers calls, not resident worker state; that keeps
    this backend correct-by-construction at the price of re-shipping state,
    and any runtime failure degrades to the threads fallback for the rest
    of the session.
    """

    name = "subinterpreters"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = max(1, workers if workers is not None else _auto_workers())
        self._interpreter = None
        self._disabled = ""
        self._fallback = ThreadExecutionBackend(self.workers)

    def apply_delta(self, store, delta) -> str:
        if delta.is_empty():
            return self.name
        if self._disabled:
            return self._fallback.apply_delta(store, delta)
        if os.environ.get(REPRO_NO_BUILDER):
            return self._fallback.apply_delta(store, delta)
        import pickle

        from repro.engine.workunits import decode_triples, run_unit_payload

        groups = store.partition_delta(delta)
        try:
            payloads = {}
            for position, pairs in groups.items():
                shard_state = store.export_shard(position)
                payloads[position] = pickle.dumps(
                    (
                        encode_pairs(shard_state["data"].items()),
                        encode_pairs(pairs),
                        store.shard_unit_paths(position),
                    )
                )
        except UnsendableValueError:
            return self._fallback.apply_delta(store, delta)
        version = store.begin_delta()
        remaining = dict(groups)
        try:
            for position, payload in payloads.items():
                result_blob = self._run(run_unit_payload, payload)
                data_blob, summaries = pickle.loads(result_blob)
                index_deltas = {
                    paths: None if blob is None else decode_triples(blob)
                    for paths, blob in summaries.items()
                }
                store.adopt_shard(
                    position, dict(decode_pairs(data_blob)), index_deltas, version=version
                )
                del remaining[position]
        except Exception as error:  # noqa: BLE001 - degrade, never corrupt
            for position, pairs in remaining.items():
                store.apply_shard_pairs(position, pairs)
            self._disabled = f"subinterpreter execution failed: {error!r}"
        store.finish_delta()
        return self.name

    def _run(self, fn, payload: bytes) -> bytes:
        interpreters = _interpreters_module()
        if interpreters is None:
            raise RuntimeError("PEP 734 interpreters module unavailable")
        if self._interpreter is None:
            self._interpreter = interpreters.create()
        return self._interpreter.call(fn, payload)

    def shutdown(self) -> None:
        interpreter = self._interpreter
        self._interpreter = None
        if interpreter is not None:
            try:
                interpreter.close()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        self._fallback.shutdown()

    def describe(self) -> Dict[str, object]:
        report: Dict[str, object] = {"name": self.name, "workers": self.workers}
        if self._disabled:
            report["disabled"] = self._disabled
        return report


_BACKEND_CLASSES = {
    "serial": SerialExecutionBackend,
    "threads": ThreadExecutionBackend,
    "processes": ProcessExecutionBackend,
    "subinterpreters": SubinterpreterExecutionBackend,
}


def create_execution_backend(
    name: str, workers: Optional[int] = None
) -> ExecutionBackend:
    """Instantiate a backend by registered name (the pluggable entry point)."""
    try:
        backend_class = _BACKEND_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r}; available: "
            f"{', '.join(EXECUTION_BACKENDS)}"
        ) from None
    if name == "serial":
        return backend_class()
    return backend_class(workers)
