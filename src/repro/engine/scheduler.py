"""Concurrent multi-view refresh: the ThreadPoolExecutor-backed scheduler.

``Database.apply_update`` notifies every registered view *before* mutating
the stored instances, and each view's refresh reads only immutable
pre-update snapshots plus its own materialization — the delta environments
are snapshots, so running independent views concurrently is a *scheduling*
decision, not a semantics change.  This module supplies that schedule:

* :func:`resolve_view_workers` turns the ``REPRO_PARALLEL_VIEWS``
  environment variable (or an explicit engine/database override) into a
  worker count — ``0`` is the escape hatch reproducing the legacy serial
  per-view notification (each view builds its own environments), ``1`` runs
  the new shared-snapshot refresh inline, and ``N > 1`` dispatches view
  refreshes onto a thread pool;
* :class:`ViewRefreshScheduler` owns the pool, reuses it across updates,
  and re-raises the first failure in view-registration order so error
  behavior stays deterministic.

On a single-CPU host the ``auto`` default resolves to ``1``: the CPython
GIL serializes pure-Python refresh work, so a pool would add dispatch
latency without buying overlap — the shared-snapshot refresh and the
sharded stores' per-shard copy-on-write still apply.  Multi-core hosts get
``min(cpu_count, 4)`` workers.

Thread-safety contract for view backends (see ``docs/api.md``): a view's
``on_update`` may read the shared :class:`~repro.ivm.database.RefreshContext`
environments and the database's frozen snapshots, and may mutate only its
own state.  Stats counters on shared index structures (hits, interner
tallies) are best-effort under concurrency — increments may race — but
never influence results, only reporting.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence

__all__ = [
    "REPRO_PARALLEL_VIEWS",
    "ViewRefreshScheduler",
    "forced_parallel_views",
    "resolve_view_workers",
]

#: Environment variable selecting the refresh mode: ``0`` legacy serial
#: (pre-scheduler behavior), ``1`` shared-snapshot inline, ``N`` threads.
REPRO_PARALLEL_VIEWS = "REPRO_PARALLEL_VIEWS"


def _auto_workers() -> int:
    cpus = os.cpu_count() or 1
    if cpus <= 1:
        return 1
    return min(cpus, 4)


def resolve_view_workers(override: Optional[int] = None) -> int:
    """The effective refresh worker count.

    Precedence: explicit ``override`` > ``REPRO_PARALLEL_VIEWS`` > auto.
    ``0`` means the legacy serial per-view path (no shared context at all);
    ``1`` means shared-snapshot refresh without threads.
    """
    if override is not None:
        if not isinstance(override, int) or override < 0:
            raise ValueError(f"worker count must be a non-negative int, got {override!r}")
        return override
    raw = os.environ.get(REPRO_PARALLEL_VIEWS)
    if raw is not None and raw != "":
        if raw == "auto":
            return _auto_workers()
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"{REPRO_PARALLEL_VIEWS} must be an integer or 'auto', got {raw!r}"
            ) from None
        if value < 0:
            raise ValueError(f"{REPRO_PARALLEL_VIEWS} must be >= 0, got {value}")
        return value
    return _auto_workers()


@contextmanager
def forced_parallel_views(workers: Optional[int]) -> Iterator[None]:
    """Pin (or, with ``None``, un-pin) the refresh worker count.

    Mirrors the other escape hatches (``forced_no_index``, ``forced_shards``):
    dynamic — databases re-resolve the mode on every update, so the hatch
    affects applies performed inside the block regardless of when the
    engine was built.
    """
    saved = os.environ.get(REPRO_PARALLEL_VIEWS)
    try:
        if workers is None:
            os.environ.pop(REPRO_PARALLEL_VIEWS, None)
        else:
            os.environ[REPRO_PARALLEL_VIEWS] = str(int(workers))
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_PARALLEL_VIEWS, None)
        else:
            os.environ[REPRO_PARALLEL_VIEWS] = saved


class ViewRefreshScheduler:
    """Runs one update's view-refresh tasks, concurrently when configured.

    The pool is created lazily on the first multi-task dispatch and reused
    for the lifetime of the owning database (thread startup is three orders
    of magnitude above a refresh task, so per-update pools would drown the
    benefit).  All tasks of one dispatch are awaited before returning —
    ``apply_update`` must not mutate the stores while a refresh is in
    flight — and the first exception *in task order* is re-raised, so a
    failing view aborts the update exactly as it does on the serial path.
    """

    __slots__ = ("_workers", "_executor")

    def __init__(self, workers: int) -> None:
        self._workers = max(1, workers)
        self._executor: Optional[ThreadPoolExecutor] = None

    @property
    def workers(self) -> int:
        return self._workers

    def resize(self, workers: int) -> None:
        """Adopt a new worker count (the pool is rebuilt on next dispatch)."""
        workers = max(1, workers)
        if workers == self._workers:
            return
        self._workers = workers
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def run(self, tasks: Sequence[Callable[[], None]]) -> None:
        """Execute every task; block until all complete."""
        if self._workers <= 1 or len(tasks) <= 1:
            for task in tasks:
                task()
            return
        executor = self._executor
        if executor is None:
            executor = self._executor = ThreadPoolExecutor(
                max_workers=self._workers,
                thread_name_prefix="repro-view-refresh",
            )
        futures = [executor.submit(task) for task in tasks]
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                future.result()
            except BaseException as error:  # noqa: BLE001 - deterministic re-raise
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:
        state = "live" if self._executor is not None else "idle"
        return f"ViewRefreshScheduler(workers={self._workers}, {state})"
