"""Maintenance plans: the output of the cost-driven strategy planner.

``engine.view(name, query, strategy="auto")`` routes every view through the
planner, which scores each registered backend with the paper's cost model
(Section 4: ``C[[·]]`` and ``tcost``) and records the result here.  A
:class:`MaintenancePlan` is what ``engine.explain(view)`` returns: the chosen
strategy, the per-strategy estimates that justified the choice, and the
derived artifacts (delta query, residual delta, shredded flat/context) of the
winning backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.nrc.ast import Expr
from repro.nrc.pretty import render as render_expr

__all__ = ["StrategyEstimate", "MaintenancePlan"]


@dataclass
class StrategyEstimate:
    """The planner's verdict on one candidate backend for one view.

    ``tcost`` bounds the work of evaluating the backend's per-update
    (delta) queries — ``tcost(C[[δ(h)]])`` of Lemma 3 — and ``scan_cost``
    adds the tuples the backend must re-read from base sources on every
    refresh (zero for backends whose deltas touch only the update and their
    own materializations).  ``total`` is their sum; the planner minimizes it.
    """

    strategy: str
    eligible: bool
    reason: str = ""
    tcost: Optional[int] = None
    scan_cost: Optional[int] = None
    artifacts: Dict[str, str] = field(default_factory=dict)

    @property
    def total(self) -> Optional[int]:
        """The planner's objective: estimated per-update work, or ``None``."""
        if self.tcost is None:
            return None
        return self.tcost + (self.scan_cost or 0)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (JSON-serializable: dicts/lists/scalars only)."""
        return {
            "strategy": self.strategy,
            "eligible": self.eligible,
            "reason": self.reason,
            "tcost": self.tcost,
            "scan_cost": self.scan_cost,
            "total": self.total,
            "artifacts": dict(self.artifacts),
        }

    def render(self) -> str:
        marker = "ok " if self.eligible else "-- "
        if self.total is not None:
            costs = f"tcost={self.tcost} scan={self.scan_cost or 0} total={self.total}"
        else:
            costs = "no estimate"
        suffix = f"  ({self.reason})" if self.reason else ""
        return f"{marker}{self.strategy:<10} {costs}{suffix}"

    def __repr__(self) -> str:
        return f"StrategyEstimate({self.render().strip()})"


@dataclass
class MaintenancePlan:
    """How one view will be maintained, and why.

    ``strategy`` names the backend that will run the view; ``requested``
    records what the caller asked for (``"auto"`` or an explicit name);
    ``estimates`` holds one :class:`StrategyEstimate` per registered backend
    in registry order; ``artifacts`` maps labels (``"delta query"``,
    ``"residual delta"``, ``"shredded flat"``, …) to rendered expressions of
    the chosen backend.
    """

    view_name: str
    query: Expr
    strategy: str
    requested: str
    reason: str
    estimates: Tuple[StrategyEstimate, ...] = ()
    expected_update_size: int = 1
    artifacts: Dict[str, str] = field(default_factory=dict)
    #: ``"compiled"`` when the built view runs its per-update queries through
    #: the closure compiler (:mod:`repro.nrc.compile`), ``"interpreted"``
    #: otherwise.  Filled in by the facade once the backend view exists.
    execution: str = "interpreted"
    #: One rendered entry per join atom of the view's compiled queries,
    #: marking whether the storage layer keeps a persistent index for it
    #: (``"M[.1] (persistent)"``) or the pipeline rebuilds per evaluation.
    #: Filled in by the facade once the backend view exists.
    indexes: Tuple[str, ...] = ()
    #: Relation-store shard count at planning time (``1`` = unsharded hatch).
    shards: int = 1
    #: How independent views are refreshed per update: ``"serial-legacy"``,
    #: ``"shared-snapshot inline"``, or ``"threads(N)"``.
    parallel_apply: str = "serial-legacy"
    #: Rendered per-update application cost unit (``"O(|Δ|/N) per shard"``).
    apply_unit: str = "O(|Δ|)"
    #: The execution backend shard-apply units run on: a pinned name
    #: (``"processes(4)"``, with a degradation arrow when this runtime
    #: lacks it) or the cost model's pick for the assumed delta size
    #: (``"auto(serial)"``).
    backend: str = "auto(serial)"

    def estimate_for(self, strategy: str) -> Optional[StrategyEstimate]:
        """The estimate recorded for a given backend name (``None`` if absent)."""
        for estimate in self.estimates:
            if estimate.strategy == strategy:
                return estimate
        return None

    @property
    def chosen_estimate(self) -> Optional[StrategyEstimate]:
        return self.estimate_for(self.strategy)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form of the plan for wire protocols and CLI tables.

        Everything is JSON-serializable without a bespoke encoder: the query
        is rendered to its calculus string, estimates become plain dicts,
        and no ``Expr``/``Label``/dataclass objects leak through.  Round-trips
        ``json.loads(json.dumps(plan.to_dict())) == plan.to_dict()``.
        """
        return {
            "view": self.view_name,
            "query": render_expr(self.query),
            "strategy": self.strategy,
            "requested": self.requested,
            "reason": self.reason,
            "execution": self.execution,
            "indexes": list(self.indexes),
            "shards": self.shards,
            "parallel_apply": self.parallel_apply,
            "apply_unit": self.apply_unit,
            "backend": self.backend,
            "expected_update_size": self.expected_update_size,
            "estimates": [estimate.to_dict() for estimate in self.estimates],
            "artifacts": dict(self.artifacts),
        }

    def render(self) -> str:
        """Human-readable multi-line explanation (what ``explain`` prints)."""
        lines = [
            f"MaintenancePlan for view {self.view_name!r}",
            f"  strategy : {self.strategy} (requested: {self.requested})",
            f"  execution: {self.execution}",
            f"  indexes  : {', '.join(self.indexes) if self.indexes else 'none'}",
            f"  storage  : {self.shards} shard(s), apply {self.apply_unit}, "
            f"view refresh {self.parallel_apply}",
            f"  backend  : {self.backend}",
            f"  reason   : {self.reason}",
            f"  assumed update size d = {self.expected_update_size}",
            "  candidates:",
        ]
        for estimate in self.estimates:
            lines.append(f"    {estimate.render()}")
        for label, text in self.artifacts.items():
            lines.append(f"  {label}: {text}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        totals = ", ".join(
            f"{e.strategy}={e.total if e.total is not None else '∅'}"
            for e in self.estimates
        )
        return (
            f"MaintenancePlan(view={self.view_name!r}, strategy={self.strategy!r}, "
            f"estimates=[{totals}])"
        )
