"""The :class:`Engine` facade — the library's public API.

One object owns the database, plans maintenance strategies through the cost
model, and dispatches updates to every registered view::

    engine = Engine()
    movies = engine.dataset("M", MOVIE_RECORD, rows=PAPER_MOVIES)
    view = engine.view("related", related, strategy="auto")
    engine.apply(insertions("M", [("Jarhead", "Drama", "Mendes")]))
    print(engine.explain("related").render())
    print(view.result())

``dataset`` accepts either a :class:`~repro.surface.Record` (returning a
surface-DSL :class:`~repro.surface.Dataset` to build queries against) or a
raw :class:`~repro.nrc.types.BagType` (returning the matching
:class:`~repro.nrc.ast.Relation` node for hand-written NRC+).  ``view``
accepts either a surface :class:`~repro.surface.Query` or an NRC+
:class:`~repro.nrc.ast.Expr`; ``strategy="auto"`` routes through
:mod:`repro.engine.planner`, explicit names through the backend registry.

The low-level :class:`~repro.ivm.Database` and view classes remain available
as the implementation layer, but new code should not wire them by hand.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.bag.bag import Bag
from repro.durability.faults import FaultInjector
from repro.durability.manager import DurabilityManager, RecoveryReport
from repro.engine.plan import MaintenancePlan
from repro.engine.planner import plan_view
from repro.engine.registry import DEFAULT_REGISTRY, BackendRegistry
from repro.errors import EngineError, NotInFragmentError
from repro.ivm.database import Database, ShreddedDelta
from repro.ivm.updates import Update, UpdateStream, deletions, insertions
from repro.ivm.views import MaintenanceStats
from repro.nrc import ast
from repro.nrc.ast import Expr
from repro.nrc.types import BagType
from repro.surface.dsl import Dataset, Query
from repro.surface.schema import Record

__all__ = ["Engine", "EngineSnapshot", "Session", "ViewHandle"]

#: What ``Engine.view`` accepts as a query.
QueryLike = Union[Query, Expr]
#: What ``Engine.apply`` accepts as an update: an :class:`Update`, or a
#: relation→rows mapping whose values are a :class:`Bag`, an iterable of
#: elements (insertions), or an ``element → multiplicity`` mapping (the
#: ``(element, multiplicity)`` pairs form — negative multiplicities express
#: deletions, so mixed deltas need no ``deletions()`` import).
UpdateLike = Union[Update, Mapping[str, Union[Bag, Iterable, Mapping]]]


class ViewHandle:
    """A maintained view as exposed by the facade.

    Wraps the backend view object together with the plan that chose it.
    ``result()`` returns the current materialization (always the *nested*
    value, whichever backend maintains it); ``stats`` exposes the
    maintenance accounting used by the benchmarks.
    """

    def __init__(
        self,
        name: str,
        strategy: str,
        view,
        plan: MaintenancePlan,
        *,
        expr=None,
        targets: Optional[Tuple[str, ...]] = None,
        expected_update_size: int = 1,
    ) -> None:
        self.name = name
        self.strategy = strategy
        self.view = view
        self.plan = plan
        # The creation spec, kept so durable engines can checkpoint the view
        # and recreate it bit-for-bit on recovery.
        self.expr = expr
        self.targets = targets
        self.expected_update_size = expected_update_size

    def result(self) -> Bag:
        return self.view.result()

    @property
    def stats(self) -> MaintenanceStats:
        return self.view.stats

    @property
    def execution(self) -> str:
        """``"compiled"`` or ``"interpreted"`` — how the view's per-update
        queries run (see :mod:`repro.nrc.compile` and ``REPRO_NO_COMPILE``)."""
        mode = getattr(self.view, "execution_mode", None)
        return mode() if callable(mode) else "interpreted"

    def indexes(self) -> list:
        """Live state of the persistent storage indexes behind this view.

        One entry per join atom of the view's compiled queries: relation,
        key paths, whether a persistent index is registered for it, and —
        when registered — its size plus hit/rebuild counts.  The report is
        plain data (dicts/lists/scalars), so ``json.dumps`` accepts it
        unchanged — what the serving layer's wire protocol relies on.
        """
        report = getattr(self.view, "index_report", None)
        return list(report()) if callable(report) else []

    def explain(self) -> MaintenancePlan:
        return self.plan

    def __repr__(self) -> str:
        return (
            f"<View {self.name!r} strategy={self.strategy} "
            f"execution={self.execution} "
            f"updates={self.stats.updates_applied}>"
        )


class EngineSnapshot:
    """A consistent, immutable picture of an engine at one state version.

    Captures the frozen store snapshots of every dataset and the current
    materialization of every view, stamped with the database's
    ``state_version`` at capture time.  The bags are the storage layer's
    copy-on-write snapshots: retaining one costs nothing until the next
    write, which then un-shares only the touched shards (see ``docs/api.md``,
    "Storage internals & complexity").  The serving layer publishes one of
    these per applied batch; readers pin it and never block behind an
    in-flight apply.

    Consistency contract: a snapshot must be captured while no update is in
    flight (the capturing thread is the applying thread, or externally
    synchronized with it).  Given that, all bags in one snapshot reflect
    exactly the state after the same update.
    """

    __slots__ = ("version", "datasets", "views")

    def __init__(
        self,
        version: int,
        datasets: Mapping[str, Bag],
        views: Mapping[str, Bag],
    ) -> None:
        self.version = version
        self.datasets = dict(datasets)
        self.views = dict(views)

    def __repr__(self) -> str:
        return (
            f"EngineSnapshot(version={self.version}, "
            f"datasets={sorted(self.datasets)}, views={sorted(self.views)})"
        )


class Engine:
    """Sessions over one database: registration, views, updates, explain."""

    def __init__(
        self,
        *,
        expected_update_size: int = 1,
        registry: Optional[BackendRegistry] = None,
        shards: Optional[int] = None,
        parallel_views: Optional[int] = None,
        backend: Optional[str] = None,
        data_dir: Optional[str] = None,
        fsync: Optional[str] = None,
        fault_injector: Optional[FaultInjector] = None,
        standby: bool = False,
    ) -> None:
        """``shards`` partitions every relation store (``None`` defers to
        ``REPRO_SHARDS`` / the default; ``1`` is the unsharded escape hatch);
        ``parallel_views`` fixes the view-refresh worker count (``None``
        defers to ``REPRO_PARALLEL_VIEWS`` / auto, ``0`` the legacy serial
        per-view refresh, ``N > 1`` a thread pool); ``backend`` pins the
        execution backend shard-apply work units run on
        (``"serial"``/``"threads"``/``"processes"``/``"subinterpreters"``,
        optionally ``"processes:4"``; ``None`` defers to ``REPRO_BACKEND`` /
        the per-delta cost model).  See ``docs/api.md``, "Sharding &
        parallel apply" and "Execution backends".

        ``data_dir`` makes the engine durable: operations are write-ahead
        logged, :meth:`checkpoint` cuts snapshot checkpoints, and opening an
        engine on an existing directory restores its state (newest valid
        checkpoint + WAL tail replay — see ``docs/durability.md``).
        ``fsync`` picks the WAL sync policy (``"always"``/``"batch"``/
        ``"off"``; ``None`` defers to ``REPRO_FSYNC`` / ``batch``) and
        ``fault_injector`` arms the crash-injection harness
        (:mod:`repro.durability.faults`).  Without ``data_dir`` the engine
        is purely in-memory, exactly as before.

        ``standby=True`` (durable engines only) recovers from ``data_dir``
        but never opens the WAL for appends: the replication layer feeds
        the engine shipped records (:meth:`apply_replicated`) and mirrors
        the primary's segments itself, until :meth:`promote_writable` ends
        the standby (see ``docs/replication.md``).
        """
        self._database = Database(
            shards=shards, parallel_views=parallel_views, backend=backend
        )
        self._registry = registry if registry is not None else DEFAULT_REGISTRY
        self._expected_update_size = expected_update_size
        self._views: Dict[str, ViewHandle] = {}
        self._datasets: Dict[str, object] = {}
        # Original schema arguments (Record or BagType), as passed by the
        # user — what dataset records and checkpoint manifests persist.
        self._dataset_schemas: Dict[str, object] = {}
        self._durability: Optional[DurabilityManager] = None
        # The fencing epoch of in-memory engines (durable engines persist
        # theirs through the durability manager).
        self._epoch = 0
        if standby and data_dir is None:
            raise EngineError("standby=True requires an engine opened with data_dir")
        if data_dir is not None:
            self._durability = DurabilityManager(
                data_dir, fsync=fsync, faults=fault_injector, standby=standby
            )
            self._durability.open_and_recover(self)
            if self._durability.fenced is not None:
                # A demoted primary stays fenced across restarts: the epoch
                # file outlives the process, so a superseded node can never
                # silently resume acknowledging writes.
                self._database.set_read_only(
                    f"fenced by replication epoch {self._durability.epoch}: "
                    f"{self._durability.fenced}"
                )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the engine down deterministically.

        Joins the view-refresh scheduler's worker threads (which otherwise
        live until garbage collection) and closes the database: further
        ``dataset``/``apply`` calls raise, already-frozen snapshots and view
        results stay readable.  Idempotent, and safe to call concurrently
        with an in-flight ``apply``: the database's lifecycle lock makes
        close wait for the apply (and its WAL append) to commit; also runs
        on context-manager exit, so ``with Engine() as engine: ...`` never
        leaks threads.
        """
        with self._database.lifecycle_lock:
            self._database.close()
            if self._durability is not None:
                self._durability.close()

    @property
    def closed(self) -> bool:
        return self._database.closed

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    @property
    def durable(self) -> bool:
        """True when the engine was opened with a ``data_dir``."""
        return self._durability is not None

    @property
    def read_only(self) -> Optional[str]:
        """The recovery degradation reason, or ``None`` when writable."""
        return self._database.read_only

    @property
    def recovery_report(self) -> Optional[RecoveryReport]:
        """What replay-on-open found (``None`` for in-memory engines)."""
        return None if self._durability is None else self._durability.report

    def durability_report(self) -> Optional[Mapping[str, object]]:
        """WAL counters, fsync policy, and the recovery summary (or ``None``)."""
        return None if self._durability is None else self._durability.describe()

    def sync_wal(self) -> None:
        """Make every logged operation durable — the acknowledgement barrier
        under the ``batch`` policy.  A no-op for in-memory engines."""
        if self._durability is not None:
            self._durability.sync()

    # ------------------------------------------------------------------ #
    # Replication & failover
    # ------------------------------------------------------------------ #
    @property
    def standby(self) -> bool:
        """True while the engine recovers-and-follows without a writable WAL."""
        return self._durability is not None and self._durability.standby

    @property
    def replication_epoch(self) -> int:
        """The monotone fencing epoch (persisted for durable engines)."""
        if self._durability is not None:
            return self._durability.epoch
        return self._epoch

    def set_replication_epoch(self, epoch: int, *, role: Optional[str] = None) -> None:
        """Adopt a fencing epoch (never lowers; durable engines persist it).

        Lifecycle-locked: the replica link adopts epochs from its own
        thread while the ingest worker applies, and the persisted state
        file must never see interleaved writers.
        """
        with self._database.lifecycle_lock:
            if self._durability is not None:
                if role is not None:
                    self._durability.set_epoch(epoch, role=role)
                else:
                    self._durability.set_epoch(epoch)
            else:
                self._epoch = max(self._epoch, int(epoch))

    def fence(self, epoch: int, reason: str) -> None:
        """Demote: adopt ``epoch`` and degrade to read-only in one step.

        Taken under the lifecycle lock so an in-flight apply commits (and
        logs) fully before the fence lands — the fence point is a clean
        position in the operation order, never the middle of a write.
        """
        with self._database.lifecycle_lock:
            if self._durability is not None:
                self._durability.set_epoch(epoch, fenced=reason)
            else:
                self._epoch = max(self._epoch, int(epoch))
            self._database.set_read_only(
                f"fenced by replication epoch {self.replication_epoch}: {reason}"
            )

    def promote_writable(self, *, epoch: Optional[int] = None) -> int:
        """Flip a standby, fenced, or recovery-degraded engine writable.

        The lifecycle-locked inverse of ``set_read_only``/standby: adopts
        ``epoch`` (when given), opens the WAL for appends on a fresh
        segment, and clears the read-only degradation.  Refused while a
        replay is in flight — promoting an engine whose state is still
        being rebuilt would let writes interleave with the replayed tail.
        Returns the engine's ``state_version`` at the promotion point.
        """
        with self._database.lifecycle_lock:
            if self._database.closed:
                raise EngineError("cannot promote a closed engine")
            if self._durability is not None:
                if self._durability.replaying:
                    raise EngineError(
                        "cannot promote to writable while a replay is in flight"
                    )
                self._durability.set_epoch(
                    self.replication_epoch if epoch is None else epoch,
                    role="primary",
                    fenced=None,
                )
                self._durability.open_wal()
            elif epoch is not None:
                self._epoch = max(self._epoch, int(epoch))
            self._database.promote_writable()
            return self._database.state_version

    def apply_replicated(self, payload: bytes) -> None:
        """Apply one shipped WAL record (a standby engine's only write path).

        Runs the record through the durability manager's replay dispatch
        with logging suspended; the replication layer is responsible for
        mirroring the raw frame into the local WAL, so the engine never
        re-logs it.
        """
        if self._durability is None:
            raise EngineError("replicated applies require an engine with data_dir")
        with self._database.lifecycle_lock:
            self._durability.replay_one(self, payload)

    def checkpoint_capture(self):
        """Pin a checkpoint capture (cheap: frozen copy-on-write snapshots).

        Must run while no update is in flight — call from the applying
        thread, or synchronized with it (the serving layer runs it as an
        ingest-worker barrier).  Encode with :meth:`write_checkpoint`, from
        any thread.
        """
        if self._durability is None:
            raise EngineError("checkpoint requires an engine opened with data_dir")
        return self._durability.capture(self)

    def write_checkpoint(self, capture) -> Mapping[str, object]:
        """Encode a capture to disk atomically; prunes covered WAL segments."""
        if self._durability is None:
            raise EngineError("checkpoint requires an engine opened with data_dir")
        return self._durability.write_capture(capture)

    def checkpoint(self) -> Mapping[str, object]:
        """Capture and write a checkpoint in one call (single-threaded use)."""
        return self.write_checkpoint(self.checkpoint_capture())

    def simulate_crash(self) -> None:
        """Abandon the engine as a power loss would: unwritten WAL buffers
        are dropped, nothing is flushed, the database closes.  Only the
        fault-injection harness should want this; production code calls
        :meth:`close`."""
        if self._durability is not None:
            self._durability.discard()
        self._database.close()

    def _restore_dataset(self, name: str, schema: Union[Record, BagType]) -> BagType:
        """Recovery-path half of :meth:`dataset`: rebuild the query handle
        and schema bookkeeping without touching the database (contents are
        adopted from the checkpoint, not re-registered)."""
        if isinstance(schema, Record):
            bag_type = schema.bag_type()
            handle: object = Dataset(name, schema)
        elif isinstance(schema, BagType):
            bag_type = schema
            handle = ast.Relation(name, schema)
        else:
            raise TypeError(
                f"schema must be a Record or a BagType, got {type(schema).__name__}"
            )
        self._datasets[name] = handle
        self._dataset_schemas[name] = schema
        return bag_type

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def state_version(self) -> int:
        """Monotone counter of committed state transitions (see
        :meth:`~repro.ivm.database.Database.state_version`)."""
        return self._database.state_version

    def snapshot(self) -> EngineSnapshot:
        """Pin a consistent :class:`EngineSnapshot` at the current version.

        Must be called while no update is in flight (from the applying
        thread, or synchronized with it) — the serving layer's single-writer
        ingest loop satisfies this by construction.  The returned bags are
        lazily-frozen copy-on-write snapshots, so capture is O(shards) per
        dataset plus O(1) per already-materialized view result.
        """
        return EngineSnapshot(
            version=self._database.state_version,
            datasets={name: self._database.relation(name) for name in self.dataset_names()},
            views={handle.name: handle.result() for handle in self._views.values()},
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def database(self) -> Database:
        """The underlying low-level database (implementation layer)."""
        return self._database

    @property
    def registry(self) -> BackendRegistry:
        return self._registry

    def dataset_names(self) -> Tuple[str, ...]:
        return self._database.relation_names()

    def dataset_handle(self, name: str):
        """The query-building handle returned when the dataset was registered."""
        try:
            return self._datasets[name]
        except KeyError:
            raise EngineError(f"no dataset named {name!r}") from None

    def relation(self, name: str) -> Bag:
        """Current contents of a registered dataset."""
        return self._database.relation(name)

    def views(self) -> Tuple[ViewHandle, ...]:
        return tuple(self._views.values())

    def __getitem__(self, name: str) -> ViewHandle:
        try:
            return self._views[name]
        except KeyError:
            raise EngineError(f"no view named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._views

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def dataset(
        self,
        name: str,
        schema: Union[Record, BagType],
        rows: Optional[Union[Bag, Iterable]] = None,
    ):
        """Register a dataset and return a handle for building queries.

        A :class:`Record` schema yields a surface-DSL :class:`Dataset`
        (``.row()`` / ``.iterate()``); a raw :class:`BagType` yields the
        corresponding :class:`~repro.nrc.ast.Relation` node.
        """
        if name in self._datasets:
            raise EngineError(f"dataset {name!r} is already registered")
        if isinstance(schema, Record):
            bag_type = schema.bag_type()
            handle: object = Dataset(name, schema)
        elif isinstance(schema, BagType):
            bag_type = schema
            handle = ast.Relation(name, schema)
        else:
            raise TypeError(
                f"schema must be a Record or a BagType, got {type(schema).__name__}"
            )
        instance = None
        if rows is not None:
            instance = rows if isinstance(rows, Bag) else Bag(rows)
        # Encode the WAL record up front so an unpersistable schema fails
        # before anything mutates; append only after the store accepted the
        # registration (append-after-apply).
        record = None
        if self._durability is not None:
            record = self._durability.prepare_dataset(name, schema, instance)
        with self._database.lifecycle_lock:
            self._database.register(name, bag_type, instance)
            if self._durability is not None:
                self._durability.commit(record)
        self._datasets[name] = handle
        self._dataset_schemas[name] = schema
        return handle

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def view(
        self,
        name: str,
        query: QueryLike,
        strategy: str = "auto",
        *,
        targets: Optional[Sequence[str]] = None,
        expected_update_size: Optional[int] = None,
    ) -> ViewHandle:
        """Create and materialize a maintained view.

        ``strategy="auto"`` lets the cost model pick the backend; any
        registered backend name selects it explicitly (the estimates are
        still computed so :meth:`explain` stays informative).
        """
        if name in self._views:
            raise EngineError(f"view {name!r} already exists")
        expr = query.to_expr() if isinstance(query, Query) else query
        if not isinstance(expr, Expr):
            raise TypeError(
                f"query must be a surface Query or an NRC+ Expr, got {type(query).__name__}"
            )
        plan = plan_view(
            expr,
            self._database,
            name=name,
            requested=strategy,
            expected_update_size=(
                expected_update_size
                if expected_update_size is not None
                else self._expected_update_size
            ),
            targets=targets,
            registry=self._registry,
        )
        spec = self._registry.get(plan.strategy)
        if targets is not None and not spec.honors_targets:
            raise EngineError(
                f"backend {spec.name!r} derives its own update sources and cannot "
                f"honor an explicit targets list for view {name!r}"
            )
        if not spec.supports(expr):
            raise NotInFragmentError(
                f"backend {spec.name!r} cannot maintain view {name!r}: "
                f"query is outside its supported fragment"
            )
        effective_expected = (
            expected_update_size
            if expected_update_size is not None
            else self._expected_update_size
        )
        # Encode the WAL record before building: a query that does not
        # pickle must fail loudly here, not corrupt the log (the resolved
        # strategy is pinned so replay never re-plans).
        record = None
        if self._durability is not None:
            record = self._durability.prepare_view(
                name, plan.strategy, expr, targets, effective_expected
            )
        view = spec.build(expr, self._database, targets=targets)
        handle = ViewHandle(
            name,
            plan.strategy,
            view,
            plan,
            expr=expr,
            targets=tuple(targets) if targets is not None else None,
            expected_update_size=effective_expected,
        )
        plan.execution = handle.execution
        requirements = getattr(view, "index_requirements", lambda: ())()
        registered = {
            requirement.key()
            for requirement in getattr(view, "registered_index_requirements", lambda: ())()
        }
        plan.indexes = tuple(
            f"{requirement.render()} "
            f"({'persistent' if requirement.key() in registered else 'per-evaluation'})"
            for requirement in requirements
        )
        # {register + append} under the lifecycle lock, matching the
        # dataset/apply discipline: a concurrent close cannot slip between
        # the two (silently dropping the record from a closed WAL), and the
        # append never interleaves with a concurrent apply's.
        with self._database.lifecycle_lock:
            self._views[name] = handle
            if self._durability is not None:
                self._durability.commit(record)
        return handle

    def explain(self, view: Union[str, ViewHandle]) -> MaintenancePlan:
        """The :class:`MaintenancePlan` behind a view's strategy choice."""
        handle = view if isinstance(view, ViewHandle) else self[view]
        return handle.plan

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def apply(self, update: UpdateLike) -> ShreddedDelta:
        """Apply one update: every registered view refreshes incrementally."""
        return self._apply_logged(self._coerce_update(update))

    def _apply_logged(self, update: Update) -> ShreddedDelta:
        """Apply one coerced update and write-ahead log it.

        ``{mutate + append}`` runs under the database's lifecycle lock, so
        the WAL only ever records updates the store accepted, and a
        concurrent ``close`` cannot slip between the two.  No-op updates
        are applied (for the validation) but never logged.
        """
        durability = self._durability
        if durability is None:
            return self._database.apply_update(update)
        with self._database.lifecycle_lock:
            delta = self._database.apply_update(update)
            if not update.is_empty():
                durability.log_update(update)
            return delta

    def apply_stream(
        self,
        stream: Union[UpdateStream, Iterable[UpdateLike]],
        *,
        batched: bool = False,
    ) -> int:
        """Apply a stream of updates; returns the number of input updates.

        ``batched=True`` coalesces the whole stream into one cumulative
        update (:meth:`UpdateStream.merged`) and applies it in a single
        round: every view runs its delta pipeline once over the combined
        delta and the stores/indexes refresh once, instead of once per
        input update.  Cancelling insert/delete pairs vanish before any
        view sees them.  Views observe the same final state either way,
        but not the intermediate ones — don't batch when per-update
        results matter.
        """
        if batched:
            updates = [self._coerce_update(update) for update in stream]
            # The WAL logs the *merged* update — natural compaction: the
            # log, like the views, never sees cancelling insert/delete
            # pairs, and replay applies one round exactly as the batch did.
            self._apply_logged(UpdateStream(updates).merged())
            return len(updates)
        applied = 0
        for update in stream:
            self.apply(update)
            applied += 1
        return applied

    def insert(self, relation: str, rows: Iterable) -> ShreddedDelta:
        """Convenience: insert rows into one dataset."""
        return self.apply(insertions(relation, rows))

    def delete(self, relation: str, rows: Iterable) -> ShreddedDelta:
        """Convenience: delete rows from one dataset."""
        return self.apply(deletions(relation, rows))

    # ------------------------------------------------------------------ #
    # Storage maintenance
    # ------------------------------------------------------------------ #
    def vacuum(self) -> Dict[str, int]:
        """Reclaim stale derived state from every backend that supports it.

        Delegates to each view's ``vacuum()`` (e.g. the nested backend drops
        dictionary entries for labels no longer reachable) and returns the
        reclaimed-label count per view name; views whose backend has nothing
        to vacuum are omitted.  As a side effect, persistent indexes
        poisoned by since-deleted unhashable keys are re-validated against
        their current bags (restoring ``O(|Δ|)`` index maintenance).
        """
        # The whole {mutate + append} runs under the lifecycle lock (an
        # RLock — the per-view vacuums re-enter it harmlessly), matching
        # the apply discipline: the logged vacuum lands at exactly its
        # point in the operation order and never races a close.
        with self._database.lifecycle_lock:
            self._database.vacuum_storage()
            reclaimed: Dict[str, int] = {}
            for handle in self._views.values():
                vacuum = getattr(handle.view, "vacuum", None)
                if callable(vacuum):
                    reclaimed[handle.name] = vacuum()
            if self._durability is not None:
                # Vacuum mutates derived state deterministically, so replay
                # must re-run it at the same point in the operation order.
                self._durability.log_vacuum()
        return reclaimed

    def storage_report(self) -> Mapping[str, object]:
        """Sizes and index statistics of the underlying stores.

        Each store entry also carries its mutation ``version`` counter and
        ``snapshot_freezes`` (how many distinct immutable snapshots the
        copy-on-write store actually materialized) — see
        ``docs/api.md`` ("Storage internals & complexity").  The database
        reports the read path per anonymous backend view; the facade knows
        the user-facing names, so it re-keys each ``read_path`` entry with
        the handle's ``name`` and ``strategy``.
        """
        report = dict(self._database.storage_report())
        by_backend = {id(handle.view): handle for handle in self._views.values()}
        read_path = []
        for entry in report.get("read_path", ()):
            handle = by_backend.get(entry.get("backend_id"))
            named = {
                key: value for key, value in entry.items() if key != "backend_id"
            }
            if handle is not None:
                named = {"name": handle.name, "strategy": handle.strategy, **named}
            read_path.append(named)
        report["read_path"] = read_path
        return report

    @staticmethod
    def _coerce_update(update: UpdateLike) -> Update:
        if isinstance(update, Update):
            return update
        if isinstance(update, Mapping):
            relations = {}
            for name, rows in update.items():
                if isinstance(rows, Bag):
                    relations[name] = rows
                elif isinstance(rows, Mapping):
                    # The (element, multiplicity) pairs form: negative
                    # multiplicities are deletions, so one mapping can carry
                    # a mixed delta.  A Mapping is required (rather than an
                    # iterable of pairs) because rows that happen to be
                    # 2-tuples ending in an int would otherwise be ambiguous.
                    relations[name] = Bag.from_mapping(rows)
                else:
                    relations[name] = Bag(rows)
            return Update(relations=relations)
        raise TypeError(
            f"updates must be Update objects or relation→rows mappings, "
            f"got {type(update).__name__}"
        )

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        views = ", ".join(
            f"{handle.name}:{handle.strategy}" for handle in self._views.values()
        )
        return (
            f"<Engine datasets={list(self.dataset_names())} "
            f"views=[{views}]>"
        )


#: The issue's "Engine/Session" object: a session is just an engine instance.
Session = Engine
