"""The pluggable view-backend registry.

A *backend* is one maintenance strategy: a factory building a low-level view
(`repro.ivm` classes for the built-ins), a cheap ``supports`` predicate, and
an optional cost estimator the ``auto`` planner calls.  Backends register by
name; future engines (async, sharded, remote — see ROADMAP.md) plug in with
:func:`register_backend` without touching the :class:`~repro.engine.Engine`
facade or the planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.errors import EngineError
from repro.nrc.ast import Expr

__all__ = [
    "BackendSpec",
    "BackendRegistry",
    "DEFAULT_REGISTRY",
    "register_backend",
    "get_backend",
    "backend_names",
]

#: ``build(query, database, targets=None)`` → a registered view object.
BuildFn = Callable[..., object]
#: ``supports(query)`` → can this backend maintain the query at all?
SupportsFn = Callable[[Expr], bool]
#: ``estimator(query, inputs)`` → a StrategyEstimate for the auto planner.
EstimatorFn = Callable[..., object]


def _always(expr: Expr) -> bool:
    return True


@dataclass(frozen=True)
class BackendSpec:
    """One maintenance strategy as seen by the facade and the planner.

    ``honors_targets`` declares whether the backend restricts maintenance to
    an explicit ``targets`` list; backends that derive their own update
    sources (naive re-evaluation, shredded IVM) must leave it ``False`` so
    the facade can reject — and the planner can skip — them when the caller
    pins the updatable relations.
    """

    name: str
    description: str
    build: BuildFn
    supports: SupportsFn = field(default=_always)
    estimator: Optional[EstimatorFn] = None
    honors_targets: bool = False

    def __repr__(self) -> str:
        return f"BackendSpec({self.name!r}: {self.description})"


class BackendRegistry:
    """An ordered, named collection of :class:`BackendSpec` objects.

    Registration order doubles as the planner's tie-breaking priority, so
    simpler strategies should be registered before heavier ones.
    """

    def __init__(self, specs: Iterable[BackendSpec] = ()) -> None:
        self._specs: Dict[str, BackendSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: BackendSpec, replace: bool = False) -> BackendSpec:
        if not replace and spec.name in self._specs:
            raise EngineError(f"backend {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        self._specs.pop(name, None)

    def get(self, name: str) -> BackendSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise EngineError(
                f"unknown strategy {name!r}; available: {', '.join(self.names())}"
            ) from None

    def specs(self) -> Tuple[BackendSpec, ...]:
        return tuple(self._specs.values())

    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def copy(self) -> "BackendRegistry":
        """An independent registry with the same specs (for per-engine tweaks)."""
        return BackendRegistry(self.specs())

    def __repr__(self) -> str:
        return f"BackendRegistry({', '.join(self.names())})"


#: The process-wide registry the facade uses unless given another one.
DEFAULT_REGISTRY = BackendRegistry()


def register_backend(spec: BackendSpec, replace: bool = False) -> BackendSpec:
    """Register a backend with the default registry (module-level convenience)."""
    return DEFAULT_REGISTRY.register(spec, replace=replace)


def get_backend(name: str) -> BackendSpec:
    return DEFAULT_REGISTRY.get(name)


def backend_names() -> Tuple[str, ...]:
    return DEFAULT_REGISTRY.names()
