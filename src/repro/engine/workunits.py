"""Backend-agnostic shard-apply work units: pure folds over sendable state.

A shard-apply unit is a self-contained description — *(shard data, delta
pairs, index key paths)* — rather than a closure over live engine state.
This module is everything a worker needs to execute one:

* :func:`fold_pairs` replicates :meth:`repro.bag.builder.BagBuilder.
  apply_pairs`' cancel-at-zero fold over a plain multiplicity dict;
* :func:`index_triples` performs the ``index_key_of`` projections that
  dominate index maintenance, returning ``(key, element, multiplicity)``
  triples the parent folds back via ``HashIndex.apply_keyed_pairs`` — or
  ``None`` when a key is unhashable, which the parent translates into the
  same poisoning an in-process fold would have caused;
* :func:`fold_shard_unit` composes the two: one complete work unit;
* :func:`shard_worker_loop` is the stateful process-backend worker — it
  owns a cache of adopted shard dicts keyed by ``(store key, shard)`` and
  executes units against it, so steady-state messages carry only deltas;
* :func:`run_unit_payload` is the stateless single-shot form used by the
  subinterpreter backend (and usable by any future remote executor): one
  pickled payload in, one pickled result out, no retained state.

Payload bags travel through :mod:`repro.bag.codec`'s compact binary
encoding in both directions.  The codec doubles as the **sendability
contract**: it refuses ``NaN`` (hashed by identity since CPython 3.10, so
a pickled copy would silently diverge from the parent's dict folds) and
unknown types, raising :class:`~repro.bag.codec.UnsendableValueError` —
the signal that poisons a process-backend apply back to the local path.

Everything here is module-level and importable by name, so forked workers
and pickled payloads can always resolve it.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.bag.codec import decode_pairs, encode_pairs
from repro.storage.index import IndexKeyError, index_key_of

__all__ = [
    "decode_triples",
    "encode_triples",
    "fold_pairs",
    "fold_shard_unit",
    "index_triples",
    "run_unit_payload",
    "shard_worker_loop",
]

#: One key part per equality atom: the projection path into the element.
Paths = Tuple[Tuple[int, ...], ...]
#: A keyed index delta entry: ``(index key, element, multiplicity)``.
Triple = Tuple[Tuple[Any, ...], Any, int]


# --------------------------------------------------------------------------- #
# Pure fold primitives
# --------------------------------------------------------------------------- #
def fold_pairs(data: Dict[Any, int], pairs: Iterable[Tuple[Any, int]]) -> None:
    """Fold ``(element, multiplicity)`` pairs into a multiplicity dict.

    The exact cancel-at-zero arithmetic of ``BagBuilder.apply_pairs``,
    without the builder's copy-on-write machinery — worker-side dicts are
    never shared with a frozen snapshot.
    """
    for element, multiplicity in pairs:
        updated = data.get(element, 0) + multiplicity
        if updated == 0:
            data.pop(element, None)
        else:
            data[element] = updated


def index_triples(
    pairs: Iterable[Tuple[Any, int]], paths: Paths
) -> Optional[List[Triple]]:
    """The keyed index delta for one healthy slice, or ``None`` on poison.

    Mirrors ``HashIndex._fold``'s failure behavior: the first unhashable
    key abandons the whole slice (the serial fold poisons and clears its
    buckets at that point), so a partial triple list is never returned.
    """
    triples: List[Triple] = []
    try:
        for element, multiplicity in pairs:
            triples.append((index_key_of(element, paths), element, multiplicity))
    except IndexKeyError:
        return None
    return triples


def fold_shard_unit(
    data: Dict[Any, int],
    pairs: List[Tuple[Any, int]],
    paths_list: Iterable[Paths],
) -> Dict[Paths, Optional[List[Triple]]]:
    """Execute one shard-apply unit: fold ``pairs`` into ``data`` (in place)
    and compute the keyed index deltas for every healthy slice.

    Returns the per-paths index delta summaries; ``data`` afterwards holds
    the shard's post-fold contents (the frozen result bag the parent
    adopts).
    """
    fold_pairs(data, pairs)
    return {paths: index_triples(pairs, paths) for paths in paths_list}


# --------------------------------------------------------------------------- #
# Wire encoding of index delta summaries
# --------------------------------------------------------------------------- #
def encode_triples(triples: List[Triple]) -> bytes:
    """Encode keyed triples through the bag-pair codec.

    A triple ``(key, element, m)`` rides as the pair ``((key, element), m)``
    — both components are codec values, so the summary shares the compact
    binary transport (and the sendability contract) of the bag payloads.
    """
    return encode_pairs(
        ((key, element), multiplicity) for key, element, multiplicity in triples
    )


def decode_triples(blob: bytes) -> List[Triple]:
    return [
        (key, element, multiplicity)
        for (key, element), multiplicity in decode_pairs(blob)
    ]


def _encode_summaries(
    deltas: Dict[Paths, Optional[List[Triple]]]
) -> Dict[Paths, Optional[bytes]]:
    return {
        paths: None if triples is None else encode_triples(triples)
        for paths, triples in deltas.items()
    }


# --------------------------------------------------------------------------- #
# Stateless unit execution (subinterpreters, one-shot executors)
# --------------------------------------------------------------------------- #
def run_unit_payload(payload: bytes) -> bytes:
    """Execute one fully self-contained unit: ``pickle`` in, ``pickle`` out.

    The payload is ``(data blob, pairs blob, paths list)`` — the shard's
    pre-fold contents, its partitioned delta pairs, and the healthy index
    keys — all codec-encoded.  The result is ``(folded data blob,
    {paths: triples blob | None})``.  No state survives the call, which is
    what makes it safe for executors without a sendable-cache protocol.
    """
    data_blob, pairs_blob, paths_list = pickle.loads(payload)
    data = dict(decode_pairs(data_blob))
    pairs = decode_pairs(pairs_blob)
    deltas = fold_shard_unit(data, pairs, paths_list)
    return pickle.dumps((encode_pairs(data.items()), _encode_summaries(deltas)))


# --------------------------------------------------------------------------- #
# Stateful worker (process backend)
# --------------------------------------------------------------------------- #
def shard_worker_loop(conn) -> None:
    """The process-backend worker: own shards, fold deltas, ship results.

    Runs in a forked child.  The cache maps ``(store key, shard position)``
    to the adopted multiplicity dict; the parent keeps shard→worker
    ownership stable and re-sends an ``adopt`` whenever its routing token
    bookkeeping says the worker's copy went stale, so the worker itself
    never validates freshness.  Messages:

    * ``("adopt", store_key, position, data_blob)`` — install shard state;
    * ``("apply", store_key, position, pairs_blob, paths_list)`` — fold and
      reply ``("ok", position, data_blob, {paths: triples_blob | None})``;
    * ``("drop", store_key)`` — forget every shard of one store;
    * ``("exit",)`` — terminate.

    Any per-message failure is reported as ``("error", position, repr)``
    and leaves the loop alive; the parent recovers that unit locally and
    invalidates the worker's copy of the shard.
    """
    cache: Dict[Tuple[str, int], Dict[Any, int]] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "exit":
            break
        position = -1
        try:
            if kind == "adopt":
                _, store_key, position, data_blob = message
                cache[(store_key, position)] = dict(decode_pairs(data_blob))
            elif kind == "drop":
                _, store_key = message
                for key in [key for key in cache if key[0] == store_key]:
                    del cache[key]
            elif kind == "apply":
                _, store_key, position, pairs_blob, paths_list = message
                data = cache[(store_key, position)]
                pairs = decode_pairs(pairs_blob)
                deltas = fold_shard_unit(data, pairs, paths_list)
                conn.send(
                    ("ok", position, encode_pairs(data.items()), _encode_summaries(deltas))
                )
            else:
                conn.send(("error", position, f"unknown message kind {kind!r}"))
        except Exception as error:  # noqa: BLE001 - worker must outlive bad units
            try:
                conn.send(("error", position, repr(error)))
            except (OSError, ValueError):
                break
    try:
        conn.close()
    except OSError:
        pass
