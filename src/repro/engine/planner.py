"""Cost-driven strategy planning (Section 4 as a query planner).

The paper's cost interpretation ``C[[·]]`` (Figure 5) with ``tcost`` (Lemma 3)
bounds the running time of evaluating any IncNRC+ expression.  The planner
applies it to the *maintenance* work of every registered backend:

* **naive** — re-evaluates ``h`` per update: ``tcost(C[[h]])`` plus a full
  scan of every referenced relation;
* **classic** — evaluates ``δ(h)`` per update (Proposition 4.1): its tcost
  plus a scan of the base relations that survive in the delta;
* **recursive** — evaluates the residual delta over materialized
  sub-expressions (Section 4.1) plus the (higher-order) deltas maintaining
  those materializations; base relations replaced by materializations no
  longer count toward the scan term;
* **nested** — evaluates ``δ(h^F)`` and the context-dictionary deltas over
  the shredded database (Section 5, Theorem 5).

Estimates are grounded in the *current* database instance (via
:func:`repro.cost.size.size_of`) and an assumed update batch size ``d``
(``expected_update_size``).  Following Theorem 4's reading — incrementalize
only when the delta is strictly cheaper — ``auto`` picks the cheapest
incremental backend when it beats naive re-evaluation, and naive otherwise;
ties between incremental backends break by registry order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.cost.domains import ATOM_COST, BagCost, Cost, bottom_cost, sup
from repro.cost.size import size_of
from repro.cost.tcost import tcost
from repro.cost.transform import CostContext, cost_of, dictionary_cost_of
from repro.delta.rules import delta
from repro.errors import CostModelError, EngineError, NotInFragmentError, ShreddingError
from repro.engine.plan import MaintenancePlan, StrategyEstimate
from repro.ivm.database import Database
from repro.ivm.recursive import partially_evaluate
from repro.nrc.analysis import (
    is_incremental_fragment,
    referenced_relations,
    referenced_sources,
)
from repro.nrc.ast import Expr
from repro.nrc.pretty import render
from repro.nrc.rewrite import simplify
from repro.nrc.types import BagType
from repro.shredding.context import iter_context_dicts
from repro.shredding.shred_query import shred_query

__all__ = [
    "PlanningInputs",
    "plan_view",
    "estimate_naive",
    "estimate_classic",
    "estimate_recursive",
    "estimate_nested",
]


class PlanningInputs:
    """Cost-model inputs for planning one view over a concrete database.

    Bundles the database instance statistics (relation sizes, shredded-mirror
    sizes, dictionary entry bounds) and the assumed update size ``d`` so the
    backend estimators can build :class:`~repro.cost.transform.CostContext`
    objects without re-measuring the data.
    """

    def __init__(
        self,
        query: Expr,
        database: Database,
        targets: Optional[Iterable[str]] = None,
        expected_update_size: int = 1,
    ) -> None:
        if expected_update_size < 1:
            raise EngineError("expected update size must be at least 1")
        self.query = query
        self.database = database
        self.d = expected_update_size
        self.explicit_targets = targets is not None
        self.targets: Tuple[str, ...] = tuple(
            sorted(targets) if targets is not None else sorted(referenced_relations(query))
        )
        # Measuring the instance walks every stored bag; do it once per
        # planning run, not once per estimator call.
        self._base_costs: Optional[Dict[str, BagCost]] = None
        self._shredded_costs: Optional[
            Tuple[Dict[str, BagCost], Dict[str, BagCost]]
        ] = None

    # ------------------------------------------------------------------ #
    # Cost contexts
    # ------------------------------------------------------------------ #
    def base_context(self) -> CostContext:
        """Costs of the nested relations plus ``ΔR`` symbols of size ``d``."""
        if self._base_costs is None:
            self._base_costs = {
                name: self._bag_cost(
                    self.database.relation(name), self.database.schema(name)
                )
                for name in self.database.relation_names()
            }
        relations = dict(self._base_costs)
        deltas: Dict[Tuple[str, int], BagCost] = {}
        for name in self.targets:
            if name not in relations:
                continue
            deltas[(name, 1)] = BagCost(self.d, relations[name].element)
        return CostContext(relations=relations, deltas=deltas)

    def shredded_context(self, sources: Iterable[str]) -> CostContext:
        """Costs of the shredded mirror plus delta symbols for ``sources``."""
        if self._shredded_costs is None:
            env = self.database.shredded_environment()
            self._shredded_costs = (
                {name: self._bag_cost(bag) for name, bag in env.relations.items()},
                {
                    name: self._entry_bound(dictionary)
                    for name, dictionary in env.dictionaries.items()
                },
            )
        relations = dict(self._shredded_costs[0])
        dictionaries = dict(self._shredded_costs[1])
        deltas: Dict[Tuple[str, int], BagCost] = {}
        for name in sources:
            if name in relations:
                deltas[(name, 1)] = BagCost(self.d, relations[name].element)
            elif name in dictionaries:
                deltas[(name, 1)] = BagCost(self.d, dictionaries[name].element)
        return CostContext(relations=relations, dictionaries=dictionaries, deltas=deltas)

    # ------------------------------------------------------------------ #
    # Scan terms
    # ------------------------------------------------------------------ #
    def scan_cost(self, expr: Expr, context: CostContext) -> int:
        """Tuples re-read from base sources when evaluating ``expr`` once.

        ``tcost`` bounds the output-production work (Lemma 3's lazy bound);
        this term adds the cost of reading every *base relation* the
        expression still mentions, which is what separates backends that
        re-scan the database per update from those that touch only the
        update and their own materializations.
        """
        total = 0
        for name in referenced_relations(expr):
            cost = context.relations.get(name)
            if cost is not None:
                total += tcost(cost)
        return total

    # ------------------------------------------------------------------ #
    # Measuring helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _bag_cost(bag, schema: Optional[BagType] = None) -> BagCost:
        cost = size_of(bag, schema)
        if not isinstance(cost, BagCost):  # pragma: no cover - relations are bags
            raise CostModelError("relations must measure to bag costs")
        if cost.cardinality == 0 and schema is not None:
            # Empty relations still need a usable element bound for deltas.
            return BagCost(0, bottom_cost(schema.element))
        return cost

    @staticmethod
    def _entry_bound(dictionary) -> BagCost:
        bound: Optional[Cost] = None
        for _, bag in dictionary.items():
            entry_cost = size_of(bag)
            bound = entry_cost if bound is None else sup(bound, entry_cost)
        if isinstance(bound, BagCost):
            return bound
        return BagCost(1, ATOM_COST)


# --------------------------------------------------------------------------- #
# Backend estimators (registered with the backend specs in repro.engine.backends)
# --------------------------------------------------------------------------- #
def estimate_naive(query: Expr, inputs: PlanningInputs) -> StrategyEstimate:
    """Full re-evaluation: ``tcost(C[[h]])`` plus a scan of every source."""
    try:
        context = inputs.base_context()
        bound = tcost(cost_of(query, context))
        scan = inputs.scan_cost(query, context)
    except CostModelError as exc:
        return StrategyEstimate("naive", True, reason=f"no estimate: {exc}")
    return StrategyEstimate(
        "naive", True, reason="re-evaluates the query per update", tcost=bound, scan_cost=scan
    )


def estimate_classic(query: Expr, inputs: PlanningInputs) -> StrategyEstimate:
    """First-order delta processing: ``tcost(C[[δ(h)]])`` (Proposition 4.1)."""
    if not is_incremental_fragment(query):
        return StrategyEstimate(
            "classic",
            False,
            reason="outside IncNRC+ (input-dependent sng); requires shredding",
        )
    try:
        delta_query = delta(query, inputs.targets)
        context = inputs.base_context()
        bound = tcost(cost_of(delta_query, context))
        scan = inputs.scan_cost(delta_query, context)
    except (CostModelError, NotInFragmentError) as exc:
        return StrategyEstimate("classic", True, reason=f"no estimate: {exc}")
    return StrategyEstimate(
        "classic",
        True,
        reason="evaluates δ(h) against the pre-update state",
        tcost=bound,
        scan_cost=scan,
        artifacts={"delta query": render(delta_query)},
    )


def estimate_recursive(query: Expr, inputs: PlanningInputs) -> StrategyEstimate:
    """Residual delta over materializations plus their own (cheap) deltas."""
    if not is_incremental_fragment(query):
        return StrategyEstimate(
            "recursive",
            False,
            reason="outside IncNRC+ (input-dependent sng); requires shredding",
        )
    try:
        first_order = delta(query, inputs.targets)
        residual, to_materialize = partially_evaluate(first_order, inputs.targets)
        residual = simplify(residual)
        context = inputs.base_context()
        for name, expression in to_materialize:
            context.bag_vars[name] = cost_of(expression, inputs.base_context())
        bound = tcost(cost_of(residual, context))
        scan = inputs.scan_cost(residual, context)
        for _, expression in to_materialize:
            maintenance = delta(expression, inputs.targets)
            bound += tcost(cost_of(maintenance, inputs.base_context()))
            scan += inputs.scan_cost(maintenance, context)
    except (CostModelError, NotInFragmentError) as exc:
        return StrategyEstimate("recursive", True, reason=f"no estimate: {exc}")
    return StrategyEstimate(
        "recursive",
        True,
        reason=f"materializes {len(to_materialize)} database-dependent sub-expression(s)",
        tcost=bound,
        scan_cost=scan,
        artifacts={"residual delta": render(residual)},
    )


def estimate_nested(query: Expr, inputs: PlanningInputs) -> StrategyEstimate:
    """Shredded maintenance: ``δ(h^F)`` plus the context-dictionary deltas."""
    try:
        shredded = shred_query(query)
    except ShreddingError as exc:
        return StrategyEstimate("nested", False, reason=f"cannot shred: {exc}")
    if shredded.output_type is None:
        return StrategyEstimate("nested", False, reason="unknown output type")
    try:
        sources = set(referenced_sources(shredded.flat))
        dict_expressions = [expr for _, expr in iter_context_dicts(shredded.context)]
        for expression in dict_expressions:
            sources |= set(referenced_sources(expression))
        ordered_sources = tuple(sorted(sources))
        context = inputs.shredded_context(ordered_sources)

        flat_delta = delta(shredded.flat, ordered_sources)
        bound = tcost(cost_of(flat_delta, context))
        scan = inputs.scan_cost(flat_delta, context)
        for expression in dict_expressions:
            dict_delta = delta(expression, ordered_sources)
            bound += tcost(dictionary_cost_of(dict_delta, context))
            scan += inputs.scan_cost(dict_delta, context)
    except (CostModelError, NotInFragmentError, ShreddingError) as exc:
        return StrategyEstimate("nested", True, reason=f"no estimate: {exc}")
    return StrategyEstimate(
        "nested",
        True,
        reason=f"maintains h^F and {len(dict_expressions)} context dictionary(ies)",
        tcost=bound,
        scan_cost=scan,
        artifacts={"shredded flat": render(shredded.flat)},
    )


# --------------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------------- #
def plan_view(
    query: Expr,
    database: Database,
    *,
    name: str = "<view>",
    requested: str = "auto",
    expected_update_size: int = 1,
    targets: Optional[Iterable[str]] = None,
    registry=None,
) -> MaintenancePlan:
    """Score every registered backend for ``query`` and pick a strategy.

    With ``requested="auto"`` the choice follows Theorem 4's reading: the
    cheapest incremental backend wins when strictly cheaper than naive
    re-evaluation, otherwise naive does.  An explicit ``requested`` name is
    honored as-is; the estimates are still computed so ``explain`` can show
    what the planner would have thought.
    """
    if registry is None:
        from repro.engine.registry import DEFAULT_REGISTRY

        registry = DEFAULT_REGISTRY

    inputs = PlanningInputs(query, database, targets, expected_update_size)
    estimates = []
    for spec in registry.specs():
        if inputs.explicit_targets and not spec.honors_targets:
            # A backend that derives its own update sources would refresh on
            # relations the caller pinned out — semantically a different view.
            estimates.append(
                StrategyEstimate(
                    spec.name, False, reason="does not honor an explicit targets list"
                )
            )
            continue
        if spec.estimator is None:
            estimates.append(
                StrategyEstimate(spec.name, True, reason="no cost estimator registered")
            )
            continue
        estimates.append(spec.estimator(query, inputs))

    if requested != "auto":
        if requested not in registry:
            raise EngineError(
                f"unknown strategy {requested!r}; available: {', '.join(registry.names())}"
            )
        chosen, reason = requested, "explicitly requested"
    else:
        chosen, reason = _choose(estimates)

    chosen_estimate = next((e for e in estimates if e.strategy == chosen), None)
    artifacts = dict(chosen_estimate.artifacts) if chosen_estimate is not None else {}
    # Shard-aware storage line: delta application runs as O(|Δ|/N) per-shard
    # units, and the refresh mode says how independent views are scheduled.
    shards = database.storage_shards()
    return MaintenancePlan(
        view_name=name,
        query=query,
        strategy=chosen,
        requested=requested,
        reason=reason,
        estimates=tuple(estimates),
        expected_update_size=expected_update_size,
        artifacts=artifacts,
        shards=shards,
        parallel_apply=database.refresh_mode(),
        apply_unit=f"O(|Δ|/{shards}) per shard" if shards > 1 else "O(|Δ|)",
        backend=database.execution_plan(expected_update_size),
    )


def _choose(estimates) -> Tuple[str, str]:
    """Pick the auto strategy from the per-backend estimates."""
    naive = next(
        (e for e in estimates if e.strategy == "naive" and e.eligible), None
    )
    naive_total = naive.total if naive is not None and naive.total is not None else None

    best = None
    for estimate in estimates:
        if estimate.strategy == "naive" or not estimate.eligible:
            continue
        if estimate.total is None:
            continue
        if best is None or estimate.total < best.total:
            best = estimate

    if best is not None and (naive_total is None or best.total < naive_total):
        comparison = (
            f"estimated per-update cost {best.total} < naive {naive_total}"
            if naive_total is not None
            else f"estimated per-update cost {best.total}"
        )
        return best.strategy, f"cheapest incremental backend ({comparison})"
    if naive is not None:
        if best is not None:
            return (
                "naive",
                f"no incremental backend beats re-evaluation "
                f"(best incremental {best.total} ≥ naive {naive_total})",
            )
        return "naive", "no eligible incremental backend produced an estimate"
    # Degenerate registry without a naive backend: fall back to the first
    # eligible entry so explicit registries still plan deterministically.
    for estimate in estimates:
        if estimate.eligible:
            return estimate.strategy, "fallback: first eligible backend"
    raise EngineError("no registered backend is eligible for this query")
