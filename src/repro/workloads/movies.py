"""The movies workload: the paper's running example, at any scale.

Provides

* a generator for the ``M(name, gen, dir)`` relation and for showtime data
  (``Sh(movie, loc, time)``, used by the flat example of Appendix A.1),
* the ``related`` query of Example 1 (both as a raw NRC+ AST and through the
  comprehension DSL),
* the flat ``DOz`` query of Example 8, and
* update-stream generators (insertions, deletions, mixes) with controllable
  batch size ``d``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.bag.bag import Bag
from repro.errors import WorkloadError
from repro.ivm.updates import Update, UpdateStream
from repro.nrc import ast
from repro.nrc import builders as build
from repro.nrc import predicates as preds
from repro.nrc.ast import Expr
from repro.nrc.types import BASE, BagType, tuple_of
from repro.relational import BaseRel, Project, RelSchema, ThetaJoin, Select
from repro.surface import Dataset, Record, STRING, field_types, nest

__all__ = [
    "MOVIE_TYPE",
    "MOVIE_SCHEMA",
    "MOVIE_RECORD",
    "SHOWTIME_SCHEMA",
    "PAPER_MOVIES",
    "PAPER_UPDATE",
    "FEATURED_SCHEMA",
    "featured_join_query",
    "featured_update_stream",
    "generate_movies",
    "generate_showtimes",
    "movie_update_stream",
    "movies_engine",
    "related_query",
    "related_query_dsl",
    "relb_subquery",
    "genre_selfjoin_query",
    "doz_query",
]

#: Element type of the movies relation: ⟨name, gen, dir⟩.
MOVIE_TYPE = tuple_of(BASE, BASE, BASE)
MOVIE_SCHEMA = BagType(MOVIE_TYPE)
#: Featured-genre tags ⟨gen, slot⟩: a small probe-side relation for the
#: asymmetric join of :func:`featured_join_query`.
FEATURED_SCHEMA = BagType(tuple_of(BASE, BASE))
MOVIE_RECORD = Record("Movie", field_types(name=STRING, gen=STRING, dir=STRING))
SHOWTIME_SCHEMA = RelSchema(("movie", "loc", "time"))

#: The three-movie instance of Example 1 and its single-tuple update.
PAPER_MOVIES = Bag(
    [
        ("Drive", "Drama", "Refn"),
        ("Skyfall", "Action", "Mendes"),
        ("Rush", "Action", "Howard"),
    ]
)
PAPER_UPDATE = Bag([("Jarhead", "Drama", "Mendes")])

_GENRES = ("Drama", "Action", "Comedy", "Crime", "SciFi", "Romance", "Horror", "Animation")
_DIRECTORS = tuple(f"Director{i}" for i in range(40))


def generate_movies(
    count: int,
    num_genres: int = 8,
    num_directors: int = 40,
    seed: int = 7,
) -> Bag:
    """Generate ``count`` distinct movies with skew-free genre/director draws."""
    if count < 0:
        raise WorkloadError("movie count must be non-negative")
    rng = random.Random(seed)
    genres = [_GENRES[i % len(_GENRES)] + ("" if i < len(_GENRES) else str(i)) for i in range(num_genres)]
    directors = [
        _DIRECTORS[i % len(_DIRECTORS)] + ("" if i < len(_DIRECTORS) else f"_{i}")
        for i in range(num_directors)
    ]
    movies = []
    for index in range(count):
        movies.append(
            (f"Movie{index:06d}", rng.choice(genres), rng.choice(directors))
        )
    return Bag(movies)


def generate_showtimes(movies: Bag, shows_per_movie: int = 2, num_locations: int = 12, seed: int = 11) -> Bag:
    """Generate a flat showtimes relation referencing the given movies."""
    rng = random.Random(seed)
    rows: List[Tuple[str, str, str]] = []
    for movie in movies.elements():
        name = movie[0]
        for show in range(shows_per_movie):
            location = f"Loc{rng.randrange(num_locations)}"
            time = f"{10 + rng.randrange(12)}:00"
            rows.append((name, location, time))
    return Bag(rows)


def movie_update_stream(
    num_updates: int,
    batch_size: int,
    existing: Optional[Bag] = None,
    deletion_ratio: float = 0.0,
    seed: int = 23,
    relation: str = "M",
    num_genres: int = 8,
    num_directors: int = 40,
) -> UpdateStream:
    """Generate a stream of updates of ``batch_size`` tuples each.

    A ``deletion_ratio`` fraction of each batch deletes tuples drawn from
    ``existing`` (when provided); the rest inserts fresh movies.
    """
    if batch_size < 1:
        raise WorkloadError("batch size must be at least 1")
    rng = random.Random(seed)
    existing_rows = list(existing.elements()) if existing is not None else []
    stream = UpdateStream()
    next_id = 10_000_000
    for _ in range(num_updates):
        pairs: List[Tuple[Tuple[str, str, str], int]] = []
        for position in range(batch_size):
            delete = existing_rows and rng.random() < deletion_ratio
            if delete:
                victim = existing_rows.pop(rng.randrange(len(existing_rows)))
                pairs.append((victim, -1))
            else:
                row = (
                    f"New{next_id}",
                    _GENRES[rng.randrange(num_genres) % len(_GENRES)],
                    _DIRECTORS[rng.randrange(num_directors) % len(_DIRECTORS)],
                )
                next_id += 1
                pairs.append((row, 1))
        stream.append(Update(relations={relation: Bag.from_pairs(pairs)}))
    return stream


def movies_engine(
    movies: Optional[Bag] = None,
    count: int = 300,
    seed: int = 7,
    relation: str = "M",
    expected_update_size: int = 1,
):
    """An :class:`~repro.engine.Engine` preloaded with the movies relation.

    Pass an explicit ``movies`` bag (e.g. :data:`PAPER_MOVIES`) or let the
    generator produce ``count`` synthetic movies.
    """
    from repro.engine import Engine

    engine = Engine(expected_update_size=expected_update_size)
    bag = movies if movies is not None else generate_movies(count, seed=seed)
    engine.dataset(relation, MOVIE_SCHEMA, bag)
    return engine


# --------------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------------- #
def _is_related(outer: str, inner: str) -> preds.Predicate:
    """Example 1's ``isRelated``: different movies sharing genre or director."""
    return preds.And(
        (
            preds.ne(preds.var_path(outer, 0), preds.var_path(inner, 0)),
            preds.Or(
                (
                    preds.eq(preds.var_path(outer, 1), preds.var_path(inner, 1)),
                    preds.eq(preds.var_path(outer, 2), preds.var_path(inner, 2)),
                )
            ),
        )
    )


def relb_subquery(relation: str = "M", outer_var: str = "m", inner_var: str = "m2") -> Expr:
    """``relB(m)``: names of the movies related to ``m`` (Example 1)."""
    source = ast.Relation(relation, MOVIE_SCHEMA)
    return build.for_in(
        inner_var,
        source,
        build.proj(inner_var, 0),
        condition=_is_related(outer_var, inner_var),
    )


def related_query(relation: str = "M") -> Expr:
    """The nested ``related`` query of the motivating example (raw NRC+)."""
    source = ast.Relation(relation, MOVIE_SCHEMA)
    body = build.tuple_bag(build.proj("m", 0), build.sng(relb_subquery(relation, "m", "m2")))
    return build.for_in("m", source, body)


def related_query_dsl(relation: str = "M") -> Expr:
    """The same query written through the comprehension DSL (Section 1 style)."""
    movies = Dataset(relation, MOVIE_RECORD)
    m = movies.row("m")
    m2 = movies.row("m2")
    rel_b = (
        movies.iterate(m2)
        .where(
            (m.field("name") != m2.field("name"))
            & ((m.field("gen") == m2.field("gen")) | (m.field("dir") == m2.field("dir")))
        )
        .select(m2.field("name"))
    )
    return movies.iterate(m).select(m.field("name"), nest(rel_b)).to_expr()


def genre_selfjoin_query(relation: str = "M") -> Expr:
    """A flat, selective self-join: pairs of distinct movies sharing a genre.

    ``for m in M union for m2 in M union (where m.gen = m2.gen ∧ m.name ≠
    m2.name: sng(⟨m.name, m2.name⟩))`` — the canonical equality-join shape
    whose delta the compiled pipeline turns into a hash-join (build once per
    update, probe per delta tuple), used by the compilation micro-benchmark
    and the CI smoke check.
    """
    source = ast.Relation(relation, MOVIE_SCHEMA)
    condition = preds.And(
        (
            preds.eq(preds.var_path("m", 1), preds.var_path("m2", 1)),
            preds.ne(preds.var_path("m", 0), preds.var_path("m2", 0)),
        )
    )
    inner = build.for_in(
        "m2",
        source,
        build.tuple_bag(build.proj("m", 0), build.proj("m2", 0)),
        condition=condition,
    )
    return build.for_in("m", source, inner)


def featured_join_query(featured: str = "F", movies: str = "M") -> Expr:
    """Join a small featured-picks relation against the movie catalog.

    ``for f in F union for m in M union (where m.name = f.0: sng(⟨f.1,
    m.gen⟩))`` — a selective, asymmetric equality join (movie names are
    unique) whose build side (the catalog ``M``) is large and *never updated*
    while the probe side ``F`` (⟨name, slot⟩ picks) receives a stream of
    small updates.  With ``targets=("F",)`` the delta query's only term
    probes ``M``; rebuilding its hash index per update costs ``O(|M|)``,
    probing the storage layer's persistent index costs ``O(|Δ|)`` — the
    workload of the repeated-small-update index micro-benchmark.
    """
    featured_rel = ast.Relation(featured, FEATURED_SCHEMA)
    movie_rel = ast.Relation(movies, MOVIE_SCHEMA)
    condition = preds.eq(preds.var_path("m", 0), preds.var_path("f", 0))
    inner = build.for_in(
        "m",
        movie_rel,
        build.tuple_bag(build.proj("f", 1), build.proj("m", 1)),
        condition=condition,
    )
    return build.for_in("f", featured_rel, inner)


def featured_update_stream(
    num_updates: int,
    batch_size: int = 1,
    catalog_size: int = 300,
    deletion_ratio: float = 0.0,
    seed: int = 17,
    relation: str = "F",
) -> UpdateStream:
    """Repeated small updates to the featured-picks relation.

    Each batch inserts ⟨name, slot⟩ picks naming movies from a
    :func:`generate_movies` catalog of ``catalog_size`` entries (so every
    pick joins) and, with probability ``deletion_ratio``, deletes a
    previously inserted pick instead (negative multiplicities).
    """
    if batch_size < 1:
        raise WorkloadError("batch size must be at least 1")
    rng = random.Random(seed)
    inserted: List[Tuple[str, str]] = []
    stream = UpdateStream()
    tag = 0
    for _ in range(num_updates):
        pairs: List[Tuple[Tuple[str, str], int]] = []
        for _ in range(batch_size):
            if inserted and rng.random() < deletion_ratio:
                victim = inserted.pop(rng.randrange(len(inserted)))
                pairs.append((victim, -1))
            else:
                row = (f"Movie{rng.randrange(catalog_size):06d}", f"slot{tag}")
                tag += 1
                inserted.append(row)
                pairs.append((row, 1))
        stream.append(Update(relations={relation: Bag.from_pairs(pairs)}))
    return stream


def doz_query(movies_rel: str = "Mflat", showtimes_rel: str = "Sh"):
    """Example 8's flat query: dramas playing in Oz (relational algebra).

    The join is expressed as a selection over a Cartesian product, matching
    the step-counting model of Appendix A.1 in which re-evaluating a join is
    quadratic while its delta is linear in the update.  A hash-join variant
    is available through :class:`repro.relational.ThetaJoin`.
    """
    from repro.relational import CrossProduct

    movies = BaseRel(movies_rel, RelSchema(("movie", "genre")))
    showtimes = BaseRel(showtimes_rel, SHOWTIME_SCHEMA)
    dramas = Select(movies, lambda row: row["genre"] == "Drama", "genre = Drama")
    in_oz = Select(showtimes, lambda row: row["loc"] == "Oz", "loc = Oz")
    joined = Select(
        CrossProduct(in_oz, dramas),
        lambda row: row["movie"] == row["movie_r"],
        "Sh.movie = M.movie",
    )
    return Project(joined, ("movie",))
