"""A second nested workload: a social-feed view over users and posts.

The introduction motivates IVM for collection frameworks processing nested
application data; this workload models one such application beyond the movies
example.  Given ``Users(user, city)`` and ``Posts(author, text)``, the
``feed`` view computes, for every user, the bag of posts written by people in
the same city (excluding their own) — a nested query with the same
deep-update challenge as ``related``.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.bag.bag import Bag
from repro.errors import WorkloadError
from repro.ivm.updates import Update, UpdateStream
from repro.nrc import ast
from repro.nrc import builders as build
from repro.nrc import predicates as preds
from repro.nrc.ast import Expr
from repro.nrc.types import BASE, BagType, tuple_of

__all__ = [
    "USER_TYPE",
    "USER_SCHEMA",
    "POST_TYPE",
    "POST_SCHEMA",
    "generate_users",
    "generate_posts",
    "post_update_stream",
    "social_engine",
    "feed_query",
]

#: ⟨user, city⟩
USER_TYPE = tuple_of(BASE, BASE)
USER_SCHEMA = BagType(USER_TYPE)
#: ⟨author, city, text⟩ — the author's city is denormalized into the post so
#: the feed query stays within a two-relation join.
POST_TYPE = tuple_of(BASE, BASE, BASE)
POST_SCHEMA = BagType(POST_TYPE)


def generate_users(count: int, num_cities: int = 10, seed: int = 3) -> Bag:
    """Generate ``count`` users spread over ``num_cities`` cities."""
    if count < 0:
        raise WorkloadError("user count must be non-negative")
    rng = random.Random(seed)
    return Bag((f"user{i:05d}", f"City{rng.randrange(num_cities)}") for i in range(count))


def generate_posts(users: Bag, posts_per_user: int = 3, seed: int = 13) -> Bag:
    """Generate posts authored by the given users (city denormalized)."""
    rng = random.Random(seed)
    rows: List[Tuple[str, str, str]] = []
    for user, city in users.elements():
        for index in range(posts_per_user):
            rows.append((user, city, f"post-{user}-{index}-{rng.randrange(10_000)}"))
    return Bag(rows)


def post_update_stream(
    users: Bag, num_updates: int, batch_size: int, seed: int = 17, relation: str = "Posts"
) -> UpdateStream:
    """Updates inserting fresh posts by randomly chosen existing users."""
    rng = random.Random(seed)
    user_rows = list(users.elements())
    if not user_rows:
        raise WorkloadError("cannot generate posts without users")
    stream = UpdateStream()
    counter = 0
    for _ in range(num_updates):
        rows = []
        for _ in range(batch_size):
            user, city = user_rows[rng.randrange(len(user_rows))]
            rows.append((user, city, f"newpost-{counter}"))
            counter += 1
        stream.append(Update(relations={relation: Bag(rows)}))
    return stream


def social_engine(
    num_users: int = 40,
    num_cities: int = 10,
    posts_per_user: int = 3,
    seed: int = 3,
    expected_update_size: int = 1,
):
    """An :class:`~repro.engine.Engine` preloaded with Users and Posts."""
    from repro.engine import Engine

    users = generate_users(num_users, num_cities=num_cities, seed=seed)
    posts = generate_posts(users, posts_per_user=posts_per_user)
    engine = Engine(expected_update_size=expected_update_size)
    engine.dataset("Users", USER_SCHEMA, users)
    engine.dataset("Posts", POST_SCHEMA, posts)
    return engine


def feed_query(users_rel: str = "Users", posts_rel: str = "Posts") -> Expr:
    """For every user: the posts of other users in the same city (nested)."""
    users = ast.Relation(users_rel, USER_SCHEMA)
    posts = ast.Relation(posts_rel, POST_SCHEMA)
    same_city_other_author = preds.And(
        (
            preds.eq(preds.var_path("u", 1), preds.var_path("p", 1)),
            preds.ne(preds.var_path("u", 0), preds.var_path("p", 0)),
        )
    )
    inner = build.for_in("p", posts, build.proj("p", 2), condition=same_city_other_author)
    return build.for_in("u", users, build.tuple_bag(build.proj("u", 0), build.sng(inner)))
