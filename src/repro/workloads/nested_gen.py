"""Random nested data generators.

These feed the shredding experiments (E5), the self-join workload of
Example 4 (E3) and the property tests: bags of bags with controllable
top-level cardinality, inner-bag cardinality, value skew and nesting depth.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional

from repro.bag.bag import Bag
from repro.errors import WorkloadError
from repro.ivm.updates import Update, UpdateStream
from repro.nrc.types import BASE, BagType, ProductType, Type, bag_of, tuple_of

__all__ = [
    "nested_bag_type",
    "generate_nested_bag",
    "generate_bag_of_bags",
    "bag_of_bags_engine",
    "nested_update_stream",
]


def nested_bag_type(depth: int) -> BagType:
    """The type ``Bag(⟨Base, Bag(⟨Base, …⟩)⟩)`` with the given nesting depth.

    ``depth == 1`` is a flat bag of pairs; every extra level adds one inner
    bag component.
    """
    if depth < 1:
        raise WorkloadError("nesting depth must be at least 1")
    element: Type = tuple_of(BASE, BASE)
    for _ in range(depth - 1):
        element = tuple_of(BASE, bag_of(element))
    return bag_of(element)


def generate_nested_bag(
    depth: int,
    top_cardinality: int,
    inner_cardinality: int,
    seed: int = 5,
    value_pool: int = 1000,
) -> Bag:
    """Generate a random value of :func:`nested_bag_type`'s type."""
    rng = random.Random(seed)

    def _value(level: int) -> Any:
        if level == 1:
            return (f"k{rng.randrange(value_pool)}", f"v{rng.randrange(value_pool)}")
        inner = Bag(_value(level - 1) for _ in range(inner_cardinality))
        return (f"k{rng.randrange(value_pool)}", inner)

    return Bag(_value(depth) for _ in range(top_cardinality))


def generate_bag_of_bags(
    top_cardinality: int,
    inner_cardinality: int,
    seed: int = 9,
    value_pool: int = 10_000,
) -> Bag:
    """A value of type ``Bag(Bag(Base))`` — the input shape of Example 4."""
    rng = random.Random(seed)
    return Bag(
        Bag(f"x{rng.randrange(value_pool)}" for _ in range(inner_cardinality))
        for _ in range(top_cardinality)
    )


def bag_of_bags_engine(
    top_cardinality: int,
    inner_cardinality: int,
    seed: int = 9,
    relation: str = "R",
    expected_update_size: int = 1,
):
    """An :class:`~repro.engine.Engine` preloaded with a ``Bag(Bag(Base))`` relation."""
    from repro.engine import Engine

    engine = Engine(expected_update_size=expected_update_size)
    engine.dataset(
        relation,
        bag_of(bag_of(BASE)),
        generate_bag_of_bags(top_cardinality, inner_cardinality, seed=seed),
    )
    return engine


def nested_update_stream(
    relation: str,
    num_updates: int,
    batch_size: int,
    inner_cardinality: int,
    seed: int = 31,
    value_pool: int = 10_000,
) -> UpdateStream:
    """Updates inserting fresh inner bags into a ``Bag(Bag(Base))`` relation."""
    rng = random.Random(seed)
    stream = UpdateStream()
    for _ in range(num_updates):
        bags: List[Bag] = []
        for _ in range(batch_size):
            bags.append(
                Bag(f"u{rng.randrange(value_pool)}" for _ in range(inner_cardinality))
            )
        stream.append(Update(relations={relation: Bag(bags)}))
    return stream
