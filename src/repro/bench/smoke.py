"""CI smoke check: no execution mode may ever diverge from the interpreter.

Runs one small experiment workload per maintenance strategy — the E3-style
``flatten(R) × flatten(R)`` self-join for classic/recursive/naive, the
selective genre self-join for the hash-join path, and the nested ``related``
view with relation *and* deep updates — under both execution modes
(compiled vs ``REPRO_NO_COMPILE`` interpreter), applying identical update
streams, and compares the final view contents bag-for-bag.

A second battery exercises the storage layer: equality-join views are
maintained three ways — persistent indexes (the default), compiled but
unindexed (``REPRO_NO_INDEX``, PR 2's per-evaluation rebuild), and fully
interpreted (``REPRO_NO_COMPILE``) — and all three must agree, with the
indexed leg required to have actually served probes from a persistent index.

A third battery exercises the apply path: one large relation under
interleaved base/probe-side update streams, maintained with the
indexed+builder path (the default), with the full-rebuild path
(``REPRO_NO_BUILDER`` + ``REPRO_NO_INDEX`` — the seed's full-copy unions
plus per-evaluation index rebuilds), and with the interpreter.  All three
must produce identical view contents and the indexed+builder path must beat
the full-rebuild path on wall-clock.

A fourth battery exercises **sharded stores and concurrent multi-view
refresh**: every strategy (naive/classic/recursive/nested) maintains its
view under sharded stores with thread-pool refresh (``REPRO_PARALLEL_VIEWS=2``),
under the serial single-shard escape hatch (``REPRO_SHARDS=1`` +
``REPRO_PARALLEL_VIEWS=0`` — the pre-sharding behavior), and under the
interpreter, and all three must agree bag-for-bag.  The perf half runs the
shard benchmark's serving workload (n=2000, 4 views, a reader retaining
consistent snapshots across writes) and requires the sharded+parallel
configuration to beat the serial single-shard path on wall-clock — the
committed ``benchmarks/results/shard_scale.json`` records the full sweep.

A fifth battery exercises the **read path**: the nested ``related``
workload is refreshed once with the key-footprint dictionary probes (the
default) and once with ``REPRO_NO_FOOTPRINT`` forcing the paper's
all-labels sweep.  Both must agree bag-for-bag, and the footprint leg's
probe counters must show strictly fewer dictionary probes with no
full-sweep fallback — untouched labels provably never visited.

A sixth battery exercises **execution backends**: every strategy
(naive/classic/recursive/nested) maintains its view with the shard-apply
path pinned to each available execution backend (``serial``, ``threads:2``,
``processes:2`` where ``fork`` exists, ``subinterpreters:2`` where PEP 734
exists), and all legs must agree bag-for-bag.  A final check applies
offload-sized deltas under ``processes:2`` and requires the execution
report to show the process backend actually performed applies — comparing
a silently fallen-back leg against serial would be vacuous.

Exit status is non-zero on any divergence, which is what the CI benchmark
smoke step keys on.  Run with ``python -m repro.bench.smoke``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.bag.bag import Bag
from repro.bag.builder import forced_full_copy
from repro.engine.scheduler import (
    backend_availability,
    forced_backend,
    forced_parallel_views,
)
from repro.ivm import Update
from repro.nrc import ast
from repro.nrc import builders as build
from repro.nrc.compile import forced_interpretation
from repro.nrc.types import BASE, bag_of
from repro.shredding.shred_database import input_dict_name
from repro.storage import forced_no_index, forced_shards
from repro.workloads import (
    FEATURED_SCHEMA,
    MOVIE_SCHEMA,
    bag_of_bags_engine,
    featured_join_query,
    featured_update_stream,
    generate_movies,
    genre_selfjoin_query,
    movie_update_stream,
    movies_engine,
    nested_update_stream,
    related_query,
)

__all__ = ["run_smoke", "main"]


def _flatten_selfjoin_run(strategy: str):
    def run() -> Tuple[str, Bag]:
        engine = bag_of_bags_engine(20, 4, seed=31)
        relation = ast.Relation("R", bag_of(bag_of(BASE)))
        query = ast.Product((ast.Flatten(relation), ast.Flatten(relation)))
        view = engine.view("v", query, strategy=strategy)
        engine.apply_stream(nested_update_stream("R", 3, 1, 4, seed=31))
        return view.execution, view.result()

    return run


def _genre_selfjoin_run(strategy: str):
    def run() -> Tuple[str, Bag]:
        movies = generate_movies(60, seed=41)
        engine = movies_engine(movies, expected_update_size=4)
        view = engine.view("v", genre_selfjoin_query(), strategy=strategy)
        engine.apply_stream(
            movie_update_stream(3, 4, existing=movies, deletion_ratio=0.3, seed=43)
        )
        return view.execution, view.result()

    return run


def _related_deep_run():
    def run() -> Tuple[str, Bag]:
        engine = bag_of_bags_engine(15, 3, seed=47)
        relation = ast.Relation("R", bag_of(bag_of(BASE)))
        query = build.for_in("x", relation, ast.SngVar("x"))
        view = engine.view("v", query, strategy="nested")
        dict_name = input_dict_name("R", ())
        dictionary = engine.database.shredded_environment().dictionaries[dict_name]
        labels = sorted(dictionary.support(), key=lambda label: label.render())[:2]
        engine.apply(Update(deep={dict_name: {label: Bag([f"deep-{i}"]) for i, label in enumerate(labels)}}))
        engine.apply_stream(nested_update_stream("R", 2, 1, 3, seed=53))
        return view.execution, view.result()

    return run


def _related_nested_run():
    def run() -> Tuple[str, Bag]:
        movies = generate_movies(40, seed=59)
        engine = movies_engine(movies, expected_update_size=3)
        view = engine.view("related", related_query(), strategy="nested")
        engine.apply_stream(
            movie_update_stream(3, 3, existing=movies, deletion_ratio=0.3, seed=61)
        )
        return view.execution, view.result()

    return run


def _build_checks() -> List[Tuple[str, Callable[[], Tuple[str, Bag]]]]:
    checks: List[Tuple[str, Callable[[], Tuple[str, Bag]]]] = []
    for strategy in ("naive", "classic", "recursive"):
        checks.append((f"E3 flatten self-join / {strategy}", _flatten_selfjoin_run(strategy)))
        checks.append((f"genre self-join / {strategy}", _genre_selfjoin_run(strategy)))
    checks.append(("E8 deep updates / nested", _related_deep_run()))
    checks.append(("E1 related movies / nested", _related_nested_run()))
    return checks


# --------------------------------------------------------------------------- #
# Storage-index checks: indexed vs compiled-unindexed vs interpreted
# --------------------------------------------------------------------------- #
def _genre_selfjoin_view_run(strategy: str):
    def run():
        movies = generate_movies(60, seed=41)
        engine = movies_engine(movies, expected_update_size=4)
        view = engine.view("v", genre_selfjoin_query(), strategy=strategy)
        engine.apply_stream(
            movie_update_stream(3, 4, existing=movies, deletion_ratio=0.3, seed=43)
        )
        return view

    return run


def _featured_join_view_run():
    def run():
        engine = movies_engine(generate_movies(80, seed=67), expected_update_size=2)
        engine.dataset("F", FEATURED_SCHEMA, Bag([("Movie000003", "seed0")]))
        view = engine.view(
            "featured", featured_join_query(), strategy="classic", targets=("F",)
        )
        engine.apply_stream(
            featured_update_stream(4, 2, catalog_size=80, deletion_ratio=0.25, seed=71)
        )
        return view

    return run


def _build_storage_checks():
    checks = [("storage featured join / classic", _featured_join_view_run())]
    for strategy in ("classic", "nested", "recursive"):
        checks.append(
            (f"storage genre self-join / {strategy}", _genre_selfjoin_view_run(strategy))
        )
    return checks


# --------------------------------------------------------------------------- #
# Apply-path check: indexed+builder vs full-rebuild vs interpreted
# --------------------------------------------------------------------------- #
def _apply_path_run(size: int = 800, updates: int = 10):
    """One large relation, interleaved small base- and probe-side updates.

    The catalog identity view accumulates an O(n) result from O(|Δ|) deltas
    (the builder's contribution); the featured join probes the persistent
    movie-name index over its static build side (the index's contribution).
    Returns the engine, both view results and the wall-clock seconds spent
    inside ``engine.apply``.
    """

    def run():
        movies = generate_movies(size, seed=79)
        engine = movies_engine(movies, expected_update_size=2)
        engine.dataset("F", FEATURED_SCHEMA, Bag([("Movie000001", "seed0")]))
        catalog_query = build.for_in(
            "x", ast.Relation("M", MOVIE_SCHEMA), ast.SngVar("x")
        )
        catalog = engine.view("catalog", catalog_query, strategy="classic")
        featured = engine.view(
            "featured", featured_join_query(), strategy="classic", targets=("F",)
        )
        movie_stream = list(
            movie_update_stream(
                updates, 2, existing=movies, deletion_ratio=0.25, seed=83
            )
        )
        featured_stream = list(
            featured_update_stream(
                updates, 2, catalog_size=size, deletion_ratio=0.25, seed=89
            )
        )
        elapsed = 0.0
        for movie_update, featured_update in zip(movie_stream, featured_stream):
            started = time.perf_counter()
            engine.apply(movie_update)
            engine.apply(featured_update)
            elapsed += time.perf_counter() - started
        return engine, (catalog.result(), featured.result()), elapsed

    return run


def _run_apply_check(report: dict) -> None:
    run = _apply_path_run()
    with forced_interpretation(False), forced_no_index(False), forced_full_copy(False):
        builder_engine, builder_results, builder_seconds = run()
    with forced_interpretation(False), forced_full_copy(True), forced_no_index(True):
        _, rebuild_results, rebuild_seconds = run()
    with forced_interpretation(True):
        _, interpreted_results, _ = run()
    identical = (
        builder_results == rebuild_results and builder_results == interpreted_results
    )
    faster = builder_seconds < rebuild_seconds
    store_versions = {
        entry["relation"]: entry["version"]
        for entry in builder_engine.storage_report()["nested"]["stores"]
    }
    passed = identical and faster
    report["checks"].append(
        {
            "name": "apply path / builder+indexed vs full-rebuild vs interpreted",
            "modes": "builder+indexed / full-rebuild (REPRO_NO_BUILDER+REPRO_NO_INDEX) / interpreted",
            "result_cardinality": builder_results[0].cardinality(),
            "builder_apply_seconds": builder_seconds,
            "full_rebuild_apply_seconds": rebuild_seconds,
            "builder_beats_full_rebuild": faster,
            "store_versions": store_versions,
            "identical": identical,
            "passed": passed,
        }
    )
    if not passed:
        report["divergences"] += 1


# --------------------------------------------------------------------------- #
# Sharded stores + concurrent refresh: sharded ≡ serial single-shard ≡ interpreter
# --------------------------------------------------------------------------- #
def _run_shard_checks(report: dict) -> None:
    """Every strategy under sharded+threaded refresh vs the escape hatches.

    Equivalence half: each of the four strategies maintains its view with
    sharded stores and a two-worker refresh pool, with the serial
    single-shard hatch, and with the interpreter — all three must agree.
    Perf half: the shard benchmark's serving workload (n=2000, 4 views,
    reader retaining consistent snapshots across writes) where the
    sharded+parallel configuration must beat the serial single-shard path.
    """
    equivalence_runs = [
        (f"sharded genre self-join / {strategy}", _genre_selfjoin_run(strategy))
        for strategy in ("naive", "classic", "recursive")
    ]
    equivalence_runs.append(("sharded related movies / nested", _related_nested_run()))
    for name, run in equivalence_runs:
        with forced_shards(4), forced_parallel_views(2), forced_interpretation(False):
            sharded_mode, sharded_result = run()
        with forced_shards(1), forced_parallel_views(0), forced_interpretation(False):
            serial_mode, serial_result = run()
        with forced_shards(4), forced_parallel_views(2), forced_interpretation(True):
            _, interpreted_result = run()
        identical = (
            sharded_result == serial_result and sharded_result == interpreted_result
        )
        passed = identical and sharded_mode == "compiled"
        report["checks"].append(
            {
                "name": name,
                "modes": "sharded+threads(2) / serial single-shard / interpreted",
                "result_cardinality": sharded_result.cardinality(),
                "identical": identical,
                "passed": passed,
            }
        )
        if not passed:
            report["divergences"] += 1

    from repro.bench.microbench import _best_serving_run

    serial_seconds, serial_results, _ = _best_serving_run(
        2, 1, 0, size=2000, batch=1, updates=40, views=4
    )
    sharded_seconds, sharded_results, engine = _best_serving_run(
        2, None, None, size=2000, batch=1, updates=40, views=4
    )
    _, interpreted_results, _ = _best_serving_run(
        1, None, None, size=2000, batch=1, updates=40, views=4, interpreted=True
    )
    identical = sharded_results == serial_results == interpreted_results
    faster = sharded_seconds < serial_seconds
    shard_counts = {
        entry["relation"]: entry["shards"]
        for entry in engine.storage_report()["nested"]["stores"]
    }
    passed = identical and faster
    report["checks"].append(
        {
            "name": "shard apply / sharded+parallel vs serial single-shard vs interpreted",
            "modes": "default shards + auto workers / REPRO_SHARDS=1 + REPRO_PARALLEL_VIEWS=0 / interpreted",
            "workload": "serving reads retained across writes, n=2000, 4 views",
            "serial_single_shard_median_apply_seconds": serial_seconds,
            "sharded_median_apply_seconds": sharded_seconds,
            "speedup": serial_seconds / sharded_seconds if sharded_seconds else None,
            "sharded_beats_serial_single_shard": faster,
            "store_shards": shard_counts,
            "identical": identical,
            "passed": passed,
        }
    )
    if not passed:
        report["divergences"] += 1


# --------------------------------------------------------------------------- #
# Read path: footprint-bounded nested probes vs the all-labels sweep
# --------------------------------------------------------------------------- #
def _run_read_checks(report: dict) -> None:
    """The nested workload refreshed with footprint probes and without.

    The same instance and update stream run twice: with the key-footprint
    probe path (the default) and with ``REPRO_NO_FOOTPRINT`` forcing the
    paper's all-labels sweep.  The results must agree bag-for-bag, the
    footprint leg must never have fallen back to a full sweep, every probe
    it made must be accounted for by the delta's key footprint, and its
    probe counter must be strictly smaller than the sweep's — the
    dictionary entries outside the footprint were provably never visited.
    """
    from repro.ivm.footprint import forced_no_footprint

    def run():
        movies = generate_movies(120, seed=59)
        engine = movies_engine(movies, expected_update_size=3)
        view = engine.view("related", related_query(), strategy="nested")
        engine.apply_stream(
            movie_update_stream(4, 3, existing=movies, deletion_ratio=0.3, seed=61)
        )
        probes = next(
            entry
            for entry in engine.storage_report()["read_path"]
            if "probes" in entry
        )["probes"]
        return view.result(), probes

    with forced_no_footprint(False):
        footprint_result, footprint_probes = run()
    with forced_no_footprint(True):
        sweep_result, sweep_probes = run()
    identical = footprint_result == sweep_result
    bounded = (
        footprint_probes["full_sweeps"] == 0
        and footprint_probes["footprint_sweeps"] > 0
        and footprint_probes["dict_probes"] == footprint_probes["footprint_probes"]
    )
    fewer = footprint_probes["dict_probes"] < sweep_probes["dict_probes"]
    passed = identical and bounded and fewer
    report["checks"].append(
        {
            "name": "read path / footprint probes vs all-labels sweep",
            "modes": "footprint-bounded probes / REPRO_NO_FOOTPRINT full sweep",
            "workload": "nested related view, n=120, 4 mixed updates",
            "footprint_probes": footprint_probes,
            "all_labels_probes": sweep_probes,
            "probes_bounded_by_footprint": bounded,
            "footprint_beats_sweep": fewer,
            "identical": identical,
            "passed": passed,
        }
    )
    if not passed:
        report["divergences"] += 1


# --------------------------------------------------------------------------- #
# Execution backends: serial ≡ threads ≡ processes (≡ subinterpreters)
# --------------------------------------------------------------------------- #
def _run_execution_backend_checks(report: dict) -> None:
    """Every strategy with the shard-apply path pinned to each backend.

    Equivalence half: the four strategies' views must agree bag-for-bag
    whichever execution backend applies the deltas (stores pinned to 4
    shards so the backends have shard units to schedule).  Offload half:
    offload-sized deltas under ``processes:2`` must show up in the
    execution report as process-backend applies — otherwise the process
    leg silently degraded to threads and the equivalence half proved
    nothing about the worker protocol.
    """
    availability = backend_availability()
    specs = ["serial", "threads:2"]
    if availability["processes"]["available"]:
        specs.append("processes:2")
    if availability["subinterpreters"]["available"]:
        specs.append("subinterpreters:2")

    equivalence_runs = [
        (f"backend genre self-join / {strategy}", _genre_selfjoin_run(strategy))
        for strategy in ("naive", "classic", "recursive")
    ]
    equivalence_runs.append(("backend related movies / nested", _related_nested_run()))
    for name, run in equivalence_runs:
        results = {}
        for spec in specs:
            with forced_shards(4), forced_backend(spec), forced_interpretation(False):
                _, results[spec] = run()
        baseline = results["serial"]
        identical = all(result == baseline for result in results.values())
        report["checks"].append(
            {
                "name": name,
                "modes": " / ".join(specs),
                "result_cardinality": baseline.cardinality(),
                "identical": identical,
                "passed": identical,
            }
        )
        if not identical:
            report["divergences"] += 1

    if not availability["processes"]["available"]:
        report["checks"].append(
            {
                "name": "backend offload / processes:2 applies",
                "skipped": availability["processes"]["reason"],
                "passed": True,
            }
        )
        return
    with forced_shards(4), forced_backend("processes:2"):
        movies = generate_movies(600, seed=97)
        engine = movies_engine(movies, expected_update_size=150)
        query = build.for_in("x", ast.Relation("M", MOVIE_SCHEMA), ast.SngVar("x"))
        view = engine.view("catalog", query, strategy="classic")
        try:
            engine.apply_stream(
                movie_update_stream(
                    4, 150, existing=movies, deletion_ratio=0.25, seed=101
                )
            )
            execution = engine.database.execution_report()
            result_cardinality = view.result().cardinality()
        finally:
            engine.close()
    process_applies = execution["applies"].get("processes", 0)
    fallback_applies = {
        name: count for name, count in execution["applies"].items() if name != "processes"
    }
    passed = process_applies > 0 and not fallback_applies
    report["checks"].append(
        {
            "name": "backend offload / processes:2 applies",
            "modes": "processes:2 pinned, offload-sized deltas",
            "result_cardinality": result_cardinality,
            "process_applies": process_applies,
            "fallback_applies": fallback_applies,
            "passed": passed,
        }
    )
    if not passed:
        report["divergences"] += 1


def _in_mode(interpreted: bool, run: Callable[[], Tuple[str, Bag]]) -> Tuple[str, Bag]:
    with forced_interpretation(interpreted):
        return run()


def _index_hits(view) -> int:
    return sum(entry.get("hits", 0) for entry in view.indexes())


def run_smoke() -> dict:
    """Run every check under every mode; returns the BENCH json report.

    A compile check fails when the two runs diverge *or* when the compiled
    leg did not actually run compiled — comparing the interpreter against
    itself would make the divergence check vacuous.  A storage check
    likewise requires the indexed leg to have served probes from a
    persistent index.
    """
    report = {"benchmark": "compile_smoke", "checks": [], "divergences": 0}
    for name, run in _build_checks():
        compiled_mode, compiled_result = _in_mode(False, run)
        interpreted_mode, interpreted_result = _in_mode(True, run)
        identical = compiled_result == interpreted_result
        passed = identical and compiled_mode == "compiled"
        report["checks"].append(
            {
                "name": name,
                "compiled_execution": compiled_mode,
                "interpreted_execution": interpreted_mode,
                "result_cardinality": compiled_result.cardinality(),
                "identical": identical,
                "passed": passed,
            }
        )
        if not passed:
            report["divergences"] += 1
    for name, run in _build_storage_checks():
        with forced_interpretation(False), forced_no_index(False):
            indexed_view = run()
        with forced_interpretation(False), forced_no_index(True):
            unindexed_view = run()
        with forced_interpretation(True):
            interpreted_view = run()
        indexed_result = indexed_view.result()
        identical = (
            indexed_result == unindexed_view.result()
            and indexed_result == interpreted_view.result()
        )
        hits = _index_hits(indexed_view)
        passed = identical and indexed_view.execution == "compiled" and hits > 0
        report["checks"].append(
            {
                "name": name,
                "modes": "indexed / compiled-unindexed / interpreted",
                "result_cardinality": indexed_result.cardinality(),
                "persistent_index_hits": hits,
                "identical": identical,
                "passed": passed,
            }
        )
        if not passed:
            report["divergences"] += 1
    _run_apply_check(report)
    _run_shard_checks(report)
    _run_read_checks(report)
    _run_execution_backend_checks(report)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    report = run_smoke()
    print(json.dumps(report, indent=2))
    if report["divergences"]:
        print(
            f"FAIL: {report['divergences']} compiled-vs-interpreted divergence(s)",
            file=sys.stderr,
        )
        return 1
    print("OK: compiled and interpreted maintenance agree on every check", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
