"""Micro-benchmark: compiled vs interpreted update latency (BENCH json).

Maintains the selective genre self-join (an equality join whose delta the
compiled pipeline turns into a hash-join) with the classic first-order
strategy, twice over identical data and update streams: once with the
compiled pipeline (the default) and once with the ``REPRO_NO_COMPILE``
escape hatch forcing the interpreter.  Reports total and mean per-update
wall-clock seconds for both and the resulting speedup, and verifies that
both runs produced identical view contents.

Run with ``python -m repro.bench.microbench``; the JSON result is written to
``benchmarks/results/compile_selfjoin.json`` by default (the committed copy
is regenerated from exactly this command).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.nrc.compile import forced_interpretation
from repro.workloads import (
    generate_movies,
    genre_selfjoin_query,
    movie_update_stream,
    movies_engine,
)

__all__ = ["run_selfjoin_latency", "main"]


def _run_once(size: int, batch: int, updates: int, interpreted: bool):
    """One maintenance run; returns ``(view_handle, final_result)``."""
    with forced_interpretation(interpreted):
        engine = movies_engine(generate_movies(size, seed=7), expected_update_size=batch)
        view = engine.view("selfjoin", genre_selfjoin_query(), strategy="classic")
        engine.apply_stream(movie_update_stream(updates, batch, seed=13))
        return view, view.result()


def run_selfjoin_latency(size: int = 600, batch: int = 8, updates: int = 10) -> dict:
    """Measure the selective self-join's update latency under both modes."""
    interpreted_view, interpreted_result = _run_once(size, batch, updates, interpreted=True)
    compiled_view, compiled_result = _run_once(size, batch, updates, interpreted=False)
    if compiled_result != interpreted_result:
        raise AssertionError(
            "compiled and interpreted maintenance diverged on the self-join benchmark"
        )

    interpreted_seconds = interpreted_view.stats.total_update_seconds
    compiled_seconds = compiled_view.stats.total_update_seconds
    return {
        "benchmark": "compile_selfjoin_update_latency",
        "workload": "genre self-join (equality join, selective), classic strategy",
        "n": size,
        "d": batch,
        "updates": updates,
        "interpreted": {
            "execution": interpreted_view.execution,
            "total_update_seconds": interpreted_seconds,
            "mean_update_seconds": interpreted_seconds / updates,
            "mean_update_operations": interpreted_view.stats.mean_update_operations,
        },
        "compiled": {
            "execution": compiled_view.execution,
            "total_update_seconds": compiled_seconds,
            "mean_update_seconds": compiled_seconds / updates,
            "mean_update_operations": compiled_view.stats.mean_update_operations,
        },
        "speedup": (interpreted_seconds / compiled_seconds) if compiled_seconds else None,
        "results_identical": True,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compiled-vs-interpreted update-latency micro-benchmark"
    )
    parser.add_argument("--size", type=int, default=600, help="base relation cardinality n")
    parser.add_argument("--batch", type=int, default=8, help="update batch size d")
    parser.add_argument("--updates", type=int, default=10, help="number of update batches")
    parser.add_argument(
        "--output",
        default="benchmarks/results/compile_selfjoin.json",
        help="path for the BENCH json ('-' prints to stdout only)",
    )
    args = parser.parse_args(argv)

    result = run_selfjoin_latency(args.size, args.batch, args.updates)
    rendered = json.dumps(result, indent=2, sort_keys=False)
    print(rendered)
    if args.output != "-":
        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
