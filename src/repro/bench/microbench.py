"""Micro-benchmarks: compiled, indexed, O(|Δ|)-apply, shard, serve, read, durability and replication latency (BENCH json).

Nine benchmarks share this CLI:

* ``--benchmark compile`` (the default) maintains the selective genre
  self-join with the classic first-order strategy, once with the compiled
  pipeline and once with the ``REPRO_NO_COMPILE`` escape hatch forcing the
  interpreter — PR 2's measurement.
* ``--benchmark index`` maintains the asymmetric featured-genre join
  (:func:`repro.workloads.featured_join_query`) under a stream of repeated
  small probe-side updates, once with the storage layer's persistent indexes
  (the default) and once with the ``REPRO_NO_INDEX`` escape hatch forcing
  the compiled pipeline's per-update index rebuild.  The dominant per-update
  cost drops from ``O(|build side|)`` to ``O(|Δ|)``.
* ``--benchmark apply`` measures **update application** itself: one large
  relation under a stream of small mixed insert/delete updates, once with
  the transient-builder layer (the default) and once with the
  ``REPRO_NO_BUILDER`` escape hatch forcing the seed's full-copy
  ``Bag.union`` chains.  Two measurements are reported per size: the
  *apply path* (snapshot read, store refresh, index maintenance, view-result
  accumulation — exactly the dict rebuilds the seed paid ``O(|DB|)`` for)
  and the *end-to-end* ``engine.apply`` latency with a maintained identity
  view.  A size sweep shows the builder path near-flat in ``|DB|`` while the
  full-copy path grows linearly.
* ``--benchmark shard`` measures **multi-view apply under concurrent
  readers**: one relation per view, four delta-proportional views, and a
  serving session that retains a consistent snapshot-environment pair across
  every write (the ROADMAP's serve-while-writing scenario).  The retained
  snapshots force the store's copy-on-write on every update: the serial
  single-shard escape hatch (``REPRO_SHARDS=1`` + ``REPRO_PARALLEL_VIEWS=0``,
  the pre-PR-5 behavior) re-copies each whole relation dict — ``O(|DB|)``
  per write — while sharded stores un-share only the touched shards
  (``O(touched · |DB|/N)``) and the scheduler shares one snapshot-frozen
  environment family across all views.  Sweeps over shard count, worker
  count and database size show apply latency improving with shard count;
  worker counts > 1 document the thread-pool dispatch cost on single-CPU
  hosts (the GIL serializes pure-Python refreshes, so overlap only pays on
  multi-core machines).
* ``--benchmark cores`` measures **execution-backend apply scaling**: one
  large sharded relation under a stream of large mixed updates, applied
  once per execution backend (``serial``, ``threads:2`` and a
  ``processes:N`` worker sweep — plus ``subinterpreters`` where PEP 734 is
  available).  Every leg must produce bit-identical view results *and*
  storage reports (contents, index state and counters), proving the
  backends interchangeable; the per-leg apply latencies and throughputs
  show how shard-apply work units scale across worker processes.  The
  report records ``host.cpus`` — on a single-CPU host the worker sweep
  documents IPC/serialization overhead rather than speedup, and says so.
* ``--benchmark serve`` measures the **serving layer** end to end: a live
  :class:`~repro.serve.ReproServer` stormed by concurrent synchronous
  writers while readers poll a maintained view, sweeping writer count ×
  batch size.  Reported p50/p99 apply and read latencies are
  client-observed wall times through the full HTTP + single-writer ingest
  queue + engine stack; the run verifies no accepted update was lost.
* ``--benchmark read`` measures the **delta-bounded read path**: a
  retained-reader sweep over shard count × result size (the reader keeps
  every snapshot, so per-update apply latency is the result store's
  copy-on-write — whole-dict at one shard, dirty shards only at ``N``,
  and must improve monotonically with shard count); the nested view's
  footprint-bounded dictionary probes against the ``REPRO_NO_FOOTPRINT``
  all-labels sweep with the probe counters committed as proof; and
  client-observed p50/p99 serve-read latency for full, paged
  (``limit``/``offset``) and ETag-304 reads, with a paged ≡ full
  differential check.
* ``--benchmark durability`` measures the **durability tax**: per-apply
  overhead of the write-ahead log under each fsync policy (``off`` /
  ``batch`` / ``always``) against the in-memory engine, checkpoint write
  time against database size, and cold-start recovery time against WAL
  tail length (with a checkpointed leg proving the tail — not the
  history — is what recovery pays for).  See ``docs/durability.md``.
* ``--benchmark replication`` measures **WAL-shipping replication** over
  live primary/replica HTTP pairs: replica lag at acknowledgement time as
  the ingest rate sweeps over batch size (plus post-stream catch-up
  time), failover time-to-writable (kill the primary, ``POST /promote``,
  time until the replica acknowledges its first write), and
  client-observed follower-read p50/p99 against the primary's — with a
  follower ≡ primary read-result differential check.  See
  ``docs/replication.md``.

All of them verify that the compared runs produced identical contents.
JSON results are written to ``benchmarks/results/compile_selfjoin.json`` /
``benchmarks/results/storage_index.json`` /
``benchmarks/results/update_apply.json`` /
``benchmarks/results/shard_scale.json`` /
``benchmarks/results/core_scale.json`` /
``benchmarks/results/serve_latency.json`` /
``benchmarks/results/read_path.json`` /
``benchmarks/results/durability.json`` /
``benchmarks/results/replication.json`` by default (the committed copies
are regenerated from exactly these commands).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional, Sequence

from repro.bag.bag import Bag
from repro.bag.builder import BagBuilder, forced_full_copy
from repro.engine.scheduler import (
    backend_availability,
    forced_backend,
    forced_parallel_views,
)
from repro.ivm.updates import Update
from repro.nrc import ast
from repro.nrc import builders as build
from repro.nrc.compile import forced_interpretation
from repro.storage import RelationStore, forced_no_index, forced_shards, resolve_shard_count
from repro.workloads import (
    FEATURED_SCHEMA,
    MOVIE_SCHEMA,
    featured_join_query,
    featured_update_stream,
    generate_movies,
    genre_selfjoin_query,
    movie_update_stream,
    movies_engine,
)

__all__ = [
    "run_selfjoin_latency",
    "run_index_latency",
    "run_apply_latency",
    "run_shard_scale",
    "run_core_scale",
    "run_serve_latency",
    "run_read_latency",
    "run_durability",
    "main",
]


def _run_once(size: int, batch: int, updates: int, interpreted: bool):
    """One maintenance run; returns ``(view_handle, final_result)``.

    Persistent indexes are disabled for *both* legs: the interpreter cannot
    use them, so leaving them on would attribute the storage layer's gains
    to compilation — ``run_index_latency`` isolates that contribution.
    """
    with forced_interpretation(interpreted), forced_no_index(True):
        engine = movies_engine(generate_movies(size, seed=7), expected_update_size=batch)
        view = engine.view("selfjoin", genre_selfjoin_query(), strategy="classic")
        engine.apply_stream(movie_update_stream(updates, batch, seed=13))
        return view, view.result()


def run_selfjoin_latency(size: int = 600, batch: int = 8, updates: int = 10) -> dict:
    """Measure the selective self-join's update latency under both modes."""
    interpreted_view, interpreted_result = _run_once(size, batch, updates, interpreted=True)
    compiled_view, compiled_result = _run_once(size, batch, updates, interpreted=False)
    if compiled_result != interpreted_result:
        raise AssertionError(
            "compiled and interpreted maintenance diverged on the self-join benchmark"
        )

    interpreted_seconds = interpreted_view.stats.total_update_seconds
    compiled_seconds = compiled_view.stats.total_update_seconds
    return {
        "benchmark": "compile_selfjoin_update_latency",
        "workload": "genre self-join (equality join, selective), classic strategy",
        "n": size,
        "d": batch,
        "updates": updates,
        "interpreted": {
            "execution": interpreted_view.execution,
            "total_update_seconds": interpreted_seconds,
            "mean_update_seconds": interpreted_seconds / updates,
            "mean_update_operations": interpreted_view.stats.mean_update_operations,
        },
        "compiled": {
            "execution": compiled_view.execution,
            "total_update_seconds": compiled_seconds,
            "mean_update_seconds": compiled_seconds / updates,
            "mean_update_operations": compiled_view.stats.mean_update_operations,
        },
        "speedup": (interpreted_seconds / compiled_seconds) if compiled_seconds else None,
        "results_identical": True,
    }


def _index_run(size: int, batch: int, updates: int, no_index: bool):
    """One maintenance run; returns ``(view, final_result, apply_seconds)``.

    Timed end-to-end around ``apply_stream`` so the measurement charges the
    indexed run for its own index maintenance, not just the delta queries.
    """
    with forced_no_index(no_index):
        engine = movies_engine(
            generate_movies(size, seed=7), expected_update_size=batch
        )
        engine.dataset(
            "F", FEATURED_SCHEMA, Bag([("Movie000000", "seed0"), ("Movie000001", "seed1")])
        )
        view = engine.view(
            "featured", featured_join_query(), strategy="classic", targets=("F",)
        )
        stream = featured_update_stream(
            updates, batch, catalog_size=size, deletion_ratio=0.25, seed=13
        )
        started = time.perf_counter()
        engine.apply_stream(stream)
        elapsed = time.perf_counter() - started
        return view, view.result(), elapsed


def run_index_latency(size: int = 2000, batch: int = 2, updates: int = 30) -> dict:
    """Measure repeated-small-update latency with and without persistent indexes."""
    rebuild_view, rebuild_result, rebuild_seconds = _index_run(
        size, batch, updates, no_index=True
    )
    indexed_view, indexed_result, indexed_seconds = _index_run(
        size, batch, updates, no_index=False
    )
    if indexed_result != rebuild_result:
        raise AssertionError(
            "indexed and per-update-rebuild maintenance diverged on the featured-join benchmark"
        )
    index_state = [dict(entry) for entry in indexed_view.indexes()]
    if not any(entry.get("hits", 0) for entry in index_state):
        raise AssertionError(
            "the indexed run never probed a persistent index — measurement is vacuous"
        )
    for entry in index_state:
        entry["key_paths"] = [list(path) for path in entry["key_paths"]]
    return {
        "benchmark": "storage_index_update_latency",
        "workload": (
            "featured-picks join on movie name (static build side M, "
            "probe-side updates to F), classic strategy, targets=(F,)"
        ),
        "n": size,
        "d": batch,
        "updates": updates,
        "rebuild_per_update": {
            "execution": rebuild_view.execution,
            "total_apply_seconds": rebuild_seconds,
            "mean_apply_seconds": rebuild_seconds / updates,
            "mean_update_operations": rebuild_view.stats.mean_update_operations,
        },
        "persistent_index": {
            "execution": indexed_view.execution,
            "total_apply_seconds": indexed_seconds,
            "mean_apply_seconds": indexed_seconds / updates,
            "mean_update_operations": indexed_view.stats.mean_update_operations,
            "indexes": index_state,
        },
        "speedup": (rebuild_seconds / indexed_seconds) if indexed_seconds else None,
        "results_identical": True,
    }


# --------------------------------------------------------------------------- #
# --benchmark apply: O(|Δ|) update application vs the seed full-copy path
# --------------------------------------------------------------------------- #
def _catalog_query(relation: str = "M"):
    """Identity view ``for x in M union sng(x)`` — its delta is exactly ΔM,
    so every per-update cost beyond O(|Δ|) is apply-path overhead."""
    return build.for_in("x", ast.Relation(relation, MOVIE_SCHEMA), ast.SngVar("x"))


def _apply_path_run(size: int, batch: int, updates: int, full_copy: bool):
    """Time the apply path in isolation: the three dict rebuilds of the seed.

    Uses the storage/builder primitives exactly as ``Database.apply_update``
    does per update: read the pre-update snapshot (what building the
    evaluation environment costs), fold the delta into the relation store
    (bag + persistent index), into the shredded flat mirror, and into a
    materialized identity-view result.  The snapshot is released before the
    mutation, as in the real flow (per-update environments die before the
    database writes).  One warm-up update runs untimed so the one-off
    copy-on-write un-sharing of the initial bag is not charged to the steady
    state.
    """
    with forced_full_copy(full_copy):
        movies = generate_movies(size, seed=7)
        store = RelationStore("M", movies)
        store.ensure_index(((1,),))  # genre index, maintained per delta
        flat_store = RelationStore("M__F", movies)
        result = BagBuilder.from_bag(store.bag)
        stream = list(
            movie_update_stream(
                updates + 1, batch, existing=movies, deletion_ratio=0.25, seed=13
            )
        )
        latencies = []
        for position, update in enumerate(stream):
            delta = update.relations["M"]
            started = time.perf_counter()
            snapshot = store.bag
            del snapshot
            store.apply_delta(delta)
            flat_store.apply_delta(delta)
            result.apply_bag(delta)
            if position > 0:  # skip the warm-up update
                latencies.append(time.perf_counter() - started)
        return store, result.freeze(), latencies


def _apply_engine_run(size: int, batch: int, updates: int, full_copy: bool):
    """End-to-end ``engine.apply`` latency with a maintained identity view."""
    with forced_full_copy(full_copy):
        movies = generate_movies(size, seed=7)
        engine = movies_engine(movies, expected_update_size=batch)
        view = engine.view("catalog", _catalog_query(), strategy="classic")
        stream = list(
            movie_update_stream(
                updates + 1, batch, existing=movies, deletion_ratio=0.25, seed=13
            )
        )
        latencies = []
        for position, update in enumerate(stream):
            started = time.perf_counter()
            engine.apply(update)
            if position > 0:  # skip the warm-up update
                latencies.append(time.perf_counter() - started)
        return engine, view.result(), latencies


def _latency_summary(latencies) -> dict:
    ordered = sorted(latencies)
    return {
        "mean_seconds": sum(ordered) / len(ordered),
        "median_seconds": ordered[len(ordered) // 2],
        "total_seconds": sum(ordered),
    }


def run_apply_latency(
    size: int = 2000,
    batch: int = 1,
    updates: int = 60,
    sweep: Sequence[int] = (500, 1000, 2000, 4000, 8000),
) -> dict:
    """Measure per-update application latency, builder vs seed full-copy.

    The headline numbers are the *apply-path* latencies at ``size`` — the
    store refresh, index maintenance and view-result accumulation this PR
    made O(|Δ|) — plus an end-to-end ``engine.apply`` comparison and a size
    sweep demonstrating near-flat growth in ``|DB|`` for fixed ``|Δ|``.
    """
    sizes = sorted(set(list(sweep) + [size]))
    sweep_report = []
    headline = None
    for n in sizes:
        b_store, b_result, b_lat = _apply_path_run(n, batch, updates, full_copy=False)
        f_store, f_result, f_lat = _apply_path_run(n, batch, updates, full_copy=True)
        if b_result != f_result or b_store.bag != f_store.bag:
            raise AssertionError(
                "builder and full-copy apply paths diverged at n=%d" % n
            )
        builder = _latency_summary(b_lat)
        full = _latency_summary(f_lat)
        entry = {
            "n": n,
            "builder": builder,
            "full_copy": full,
            "speedup": full["mean_seconds"] / builder["mean_seconds"],
            "store": {
                "version": b_store.version,
                "snapshot_freezes": b_store.snapshot_freezes,
            },
        }
        sweep_report.append(entry)
        if n == size:
            headline = entry

    engine_b, result_b, lat_b = _apply_engine_run(size, batch, updates, full_copy=False)
    engine_f, result_f, lat_f = _apply_engine_run(size, batch, updates, full_copy=True)
    if result_b != result_f:
        raise AssertionError("builder and full-copy engine runs diverged")
    end_to_end = {
        "n": size,
        "builder": _latency_summary(lat_b),
        "full_copy": _latency_summary(lat_f),
    }
    end_to_end["speedup"] = (
        end_to_end["full_copy"]["mean_seconds"] / end_to_end["builder"]["mean_seconds"]
    )

    smallest, largest = sweep_report[0], sweep_report[-1]
    flatness = (
        largest["builder"]["mean_seconds"] / smallest["builder"]["mean_seconds"]
    )
    growth = largest["n"] / smallest["n"]
    nested_stores = engine_b.storage_report()["nested"]["stores"]
    return {
        "benchmark": "update_apply_latency",
        "workload": (
            "one large flat relation (movies), stream of small mixed "
            "insert/delete updates (d=%d), genre index maintained per delta, "
            "identity-view result accumulation" % batch
        ),
        "n": size,
        "d": batch,
        "updates": updates,
        "apply_path": headline,
        "end_to_end_engine_apply": end_to_end,
        "size_sweep": sweep_report,
        "builder_flatness": {
            "db_growth_factor": growth,
            "builder_latency_growth_factor": flatness,
            "full_copy_latency_growth_factor": (
                largest["full_copy"]["mean_seconds"]
                / smallest["full_copy"]["mean_seconds"]
            ),
        },
        "storage_report_nested_stores": nested_stores,
        "results_identical": True,
    }


# --------------------------------------------------------------------------- #
# --benchmark shard: multi-view apply under concurrent readers
# --------------------------------------------------------------------------- #
def serving_apply_run(
    shards: Optional[int],
    workers: Optional[int],
    size: int = 2000,
    batch: int = 1,
    updates: int = 80,
    views: int = 4,
    interpreted: bool = False,
):
    """The shard benchmark's serving workload; also reused by the CI smoke check.

    One ``size``-row relation per view, one delta-proportional identity view
    over each (classic and recursive strategies alternating — fully
    independent views, the shape concurrent refresh targets), and a serving
    session that retains a consistent environment pair (nested + shredded
    mirror — what a read replica answers queries from) across every write.
    Each round applies one combined update touching all relations, timed
    end-to-end through ``engine.apply``.  Returns
    ``(median_apply_seconds, results, engine)``.

    The retained snapshots are what expose the serial single-shard path's
    O(|DB|) term: every write must copy-on-write each touched relation's
    whole dict (nested store and flat mirror both), while sharded stores
    un-share only the touched shards.  The timed views are deliberately
    delta-proportional (O(|Δ|) refreshes): a naive or intensional-nested
    view would add an O(|DB|) refresh term of its own on *both* legs and
    mask the apply-path signal this benchmark isolates.  Strategy
    equivalence across all four backends is the smoke check's separate
    battery.
    """
    views = max(1, views)
    strategies = ("classic", "recursive")
    with forced_shards(shards), forced_parallel_views(workers), forced_interpretation(
        interpreted
    ):
        engine = movies_engine(generate_movies(size, seed=7), expected_update_size=batch)
        names = ["M"] + ["M%d" % position for position in range(1, views)]
        streams = []
        handles = []
        for position, name in enumerate(names):
            # Streams derive from the generated bag, not the stored relation:
            # store iteration order is partitioning-dependent and must not
            # leak into the random victim selection.
            rows = generate_movies(size, seed=7 + position)
            if position > 0:
                engine.dataset(name, MOVIE_SCHEMA, rows)
            streams.append(
                list(
                    movie_update_stream(
                        updates + 3,
                        batch,
                        existing=rows,
                        deletion_ratio=0.25,
                        seed=13 + position,
                        relation=name,
                    )
                )
            )
            query = build.for_in("x", ast.Relation(name, MOVIE_SCHEMA), ast.SngVar("x"))
            handles.append(
                engine.view(
                    "catalog_%s" % name,
                    query,
                    strategy=strategies[position % len(strategies)],
                )
            )
        database = engine.database
        reader = None
        latencies = []
        for round_ in range(updates + 3):
            # The serving reader: holds the latest consistent snapshot pair
            # across the write (and is refreshed after it, like a session
            # cache).  Without sharding, this retention forces a full-dict
            # copy-on-write in every store the write touches.
            reader = (database.environment(), database.shredded_environment())
            combined = Update(
                relations={
                    name: streams[position][round_].relations[name]
                    for position, name in enumerate(names)
                }
            )
            started = time.perf_counter()
            engine.apply(combined)
            elapsed = time.perf_counter() - started
            if round_ > 2:  # warm-up: first rounds pay one-off COW un-sharing
                latencies.append(elapsed)
        del reader
        latencies.sort()
        results = tuple(handle.result() for handle in handles)
        return latencies[len(latencies) // 2], results, engine


def _best_serving_run(trials: int, *args, **kwargs):
    """Best-of-``trials`` median apply latency for one configuration.

    The host's clock speed drifts between runs (shared single-CPU boxes);
    the *minimum* of per-run medians is the standard noise-robust estimator
    (external load only ever adds time).  Results are also checked identical
    across trials.
    """
    best_seconds = None
    results = None
    engine = None
    for _ in range(max(1, trials)):
        seconds, trial_results, trial_engine = serving_apply_run(*args, **kwargs)
        if results is None:
            results, engine = trial_results, trial_engine
        elif trial_results != results:
            raise AssertionError("serving workload diverged between identical trials")
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return best_seconds, results, engine


def run_shard_scale(
    size: int = 2000,
    batch: int = 1,
    updates: int = 60,
    views: int = 4,
    trials: int = 3,
    shard_sweep: Sequence[int] = (1, 2, 4, 8, 16),
    worker_sweep: Sequence[int] = (0, 1, 2),
    size_sweep: Sequence[int] = (500, 2000, 8000),
) -> dict:
    """Measure multi-view apply latency across shard count, workers and size.

    The headline compares the default configuration (``REPRO_SHARDS``
    default, auto workers) against the serial single-shard escape hatch
    (``REPRO_SHARDS=1`` + ``REPRO_PARALLEL_VIEWS=0`` — the pre-sharding
    behavior) on the same serving workload, and verifies every configuration
    produces bit-identical view results, including against the interpreter.
    """
    serial_seconds, serial_results, _ = _best_serving_run(
        trials, 1, 0, size=size, batch=batch, updates=updates, views=views
    )
    # Resolved under the same un-pinned hatch the "default" legs run with:
    # forced_shards(None) pops REPRO_SHARDS, so an ambient setting must not
    # leak into the label of a configuration that never used it.
    with forced_shards(None):
        default_shards = resolve_shard_count(None)
    default_seconds, default_results, engine = _best_serving_run(
        trials, None, None, size=size, batch=batch, updates=updates, views=views
    )
    _, interpreted_results, _ = serving_apply_run(
        None, None, size=size, batch=batch, updates=updates, views=views, interpreted=True
    )
    if default_results != serial_results or default_results != interpreted_results:
        raise AssertionError(
            "sharded, serial single-shard and interpreted runs diverged on the shard benchmark"
        )

    shard_rows = []
    for shards in shard_sweep:
        seconds, results, _ = _best_serving_run(
            trials, shards, None, size=size, batch=batch, updates=updates, views=views
        )
        if results != serial_results:
            raise AssertionError(f"sharded run diverged at shards={shards}")
        shard_rows.append(
            {
                "shards": shards,
                "median_apply_seconds": seconds,
                "speedup_vs_serial_single_shard": serial_seconds / seconds,
            }
        )

    worker_rows = []
    for workers in worker_sweep:
        seconds, results, _ = _best_serving_run(
            trials, None, workers, size=size, batch=batch, updates=updates, views=views
        )
        if results != serial_results:
            raise AssertionError(f"parallel run diverged at workers={workers}")
        worker_rows.append(
            {
                "workers": workers,
                "mode": "serial-legacy" if workers == 0 else (
                    "shared-snapshot inline" if workers == 1 else f"threads({workers})"
                ),
                "median_apply_seconds": seconds,
                "speedup_vs_serial_single_shard": serial_seconds / seconds,
            }
        )

    size_rows = []
    for n in size_sweep:
        base_seconds, base_results, _ = _best_serving_run(
            trials, 1, 0, size=n, batch=batch, updates=updates, views=views
        )
        shard_seconds, shard_results, _ = _best_serving_run(
            trials, None, None, size=n, batch=batch, updates=updates, views=views
        )
        if base_results != shard_results:
            raise AssertionError(f"sharded run diverged at n={n}")
        size_rows.append(
            {
                "n": n,
                "serial_single_shard_median_seconds": base_seconds,
                "sharded_median_seconds": shard_seconds,
                "speedup": base_seconds / shard_seconds,
            }
        )

    view_rows = []
    for view_count in (1, 2, views):
        base_seconds, _, _ = _best_serving_run(
            trials, 1, 0, size=size, batch=batch, updates=updates, views=view_count
        )
        shard_seconds, _, _ = _best_serving_run(
            trials, None, None, size=size, batch=batch, updates=updates, views=view_count
        )
        view_rows.append(
            {
                "views": view_count,
                "serial_single_shard_median_seconds": base_seconds,
                "sharded_median_seconds": shard_seconds,
                "speedup": base_seconds / shard_seconds,
            }
        )

    report = engine.storage_report()
    nested_stores = {
        entry["relation"]: {
            "shards": entry["shards"],
            "version": entry["version"],
            "snapshot_freezes": entry["snapshot_freezes"],
        }
        for entry in report["nested"]["stores"]
    }
    return {
        "benchmark": "shard_scale_multi_view_apply",
        "workload": (
            "one %d-row relation per view, %d delta-proportional identity views "
            "(classic/recursive alternating), combined updates touching every "
            "relation (d=%d per relation) with a reader session retaining a "
            "consistent environment pair across every write" % (size, views, batch)
        ),
        "n": size,
        "d": batch,
        "updates": updates,
        "views": views,
        "default_shards": default_shards,
        "serial_single_shard": {
            "config": "REPRO_SHARDS=1 REPRO_PARALLEL_VIEWS=0 (pre-sharding behavior)",
            "median_apply_seconds": serial_seconds,
        },
        "sharded_parallel": {
            "config": "default shards, auto workers",
            "median_apply_seconds": default_seconds,
            "speedup_vs_serial_single_shard": serial_seconds / default_seconds,
        },
        "shard_sweep": shard_rows,
        "worker_sweep": worker_rows,
        "size_sweep": size_rows,
        "view_sweep": view_rows,
        "storage_report_nested_stores": nested_stores,
        "results_identical": True,
        "note": (
            "single-CPU host: worker counts > 1 add thread dispatch without "
            "overlap (GIL); the shard-count gains come from per-shard "
            "copy-on-write under retained reader snapshots plus the shared "
            "snapshot-environment refresh"
        ),
    }


# --------------------------------------------------------------------------- #
# --benchmark cores: execution-backend apply scaling (serial/threads/processes)
# --------------------------------------------------------------------------- #
def _backend_apply_run(
    spec: str, size: int, batch: int, updates: int, shards: int
):
    """One apply run pinned to an execution backend; returns everything
    needed to prove the legs interchangeable: per-update latencies, the
    final view result, the storage report (contents, index state *and*
    counters — version stamps, ``deltas_applied``, snapshot freezes), and
    the execution report (which is the one part legitimately allowed to
    differ between legs, so it is popped out of the compared report).

    The engine is closed before returning so the process backend's worker
    pool does not outlive its leg of the sweep.
    """
    with forced_shards(shards), forced_backend(spec):
        movies = generate_movies(size, seed=7)
        engine = movies_engine(movies, expected_update_size=batch)
        view = engine.view("catalog", _catalog_query(), strategy="classic")
        stream = list(
            movie_update_stream(
                updates + 1, batch, existing=movies, deletion_ratio=0.25, seed=13
            )
        )
        latencies = []
        try:
            for position, update in enumerate(stream):
                started = time.perf_counter()
                engine.apply(update)
                if position > 0:  # skip the warm-up update
                    latencies.append(time.perf_counter() - started)
            result = view.result()
            report = engine.storage_report()
            execution = report.pop("execution", None)
        finally:
            engine.close()
        return latencies, result, report, execution


def _best_backend_run(trials: int, spec: str, **kwargs):
    """Best-of-``trials`` median apply latency for one backend spec
    (minimum of per-run medians — external load only ever adds time),
    with the runs checked identical against each other."""
    best = None
    kept = None
    for _ in range(max(1, trials)):
        latencies, result, report, execution = _backend_apply_run(spec, **kwargs)
        median = sorted(latencies)[len(latencies) // 2]
        if kept is None:
            kept = (result, report, execution)
        elif (result, report) != kept[:2]:
            raise AssertionError(f"backend {spec!r} diverged between identical trials")
        if best is None or median < best:
            best = median
    return best, kept[0], kept[1], kept[2]


def run_core_scale(
    size: int = 4000,
    batch: int = 256,
    updates: int = 20,
    shards: int = 8,
    trials: int = 2,
    worker_sweep: Sequence[int] = (1, 2, 4),
) -> dict:
    """Measure shard-apply latency per execution backend, with a worker sweep.

    Every leg applies the identical update stream to the identical sharded
    relation and must produce bit-identical view results and storage
    reports (including counters) — the sendable-work-unit contract.  The
    deltas are large (``d`` ≥ the planner's process-offload threshold) so
    the process legs genuinely ship work to forked workers; the execution
    report is captured per leg to prove which backend did the applies.
    """
    availability = backend_availability()
    run_kwargs = dict(size=size, batch=batch, updates=updates, shards=shards)

    serial_median, serial_result, serial_report, _ = _best_backend_run(
        trials, "serial", **run_kwargs
    )
    rows_per_update = batch

    def leg(spec: str) -> dict:
        median, result, report, execution = _best_backend_run(
            trials, spec, **run_kwargs
        )
        if result != serial_result:
            raise AssertionError(f"backend {spec!r} diverged from serial (view result)")
        if report != serial_report:
            raise AssertionError(f"backend {spec!r} diverged from serial (storage report)")
        return {
            "backend": spec,
            "median_apply_seconds": median,
            "throughput_rows_per_second": rows_per_update / median,
            "speedup_vs_serial": serial_median / median,
            "applies_by_backend": dict(execution["applies"]) if execution else {},
        }

    threads_row = leg("threads:2")
    process_rows = []
    if availability["processes"]["available"]:
        for workers in worker_sweep:
            row = leg(f"processes:{workers}")
            row["workers"] = workers
            process_rows.append(row)
        one_worker = process_rows[0]["median_apply_seconds"]
        for row in process_rows:
            row["speedup_vs_one_worker"] = one_worker / row["median_apply_seconds"]
    subinterpreter_row = None
    if availability["subinterpreters"]["available"]:
        subinterpreter_row = leg("subinterpreters:2")

    host_cpus = os.cpu_count() or 1
    multi_core = host_cpus >= 2
    return {
        "benchmark": "core_scale_backend_apply",
        "workload": (
            "one %d-row relation over %d shards, %d large mixed insert/delete "
            "updates (d=%d, above the process-offload threshold), classic "
            "identity view maintained; apply timed end-to-end through "
            "engine.apply with the execution backend pinned per leg"
            % (size, shards, updates, batch)
        ),
        "n": size,
        "d": batch,
        "updates": updates,
        "shards": shards,
        "trials": trials,
        "host": {
            "cpus": host_cpus,
            "backend_availability": availability,
        },
        "serial": {
            "backend": "serial",
            "median_apply_seconds": serial_median,
            "throughput_rows_per_second": rows_per_update / serial_median,
        },
        "threads": threads_row,
        "process_worker_sweep": process_rows,
        "subinterpreters": subinterpreter_row,
        "results_identical": True,
        "methodology": (
            "best-of-%d trials, median per-update apply latency (first update "
            "per run discarded as warm-up); every leg's final view result and "
            "full storage report (bag contents, index buckets, version stamps, "
            "deltas_applied, snapshot freezes) compared bit-for-bit against "
            "the serial leg; per-leg execution reports record which backend "
            "actually performed each apply" % trials
        ),
        "note": (
            "worker-sweep speedup is only expected on multi-core hosts; on a "
            "single CPU the process legs measure partition/encode/IPC/adopt "
            "overhead against the serial baseline, and speedup_vs_one_worker "
            "documents that forked workers add no benefit without cores to "
            "run them on"
            if not multi_core
            else "multi-core host: speedup_vs_one_worker reflects genuine "
            "parallel shard apply across forked workers"
        ),
    }


# --------------------------------------------------------------------------- #
# --benchmark serve: end-to-end service latency under concurrent clients
# --------------------------------------------------------------------------- #
def _percentile_summary(latencies) -> dict:
    ordered = sorted(latencies)

    def percentile(p: float) -> float:
        index = min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1)))
        return ordered[index]

    return {
        "count": len(ordered),
        "p50_seconds": percentile(50),
        "p99_seconds": percentile(99),
        "mean_seconds": sum(ordered) / len(ordered),
        "max_seconds": ordered[-1],
    }


def _serve_config_run(server, tenant, writers, batch, updates, readers, size):
    """One (writers × batch) cell: storm a fresh tenant, time every request.

    Writers issue synchronous applies (client-measured wall time includes
    queueing, coalescing and the engine's batch apply); readers poll the
    maintained view for the whole storm (each read pins one published
    snapshot).  Returns client-side latency lists plus the tenant's final
    ingest stats, after verifying every accepted row really arrived.
    """
    import threading

    from repro.client.api import APIClient

    api = APIClient(server.url, max_retries=8)
    api.post(
        f"v1/{tenant}/datasets",
        {
            "name": "M",
            "fields": ["name", "gen", "dir"],
            "rows": [list(row) for row in generate_movies(size, seed=7)],
        },
    )
    api.post(
        f"v1/{tenant}/views",
        {
            "name": "dramas",
            "query": {
                "from": "M",
                "var": "m",
                "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
                "select": [["field", "m", "name"]],
            },
            "strategy": "classic",
        },
    )

    apply_latencies = []
    read_latencies = []
    errors = []
    lock = threading.Lock()
    stop_readers = threading.Event()

    def write(writer: int) -> None:
        client = APIClient(server.url, max_retries=16)
        laps = []
        try:
            for update in range(updates):
                rows = [
                    [f"{tenant}W{writer}U{update:03d}R{row}", "Drama", "D"]
                    for row in range(batch)
                ]
                started = time.perf_counter()
                client.post(f"v1/{tenant}/apply", {"updates": [{"M": {"rows": rows}}]})
                laps.append(time.perf_counter() - started)
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)
        with lock:
            apply_latencies.extend(laps)

    def read() -> None:
        client = APIClient(server.url, max_retries=16)
        laps = []
        try:
            while not stop_readers.is_set():
                started = time.perf_counter()
                client.get(f"v1/{tenant}/views/dramas")
                laps.append(time.perf_counter() - started)
        except Exception as error:  # noqa: BLE001
            errors.append(error)
        with lock:
            read_latencies.extend(laps)

    writer_threads = [
        threading.Thread(target=write, args=(writer,)) for writer in range(writers)
    ]
    reader_threads = [threading.Thread(target=read) for _ in range(readers)]
    for thread in reader_threads + writer_threads:
        thread.start()
    for thread in writer_threads:
        thread.join()
    stop_readers.set()
    for thread in reader_threads:
        thread.join()
    if errors:
        raise AssertionError(f"serve benchmark clients failed: {errors[:1]}")

    expected = writers * updates * batch
    deadline = time.perf_counter() + 30.0
    while True:
        final = api.get(f"v1/{tenant}/views/dramas")
        inserted = sum(
            mult
            for element, mult in final["pairs"]
            if isinstance(element, str) and element.startswith(tenant)
        )
        if inserted == expected:
            break
        if time.perf_counter() > deadline:
            raise AssertionError(
                f"serve benchmark lost updates: {inserted}/{expected} arrived"
            )
    stats = api.get("stats")["tenants"][tenant]
    return apply_latencies, read_latencies, stats["ingest"]


def run_serve_latency(
    size: int = 200,
    updates: int = 25,
    readers: int = 2,
    writer_sweep: Sequence[int] = (1, 2, 4),
    batch_sweep: Sequence[int] = (1, 8),
    batch: Optional[int] = None,
) -> dict:
    """Measure service apply/read latency across writer count × batch size.

    Each cell storms a fresh tenant of one live server with ``writers``
    concurrent synchronous writers (``updates`` applies each, ``batch`` rows
    per apply) while ``readers`` poll the maintained view; reported p50/p99
    are client-observed wall times through the full HTTP + ingest-queue +
    engine stack.  The run verifies no update was lost in any cell.
    """
    from repro.serve import ReproServer, ServerConfig

    batches = (batch,) if batch is not None else tuple(batch_sweep)
    cells = []
    with ReproServer(ServerConfig(port=0)) as server:
        for writers in writer_sweep:
            for batch_size in batches:
                applies, reads, ingest = _serve_config_run(
                    server,
                    tenant=f"w{writers}b{batch_size}",
                    writers=writers,
                    batch=batch_size,
                    updates=updates,
                    readers=readers,
                    size=size,
                )
                cells.append(
                    {
                        "writers": writers,
                        "batch": batch_size,
                        "apply": _percentile_summary(applies),
                        "read": _percentile_summary(reads),
                        "ingest": {
                            "applied_batches": ingest["applied_batches"],
                            "coalesced_updates": ingest["coalesced_updates"],
                            "rejected_backpressure": ingest["rejected_backpressure"],
                            "ewma_batch_seconds": ingest["ewma_batch_seconds"],
                        },
                    }
                )
    return {
        "benchmark": "serve_latency",
        "workload": (
            "live ReproServer (ephemeral port), per-cell fresh tenant seeded "
            "with %d movies + one classic-strategy view; concurrent "
            "synchronous writers (sweep) x batch-size (sweep) with %d "
            "polling readers; latencies are client-observed wall times "
            "through HTTP + single-writer ingest + engine apply"
            % (size, readers)
        ),
        "updates_per_writer": updates,
        "readers": readers,
        "cells": cells,
        "no_updates_lost": True,
        "note": (
            "single-writer ingest: apply latency grows with writer count as "
            "sync writers queue behind one another (coalesced_updates shows "
            "batching absorbing the storm); read latency stays flat because "
            "readers answer from published snapshots and never block behind "
            "applies"
        ),
    }


# --------------------------------------------------------------------------- #
# --benchmark read: the delta-bounded read path
# --------------------------------------------------------------------------- #
def _retained_reader_run(shards: Optional[int], size: int, batch: int, updates: int):
    """Apply + first-read latency with a reader that retains every snapshot.

    The reader holds on to the view result across each write, so every
    update pays the result store's copy-on-write: one whole-dict copy per
    update at one shard, only the dirty shards at ``N``.  The first read
    after each apply measures the composite snapshot freeze.
    """
    from repro.engine import Engine

    movies = generate_movies(size, seed=7)
    # An explicit shard count pins the store layout, so the result store is
    # really sharded even when the result is small.  The serial backend and
    # in-line view refresh keep thread dispatch out of the measurement: the
    # per-update latency difference across shard counts is then the result
    # store's copy-on-write, which is what this sweep isolates.
    engine = Engine(shards=shards, parallel_views=0, backend="serial")
    engine.dataset("M", MOVIE_SCHEMA, rows=movies)
    handle = engine.view("catalog", _catalog_query(), strategy="classic")
    stream = list(
        movie_update_stream(
            updates + 1, batch, existing=movies, deletion_ratio=0.25, seed=13
        )
    )
    retained = [handle.result()]  # the reader never lets go
    apply_laps, read_laps = [], []
    for position, update in enumerate(stream):
        started = time.perf_counter()
        engine.apply(update)
        applied = time.perf_counter()
        retained.append(handle.result())
        finished = time.perf_counter()
        if position > 0:  # skip the warm-up update
            apply_laps.append(applied - started)
            read_laps.append(finished - applied)
    store = handle.view.result_store()
    return handle.result(), apply_laps, read_laps, store.describe()


def _footprint_probe_run(size: int, batch: int, updates: int, disabled: bool):
    """The nested ``related`` view under a relation-update stream, with the
    footprint probes either live or disabled (the §2.2 all-labels sweep)."""
    from repro.engine import Engine
    from repro.ivm.footprint import forced_no_footprint
    from repro.workloads import related_query

    movies = generate_movies(size, seed=7)
    with forced_no_footprint(disabled):
        engine = Engine()
        engine.dataset("M", MOVIE_SCHEMA, rows=movies)
        handle = engine.view("related", related_query(), strategy="nested")
        stream = list(
            movie_update_stream(
                updates, batch, existing=movies, deletion_ratio=0.25, seed=13
            )
        )
        laps = []
        for update in stream:
            started = time.perf_counter()
            engine.apply(update)
            laps.append(time.perf_counter() - started)
        entry = next(
            entry
            for entry in engine.storage_report()["read_path"]
            if "probes" in entry
        )
        return handle.result(), laps, entry["probes"], entry["footprint"]


def _serve_read_run(size: int, reads: int, page: int):
    """Client-observed read latency against a live server: full result,
    paged windows, and ETag-304 polls; verifies paged tiling ≡ full."""
    from repro.client.api import APIClient
    from repro.serve import ReproServer, ServerConfig

    with ReproServer(ServerConfig(port=0)) as server:
        api = APIClient(server.url, max_retries=8)
        api.post(
            "v1/read/datasets",
            {
                "name": "M",
                "fields": ["name", "gen", "dir"],
                "rows": [list(row) for row in generate_movies(size, seed=7)],
            },
        )
        api.post(
            "v1/read/views",
            {
                "name": "catalog",
                "query": {"from": "M", "var": "m", "select": [["row", "m"]]},
                "strategy": "classic",
            },
        )
        full = api.get("v1/read/views/catalog")
        version = full["version"]

        full_laps, paged_laps, etag_laps = [], [], []
        for _ in range(reads):
            started = time.perf_counter()
            api.get("v1/read/views/catalog")
            full_laps.append(time.perf_counter() - started)
        offsets = list(range(0, max(size, 1), page)) or [0]
        for index in range(reads):
            offset = offsets[index % len(offsets)]
            started = time.perf_counter()
            api.get(f"v1/read/views/catalog?limit={page}&offset={offset}")
            paged_laps.append(time.perf_counter() - started)
        for _ in range(reads):
            started = time.perf_counter()
            unchanged = api.get(
                "v1/read/views/catalog", headers={"If-None-Match": f'"{version}"'}
            )
            etag_laps.append(time.perf_counter() - started)
            if not unchanged.get("unchanged"):
                raise AssertionError("ETag poll of an idle view was not a 304")

        tiled = []
        offset = 0
        while True:
            window = api.get(f"v1/read/views/catalog?limit={page}&offset={offset}")
            if window["version"] != version:
                raise AssertionError("view version moved during the paged read")
            tiled.extend(window["pairs"])
            if window["page"]["returned"] == 0:
                break
            offset += window["page"]["returned"]
        if tiled != full["pairs"]:
            raise AssertionError("paged reads did not tile the full result")
    return {
        "n": size,
        "reads": reads,
        "page": page,
        "full": _percentile_summary(full_laps),
        "paged": _percentile_summary(paged_laps),
        "etag_304": _percentile_summary(etag_laps),
        "paged_equals_full": True,
    }


def run_read_latency(
    size: int = 2000,
    batch: int = 1,
    updates: int = 40,
    shard_sweep: Sequence[int] = (1, 4, 8),
    size_sweep: Sequence[int] = (4000, 8000),
    trials: int = 5,
    nested_size: int = 240,
    serve_reads: int = 120,
    serve_page: int = 200,
) -> dict:
    """Measure the delta-bounded read path end to end.

    Three legs: (1) a retained-reader sweep over shard count × result size
    — the reader keeps every snapshot, so per-update apply latency is
    dominated by the result store's copy-on-write and must improve
    monotonically with shard count; (2) the nested view's
    footprint-bounded dictionary probes against the ``REPRO_NO_FOOTPRINT``
    all-labels sweep, probe counters included; (3) client-observed
    p50/p99 serve-read latency for full, paged and ETag-304 reads with a
    paged ≡ full differential check.
    """
    sizes = sorted(set(size_sweep))
    retained_sweep = []
    monotone_overall = True
    for n in sizes:
        cells = []
        reference = None
        for shards in shard_sweep:
            best = None
            for _ in range(trials):
                result, apply_laps, read_laps, store = _retained_reader_run(
                    shards, n, batch, updates
                )
                candidate = (
                    _latency_summary(apply_laps),
                    _latency_summary(read_laps),
                    store,
                    result,
                )
                if best is None or (
                    candidate[0]["median_seconds"] < best[0]["median_seconds"]
                ):
                    best = candidate
            apply_summary, read_summary, store, result = best
            if reference is None:
                reference = result
            elif result != reference:
                raise AssertionError(
                    "sharded and single-shard read paths diverged at n=%d" % n
                )
            cells.append(
                {
                    "shards": store["shards"],
                    "requested_shards": shards,
                    "n": n,
                    "apply": apply_summary,
                    "first_read": read_summary,
                    "store": store,
                }
            )
        monotone = all(
            later["apply"]["median_seconds"] <= earlier["apply"]["median_seconds"]
            for earlier, later in zip(cells, cells[1:])
        )
        monotone_overall = monotone_overall and monotone
        retained_sweep.append(
            {
                "n": n,
                "cells": cells,
                "monotone_with_shards": monotone,
                "speedup_max_shards": (
                    cells[0]["apply"]["median_seconds"]
                    / cells[-1]["apply"]["median_seconds"]
                ),
            }
        )

    fast_result, fast_laps, fast_probes, fast_plan = _footprint_probe_run(
        nested_size, batch=2, updates=max(8, updates // 4), disabled=False
    )
    slow_result, slow_laps, slow_probes, _ = _footprint_probe_run(
        nested_size, batch=2, updates=max(8, updates // 4), disabled=True
    )
    if fast_result != slow_result:
        raise AssertionError("footprint-probed and all-labels refreshes diverged")
    if fast_probes["dict_probes"] >= slow_probes["dict_probes"]:
        raise AssertionError(
            "footprint probes did not beat the all-labels sweep: %r vs %r"
            % (fast_probes, slow_probes)
        )
    footprint_report = {
        "n": nested_size,
        "footprint": {
            "latency": _latency_summary(fast_laps),
            "probes": fast_probes,
            "planner": fast_plan,
        },
        "all_labels": {
            "latency": _latency_summary(slow_laps),
            "probes": slow_probes,
        },
        "probe_reduction": slow_probes["dict_probes"] / max(1, fast_probes["dict_probes"]),
        "probes_bounded_by_footprint": fast_probes["full_sweeps"] == 0
        and fast_probes["dict_probes"] == fast_probes["footprint_probes"],
        "results_identical": True,
    }

    serve_report = _serve_read_run(size, serve_reads, serve_page)

    return {
        "benchmark": "read_path",
        "workload": (
            "retained-reader identity view (classic, d=%d) over shard sweep "
            "%s x size sweep %s; nested related view (n=%d) footprint vs "
            "REPRO_NO_FOOTPRINT all-labels sweep; live-server read latency "
            "(full / limit=%d pages / ETag-304)"
            % (batch, list(shard_sweep), sizes, nested_size, serve_page)
        ),
        "n": size,
        "d": batch,
        "updates": updates,
        "retained_reader_sweep": retained_sweep,
        "monotone_with_shards": monotone_overall,
        "footprint_probes": footprint_report,
        "serve_reads": serve_report,
        "results_identical": True,
    }


def run_durability(size: int = 2000, batch: int = 4, updates: int = 40) -> dict:
    """Durability overhead: WAL tax, checkpoint cost, cold-start recovery.

    Three measurements (``docs/durability.md``):

    * **apply overhead** — the classic self-join maintained under a mixed
      update stream, once in memory and once per WAL fsync policy
      (``off`` / ``batch`` / ``always``), with the serving layer's
      sync-before-ack discipline (``sync_wal()`` after every apply).  The
      ``off`` leg prices the append + codec alone, ``batch`` adds one
      fsync per acknowledged apply, ``always`` one per logged record.
      Every leg must produce identical view results.
    * **checkpoint write time vs database size** — wall time of
      ``Engine.checkpoint()`` (capture + encode + fsync + rename) over a
      size sweep, with the on-disk footprint.
    * **cold-start recovery vs WAL tail length** — wall time of
      ``Engine(data_dir=...)`` replaying tails of increasing length, plus
      a checkpointed leg whose tail is empty: recovery cost tracks the
      *tail*, not the history.
    """
    import statistics
    import tempfile

    from repro.durability.faults import engine_state, state_differences
    from repro.engine import Engine

    rows = generate_movies(size, seed=7)
    stream = list(
        movie_update_stream(updates, batch, existing=rows, deletion_ratio=0.2, seed=13)
    )

    def _drive(engine: Engine, sync_each: bool):
        engine.dataset("M", MOVIE_SCHEMA, rows=rows)
        engine.view("selfjoin", genre_selfjoin_query(), strategy="classic")
        latencies = []
        for update in stream:
            started = time.perf_counter()
            engine.apply(update)
            if sync_each:
                engine.sync_wal()
            latencies.append(time.perf_counter() - started)
        return latencies

    def _leg(label: str, data_dir: Optional[str], fsync: Optional[str]):
        engine = Engine(data_dir=data_dir, fsync=fsync)
        latencies = _drive(engine, sync_each=data_dir is not None)
        state = engine_state(engine)
        wal = None
        if data_dir is not None:
            wal = dict(engine.durability_report()["wal"])
        engine.close()
        return state, {
            "leg": label,
            "apply_p50_ms": 1000 * statistics.median(latencies),
            "apply_total_s": sum(latencies),
            "wal": wal,
        }

    with tempfile.TemporaryDirectory(prefix="repro-bench-dur-") as tmp:
        baseline_state, baseline = _leg("in-memory", None, None)
        policy_legs = []
        identical = True
        for policy in ("off", "batch", "always"):
            state, leg = _leg(
                f"wal-{policy}", os.path.join(tmp, f"wal-{policy}"), policy
            )
            leg["overhead_vs_memory"] = leg["apply_total_s"] / max(
                baseline["apply_total_s"], 1e-9
            )
            leg["matches_in_memory"] = (
                state_differences(baseline_state, state) == []
            )
            identical = identical and leg["matches_in_memory"]
            policy_legs.append(leg)

        checkpoint_sweep = []
        for n in sorted({max(size // 4, 200), max(size // 2, 400), size}):
            data_dir = os.path.join(tmp, f"ckpt-{n}")
            engine = Engine(data_dir=data_dir, fsync="batch")
            engine.dataset("M", MOVIE_SCHEMA, rows=generate_movies(n, seed=7))
            engine.view("selfjoin", genre_selfjoin_query(), strategy="classic")
            started = time.perf_counter()
            engine.checkpoint()
            elapsed = time.perf_counter() - started
            ckpt_root = os.path.join(data_dir, "checkpoints")
            on_disk = sum(
                os.path.getsize(os.path.join(root, name))
                for root, _, names in os.walk(ckpt_root)
                for name in names
            )
            engine.close()
            checkpoint_sweep.append(
                {
                    "rows": n,
                    "checkpoint_s": elapsed,
                    "on_disk_bytes": on_disk,
                }
            )

        recovery_sweep = []
        for tail, checkpointed in ((updates // 4, False), (updates, False), (updates, True)):
            data_dir = os.path.join(tmp, f"rec-{tail}-{checkpointed}")
            engine = Engine(data_dir=data_dir, fsync="batch")
            engine.dataset("M", MOVIE_SCHEMA, rows=rows)
            engine.view("selfjoin", genre_selfjoin_query(), strategy="classic")
            for update in stream[:tail]:
                engine.apply(update)
            if checkpointed:
                engine.checkpoint()
            engine.close()
            started = time.perf_counter()
            reopened = Engine(data_dir=data_dir, fsync="batch")
            elapsed = time.perf_counter() - started
            report = reopened.recovery_report
            reopened.close()
            recovery_sweep.append(
                {
                    "wal_tail_updates": 0 if checkpointed else tail,
                    "from_checkpoint": checkpointed,
                    "records_replayed": report.records_replayed,
                    "cold_start_s": elapsed,
                }
            )

    return {
        "benchmark": "durability",
        "workload": "genre self-join (classic) under mixed insert/delete stream",
        "n": size,
        "d": batch,
        "updates": updates,
        "in_memory": baseline,
        "fsync_policies": policy_legs,
        "checkpoint_write_vs_size": checkpoint_sweep,
        "cold_start_vs_tail": recovery_sweep,
        "results_identical": identical,
    }


def run_replication(size: int = 300, updates: int = 30, batch: int = 4) -> dict:
    """Replication costs: lag vs ingest rate, failover, follower reads.

    Three measurements over live primary/replica pairs (two in-process
    :class:`~repro.serve.ReproServer` instances per cell, the replica
    following over ``replica_of``; see ``docs/replication.md``):

    * **replica lag vs ingest rate** — a synchronous apply stream at
      sweeping batch sizes, sampling the replica's ``replication_lag``
      (records / bytes of durable-but-unshipped WAL) immediately after
      every acknowledgement, plus the post-stream catch-up time.  Lag is
      bounded by the in-flight window, not the stream length: the
      subscriber tails continuously, so catch-up stays near-constant as
      the ingest rate grows.
    * **failover time-to-writable** — seed, converge, kill the primary
      without draining, ``POST /v1/{tenant}/promote``, and time until the
      promoted replica acknowledges its first write (three trials).
    * **follower reads** — client-observed p50/p99 of the same view read
      against primary and replica, with the two results (pairs and
      version tag) required identical at equal versions.
    """
    import statistics
    import tempfile

    from repro.client.api import APIClient, APIError
    from repro.serve import ReproServer, ServerConfig
    from repro.serve.sessions import TenantRecoveringError

    tenant = "default"

    def _pair(root: str, label: str):
        config = dict(host="127.0.0.1", port=0, quiet=True, fsync="batch")
        primary = ReproServer(
            ServerConfig(data_dir=os.path.join(root, f"{label}-primary"), **config)
        ).start()
        replica = ReproServer(
            ServerConfig(
                data_dir=os.path.join(root, f"{label}-replica"),
                replica_of=primary.url,
                poll_wait=0.5,
                poll_interval=0.01,
                **config,
            )
        ).start()
        return primary, replica

    def _seed(api: APIClient) -> None:
        api.post(
            f"v1/{tenant}/datasets",
            {
                "name": "M",
                "fields": ["name", "gen", "dir"],
                "rows": [list(row) for row in generate_movies(size, seed=7)],
            },
        )
        api.post(
            f"v1/{tenant}/views",
            {
                "name": "dramas",
                "query": {
                    "from": "M",
                    "var": "m",
                    "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
                    "select": [["field", "m", "name"]],
                },
                "strategy": "classic",
            },
        )

    def _status(replica) -> Optional[dict]:
        try:
            return replica.sessions.get(tenant).replication_status()
        except TenantRecoveringError:
            return None

    def _lag(replica) -> Optional[dict]:
        status = _status(replica)
        return None if status is None else status.get("replication_lag")

    def _wait_caught_up(replica, version: int, timeout: float = 30.0) -> float:
        # Lag alone reads zero before the link's first poll, so convergence
        # additionally requires the replica to have applied every acked op.
        started = time.perf_counter()
        deadline = started + timeout
        while time.perf_counter() < deadline:
            status = _status(replica)
            if status is not None:
                lag = status.get("replication_lag") or {}
                if status["state_version"] >= version and lag.get("records") == 0:
                    return time.perf_counter() - started
            time.sleep(0.005)
        raise AssertionError("replica never caught up with the primary")

    def _apply(api: APIClient, rows) -> None:
        api.post(
            f"v1/{tenant}/apply",
            {"updates": [{"M": {"rows": rows}}], "mode": "sync"},
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-repl-") as tmp:
        # -- replica lag vs ingest rate --------------------------------- #
        ingest_cells = []
        for cell_batch in sorted({1, batch, 4 * batch}):
            primary, replica = _pair(tmp, f"ingest-b{cell_batch}")
            try:
                api = APIClient(primary.url, max_retries=8)
                _seed(api)
                _wait_caught_up(replica, version=2)
                lag_records, lag_bytes = [], []
                started = time.perf_counter()
                for update in range(updates):
                    _apply(
                        api,
                        [
                            [f"B{cell_batch}U{update:03d}R{row}", "Drama", "D"]
                            for row in range(cell_batch)
                        ],
                    )
                    lag = _lag(replica) or {}
                    lag_records.append(lag.get("records") or 0)
                    lag_bytes.append(lag.get("bytes") or 0)
                elapsed = time.perf_counter() - started
                catch_up = _wait_caught_up(replica, version=2 + updates)
                ingest_cells.append(
                    {
                        "batch": cell_batch,
                        "applies_per_second": updates / elapsed,
                        "rows_per_second": updates * cell_batch / elapsed,
                        "lag_records_at_ack_mean": sum(lag_records) / len(lag_records),
                        "lag_records_at_ack_max": max(lag_records),
                        "lag_bytes_at_ack_max": max(lag_bytes),
                        "catch_up_seconds_after_stream": catch_up,
                    }
                )
            finally:
                replica.close(drain=False)
                primary.close(drain=False)

        # -- failover time-to-writable ---------------------------------- #
        failover_trials = []
        for trial in range(3):
            primary, replica = _pair(tmp, f"failover-{trial}")
            try:
                api = APIClient(primary.url, max_retries=8)
                _seed(api)
                for update in range(updates):
                    _apply(api, [[f"F{trial}U{update:03d}", "Drama", "D"]])
                _wait_caught_up(replica, version=2 + updates)
                primary.close(drain=False)
                replica_api = APIClient(
                    replica.url, max_retries=1, sleep=lambda _: None
                )
                started = time.perf_counter()
                replica_api.post(f"v1/{tenant}/promote", {})
                promoted = time.perf_counter()
                deadline = started + 30.0
                while True:
                    try:
                        _apply(replica_api, [[f"PostFailover{trial}", "Drama", "D"]])
                        break
                    except APIError:
                        if time.perf_counter() > deadline:
                            raise
                        time.sleep(0.002)
                writable = time.perf_counter()
                failover_trials.append(
                    {
                        "promote_seconds": promoted - started,
                        "time_to_writable_seconds": writable - started,
                    }
                )
            finally:
                replica.close(drain=False)

        # -- follower reads vs primary reads ---------------------------- #
        primary, replica = _pair(tmp, "reads")
        try:
            api = APIClient(primary.url, max_retries=8)
            _seed(api)
            for update in range(updates):
                _apply(api, [[f"RU{update:03d}", "Drama", "D"]])
            _wait_caught_up(replica, version=2 + updates)
            replica_api = APIClient(replica.url, max_retries=8)
            primary_reads, replica_reads = [], []
            reads_identical = True
            for _ in range(120):
                lap = time.perf_counter()
                from_primary = api.get(f"v1/{tenant}/views/dramas")
                primary_reads.append(time.perf_counter() - lap)
                lap = time.perf_counter()
                from_replica = replica_api.get(f"v1/{tenant}/views/dramas")
                replica_reads.append(time.perf_counter() - lap)
                reads_identical = reads_identical and (
                    sorted(map(tuple, from_primary["pairs"]))
                    == sorted(map(tuple, from_replica["pairs"]))
                )
        finally:
            replica.close(drain=False)
            primary.close(drain=False)

    return {
        "benchmark": "replication",
        "workload": (
            "live primary/replica ReproServer pairs (fsync=batch, ephemeral "
            "ports), %d-movie dataset + one classic-strategy view per cell; "
            "synchronous applies over HTTP with the replica tailing the "
            "primary's WAL over the long-poll feed" % size
        ),
        "n": size,
        "updates": updates,
        "lag_vs_ingest_rate": ingest_cells,
        "failover": {
            "trials": failover_trials,
            "time_to_writable_median_seconds": statistics.median(
                trial["time_to_writable_seconds"] for trial in failover_trials
            ),
        },
        "follower_reads": {
            "primary": _percentile_summary(primary_reads),
            "replica": _percentile_summary(replica_reads),
            "results_identical": reads_identical,
        },
        "note": (
            "lag is sampled at acknowledgement time, so nonzero values show "
            "the in-flight shipping window rather than drift; follower reads "
            "serve the replica's latest applied snapshot — a consistent "
            "prefix of the primary's history with the same version tags"
        ),
    }


_BENCHMARKS = {
    "compile": (run_selfjoin_latency, "benchmarks/results/compile_selfjoin.json"),
    "index": (run_index_latency, "benchmarks/results/storage_index.json"),
    "apply": (run_apply_latency, "benchmarks/results/update_apply.json"),
    "shard": (run_shard_scale, "benchmarks/results/shard_scale.json"),
    "cores": (run_core_scale, "benchmarks/results/core_scale.json"),
    "serve": (run_serve_latency, "benchmarks/results/serve_latency.json"),
    "read": (run_read_latency, "benchmarks/results/read_path.json"),
    "durability": (run_durability, "benchmarks/results/durability.json"),
    "replication": (run_replication, "benchmarks/results/replication.json"),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Update-latency micro-benchmarks (compiled pipeline, storage indexes)"
    )
    parser.add_argument(
        "--benchmark",
        choices=sorted(_BENCHMARKS),
        default="compile",
        help="which micro-benchmark to run",
    )
    parser.add_argument("--size", type=int, default=None, help="base relation cardinality n")
    parser.add_argument("--batch", type=int, default=None, help="update batch size d")
    parser.add_argument("--updates", type=int, default=None, help="number of update batches")
    parser.add_argument(
        "--output",
        default=None,
        help="path for the BENCH json ('-' prints to stdout only; "
        "defaults to the benchmark's committed path)",
    )
    args = parser.parse_args(argv)

    runner, default_output = _BENCHMARKS[args.benchmark]
    overrides = {
        key: value
        for key, value in (("size", args.size), ("batch", args.batch), ("updates", args.updates))
        if value is not None
    }
    result = runner(**overrides)
    output = args.output if args.output is not None else default_output
    rendered = json.dumps(result, indent=2, sort_keys=False)
    print(rendered)
    if output != "-":
        os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"written to {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
