"""Benchmark harness: result tables and the E1–E10 experiment runners."""

from repro.bench.harness import ResultTable, ratio, timed
from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    run_e1_related_ivm,
    run_e2_filter_delta,
    run_e3_selfjoin_recursive,
    run_e4_flat_join,
    run_e5_shredding_roundtrip,
    run_e6_cost_model,
    run_e7_degree_towers,
    run_e8_deep_updates,
    run_e9_circuit_cones,
    run_e10_crossover,
)

__all__ = [
    "ResultTable",
    "ratio",
    "timed",
    "ALL_EXPERIMENTS",
    "run_e1_related_ivm",
    "run_e2_filter_delta",
    "run_e3_selfjoin_recursive",
    "run_e4_flat_join",
    "run_e5_shredding_roundtrip",
    "run_e6_cost_model",
    "run_e7_degree_towers",
    "run_e8_deep_updates",
    "run_e9_circuit_cones",
    "run_e10_crossover",
]
