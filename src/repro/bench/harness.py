"""Benchmark harness utilities: result tables, timing and work accounting.

Every experiment produces a :class:`ResultTable` — an ordered list of rows
with named columns — which can be printed as an aligned text table (the form
in which EXPERIMENTS.md records paper-vs-measured outcomes) or exported as
CSV for further analysis.
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["ResultTable", "timed", "ratio"]


@dataclass
class ResultTable:
    """An experiment result: a title, ordered columns and rows of values."""

    title: str
    columns: Tuple[str, ...]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns {sorted(unknown)} for table {self.title!r}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def format(self) -> str:
        """Render as an aligned, human-readable text table."""
        header = list(self.columns)
        body: List[List[str]] = []
        for row in self.rows:
            body.append([_format_cell(row.get(column)) for column in self.columns])
        widths = [len(column) for column in header]
        for line in body:
            for index, cell in enumerate(line):
                widths[index] = max(widths[index], len(cell))
        divider = "-+-".join("-" * width for width in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(column.ljust(width) for column, width in zip(header, widths)))
        lines.append(divider)
        for line in body:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as RFC-4180 CSV.

        Cells containing commas, quotes or newlines (notes, string columns)
        are quoted by the :mod:`csv` module, so the output always parses
        back into the original cells.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([_format_cell(row.get(column)) for column in self.columns])
        return buffer.getvalue().rstrip("\n")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.format()


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def timed(function: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``function`` once and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def ratio(numerator: float, denominator: float) -> Optional[float]:
    """Safe ratio (``None`` when the denominator is zero)."""
    if denominator == 0:
        return None
    return numerator / denominator
