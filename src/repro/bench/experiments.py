"""The experiment suite: one runner per analytical claim of the paper.

The paper is a theory paper with no empirical tables or figures; each
experiment below turns one of its quantitative claims, worked examples or
theorems into a measured run (see DESIGN.md §5 for the full index and
EXPERIMENTS.md for paper-vs-measured outcomes).

Every ``run_eN`` function returns a
:class:`~repro.bench.harness.ResultTable`; ``python -m repro.bench.experiments
[E1 … E10 | all] [--full]`` prints them.  The pytest-benchmark wrappers in
``benchmarks/`` call the same runners with small parameters.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bag.bag import Bag
from repro.bench.harness import ResultTable, ratio, timed
from repro.circuits import build_recompute_circuit, build_update_circuit
from repro.cost import CostContext, cost_of, size_of, tcost
from repro.delta import delta, delta_tower, degree
from repro.instrument import OpCounter
from repro.ivm import Update
from repro.labels import Label
from repro.nrc import ast
from repro.nrc import builders as build
from repro.nrc import predicates as preds
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.relational import RelSchema, RelationalDatabase, RelationalIVMView, RelationalNaiveView
from repro.shredding import ValueShredder, shred_query, unshred_bag
from repro.shredding.shred_database import build_shredded_environment, input_dict_name
from repro.workloads import (
    MOVIE_SCHEMA,
    bag_of_bags_engine,
    doz_query,
    generate_movies,
    generate_nested_bag,
    generate_showtimes,
    movie_update_stream,
    movies_engine,
    nested_bag_type,
    nested_update_stream,
    related_query,
)

__all__ = [
    "run_e1_related_ivm",
    "run_e2_filter_delta",
    "run_e3_selfjoin_recursive",
    "run_e4_flat_join",
    "run_e5_shredding_roundtrip",
    "run_e6_cost_model",
    "run_e7_degree_towers",
    "run_e8_deep_updates",
    "run_e9_circuit_cones",
    "run_e10_crossover",
    "ALL_EXPERIMENTS",
    "main",
]


# --------------------------------------------------------------------------- #
# E1 — §2.2: IVM of the nested `related` view vs re-evaluation
# --------------------------------------------------------------------------- #
def run_e1_related_ivm(
    sizes: Sequence[int] = (50, 100, 200, 400),
    batch_size: int = 4,
    num_updates: int = 3,
) -> ResultTable:
    """Nested IVM (shredded) versus naive re-evaluation for ``related``."""
    table = ResultTable(
        title="E1: related query — nested IVM vs re-evaluation (per-update operations)",
        columns=("n", "d", "naive_ops", "nested_ivm_ops", "speedup"),
    )
    query = related_query()
    for size in sizes:
        engine = movies_engine(generate_movies(size), expected_update_size=batch_size)
        naive = engine.view("naive", query, strategy="naive")
        nested = engine.view("related", query, strategy="nested")
        engine.apply_stream(movie_update_stream(num_updates, batch_size, seed=size))
        naive_ops = naive.stats.mean_update_operations
        nested_ops = nested.stats.mean_update_operations
        table.add_row(
            n=size,
            d=batch_size,
            naive_ops=naive_ops,
            nested_ivm_ops=nested_ops,
            speedup=ratio(naive_ops, nested_ops),
        )
    table.add_note("paper §2.2: IVM costs O(nd + d²) versus Ω((n+d)²) recomputation")
    return table


# --------------------------------------------------------------------------- #
# E2 — Examples 2–3 / Theorem 4: the delta of filter touches only the update
# --------------------------------------------------------------------------- #
def run_e2_filter_delta(
    sizes: Sequence[int] = (200, 400, 800, 1600),
    batch_size: int = 4,
    num_updates: int = 3,
) -> ResultTable:
    table = ResultTable(
        title="E2: filter_p — classic IVM vs re-evaluation (per-update operations)",
        columns=("n", "d", "naive_ops", "classic_ivm_ops", "speedup"),
    )
    movie_rel = ast.Relation("M", MOVIE_SCHEMA)
    query = build.filter_query(movie_rel, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")
    for size in sizes:
        engine = movies_engine(generate_movies(size), expected_update_size=batch_size)
        naive = engine.view("naive", query, strategy="naive")
        classic = engine.view("dramas", query, strategy="classic")
        engine.apply_stream(movie_update_stream(num_updates, batch_size, seed=size))
        naive_ops = naive.stats.mean_update_operations
        classic_ops = classic.stats.mean_update_operations
        table.add_row(
            n=size,
            d=batch_size,
            naive_ops=naive_ops,
            classic_ivm_ops=classic_ops,
            speedup=ratio(naive_ops, classic_ops),
        )
    table.add_note("paper Example 3: δ(filter_p)[R, ΔR] = filter_p[ΔR] — work independent of |R|")
    return table


# --------------------------------------------------------------------------- #
# E3 — Example 4 / §4.1: recursive IVM for flatten(R) × flatten(R)
# --------------------------------------------------------------------------- #
def run_e3_selfjoin_recursive(
    sizes: Sequence[int] = (20, 40, 80),
    inner_cardinality: int = 4,
    num_updates: int = 3,
) -> ResultTable:
    table = ResultTable(
        title="E3: flatten(R)×flatten(R) — classic vs recursive IVM (per-update operations)",
        columns=("n", "naive_ops", "classic_ops", "recursive_ops", "recursive_vs_classic"),
    )
    schema = bag_of(bag_of(BASE))
    relation = ast.Relation("R", schema)
    query = ast.Product((ast.Flatten(relation), ast.Flatten(relation)))
    for size in sizes:
        engine = bag_of_bags_engine(size, inner_cardinality, seed=size)
        naive = engine.view("naive", query, strategy="naive")
        classic = engine.view("classic", query, strategy="classic")
        recursive = engine.view("recursive", query, strategy="recursive")
        engine.apply_stream(
            nested_update_stream("R", num_updates, 1, inner_cardinality, seed=size)
        )
        table.add_row(
            n=size,
            naive_ops=naive.stats.mean_update_operations,
            classic_ops=classic.stats.mean_update_operations,
            recursive_ops=recursive.stats.mean_update_operations,
            recursive_vs_classic=ratio(
                classic.stats.mean_update_operations, recursive.stats.mean_update_operations
            ),
        )
    table.add_note(
        "paper Example 4: recursive IVM materializes flatten(R) once; classic IVM recomputes it per update"
    )
    return table


# --------------------------------------------------------------------------- #
# E4 — Appendix A.1 / Example 8: flat relational IVM baseline
# --------------------------------------------------------------------------- #
def run_e4_flat_join(
    sizes: Sequence[int] = (400, 800, 1600),
    batch_size: int = 4,
    num_updates: int = 3,
) -> ResultTable:
    table = ResultTable(
        title="E4: DOz flat join — relational IVM vs re-evaluation (per-update seconds)",
        columns=("n", "d", "naive_seconds", "ivm_seconds", "speedup"),
    )
    query = doz_query("Mflat", "Sh")
    for size in sizes:
        movies = generate_movies(size)
        flat_movies = Bag((name, genre) for name, genre, _ in movies.elements())
        showtimes = generate_showtimes(movies)
        oz_bias = Bag((name, "Oz", "20:00") for name, _ in list(flat_movies.items())[: size // 10 or 1])
        showtimes = showtimes.union(oz_bias)

        database = RelationalDatabase()
        database.register("Mflat", RelSchema(("movie", "genre")), flat_movies)
        database.register("Sh", RelSchema(("movie", "loc", "time")), showtimes)
        naive = RelationalNaiveView(query, database)
        ivm = RelationalIVMView(query, database)
        for index in range(num_updates):
            delta_sh = Bag(
                (f"Movie{index:06d}", "Oz", f"{18 + step}:00") for step in range(batch_size)
            )
            database.apply_update({"Sh": delta_sh})
        naive_seconds = naive.stats.total_update_seconds / max(naive.stats.updates_applied, 1)
        ivm_seconds = ivm.stats.total_update_seconds / max(ivm.stats.updates_applied, 1)
        table.add_row(
            n=size,
            d=batch_size,
            naive_seconds=naive_seconds,
            ivm_seconds=ivm_seconds,
            speedup=ratio(naive_seconds, ivm_seconds),
        )
    table.add_note("paper Appendix A.1: join IVM has linear cost, recomputation quadratic")
    return table


# --------------------------------------------------------------------------- #
# E5 — §5.1 / Lemma 6 / Theorem 8: shredding round-trip and equivalence
# --------------------------------------------------------------------------- #
def run_e5_shredding_roundtrip(
    depths: Sequence[int] = (1, 2, 3),
    top_cardinality: int = 60,
    inner_cardinality: int = 4,
) -> ResultTable:
    table = ResultTable(
        title="E5: shredding — round-trip fidelity and shredded-vs-direct evaluation",
        columns=(
            "depth",
            "value_size",
            "labels",
            "shred_seconds",
            "unshred_seconds",
            "roundtrip_ok",
            "query_equivalent",
        ),
    )
    for depth in depths:
        bag_type = nested_bag_type(depth)
        value = generate_nested_bag(depth, top_cardinality, inner_cardinality, seed=depth)
        shredder = ValueShredder()
        (flat, context), shred_seconds = timed(
            lambda: shredder.shred_bag(value, bag_type.element)
        )
        nested_back, unshred_seconds = timed(
            lambda: unshred_bag(flat, bag_type.element, context)
        )
        labels = sum(
            1 for element in flat.elements() for part in _iter_labels(element)
        )

        # Query equivalence (Theorem 8): a query over the nested relation vs
        # its shredding evaluated over the shredded input.
        relation = ast.Relation("R", bag_type)
        query = build.for_in("x", relation, ast.SngVar("x"))
        direct = evaluate_bag(query, Environment(relations={"R": value}))
        shredded = shred_query(query)
        environment = build_shredded_environment({"R": value}, {"R": bag_type})
        equivalent = shredded.evaluate_nested(environment) == direct

        table.add_row(
            depth=depth,
            value_size=value.cardinality(),
            labels=labels,
            shred_seconds=shred_seconds,
            unshred_seconds=unshred_seconds,
            roundtrip_ok=nested_back == value,
            query_equivalent=equivalent,
        )
    table.add_note("paper Lemma 6 and Theorem 8: u ∘ shred = id and h = u[hΓ] ∘ hF")
    return table


def _iter_labels(value):
    if isinstance(value, Label):
        yield value
    elif isinstance(value, tuple):
        for component in value:
            yield from _iter_labels(component)


# --------------------------------------------------------------------------- #
# E6 — §4.2 / Lemma 3 / Example 6: the cost model upper-bounds measured work
# --------------------------------------------------------------------------- #
def run_e6_cost_model(sizes: Sequence[int] = (50, 100, 200)) -> ResultTable:
    table = ResultTable(
        title="E6: cost interpretation — tcost(C[[h]]) vs measured evaluator operations",
        columns=("query", "n", "predicted_tcost", "measured_ops", "measured_over_predicted"),
    )
    for size in sizes:
        movies = generate_movies(size)
        relation = ast.Relation("M", MOVIE_SCHEMA)
        context = CostContext.from_instances(relations={"M": movies})
        environment = Environment(relations={"M": movies})

        filter_q = build.filter_query(
            relation, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x"
        )
        product_q = ast.Product((relation, relation))
        related_f = shred_query(related_query()).flat
        shredded_env = build_shredded_environment({"M": movies}, {"M": MOVIE_SCHEMA})
        shredded_context = CostContext.from_instances(
            relations={"M__F": shredded_env.relations["M__F"]}
        )

        for name, query, env, cost_ctx in (
            ("filter_p[M]", filter_q, environment, context),
            ("M × M", product_q, environment, context),
            ("related^F[M]", related_f, shredded_env, shredded_context),
        ):
            counter = OpCounter()
            evaluate_bag(query, env, counter)
            predicted = tcost(cost_of(query, cost_ctx))
            measured = counter.total()
            table.add_row(
                query=name,
                n=size,
                predicted_tcost=predicted,
                measured_ops=measured,
                measured_over_predicted=ratio(measured, predicted),
            )
    table.add_note(
        "paper Lemma 3: evaluation is O(tcost(C[[h]])) — the measured/predicted ratio stays bounded "
        "by a constant as n grows; Example 6 gives C[[related]] = |M|{⟨1,|M|{1}⟩}"
    )
    return table


# --------------------------------------------------------------------------- #
# E7 — Theorem 2: deg(δ(h)) = deg(h) − 1 and tower heights
# --------------------------------------------------------------------------- #
def run_e7_degree_towers(max_degree: int = 5) -> ResultTable:
    table = ResultTable(
        title="E7: higher-order delta towers — height equals the query degree",
        columns=("query", "degree", "tower_height", "degree_sequence", "matches_theorem"),
    )
    schema = bag_of(bag_of(BASE))
    relation = ast.Relation("R", schema)
    flattened = ast.Flatten(relation)
    for target_degree in range(1, max_degree + 1):
        if target_degree == 1:
            query = flattened
        else:
            query = ast.Product(tuple(flattened for _ in range(target_degree)))
        tower = delta_tower(query, targets=("R",))
        degrees = tower.degrees()
        expected = tuple(range(target_degree, -1, -1))
        table.add_row(
            query=f"flatten(R)^×{target_degree}" if target_degree > 1 else "flatten(R)",
            degree=degree(query, ("R",)),
            tower_height=tower.height,
            degree_sequence="→".join(str(value) for value in degrees),
            matches_theorem=degrees == expected,
        )
    table.add_note("paper Theorem 2: each delta derivation lowers the degree by exactly one")
    return table


# --------------------------------------------------------------------------- #
# E8 — §2.2 / §5.2: deep updates through dictionaries
# --------------------------------------------------------------------------- #
def run_e8_deep_updates(
    sizes: Sequence[int] = (50, 100, 200),
    inner_cardinality: int = 5,
    touched_labels: int = 2,
) -> ResultTable:
    table = ResultTable(
        title="E8: deep updates — dictionary maintenance vs rebuilding the nested view",
        columns=("n", "touched_labels", "ivm_ops", "rebuild_size", "ops_per_touched_label"),
    )
    schema = bag_of(bag_of(BASE))
    relation = ast.Relation("R", schema)
    query = build.for_in("x", relation, ast.SngVar("x"))
    for size in sizes:
        engine = bag_of_bags_engine(size, inner_cardinality, seed=size)
        view = engine.view("groups", query, strategy="nested")

        dictionary_name = input_dict_name("R", ())
        dictionary = engine.database.shredded_environment().dictionaries[dictionary_name]
        support = sorted(dictionary.support(), key=lambda label: label.render())
        targets = support[:touched_labels]
        deep_entries = {label: Bag([f"deep-{index}"]) for index, label in enumerate(targets)}
        engine.apply(Update(deep={dictionary_name: deep_entries}))

        rebuild_size = view.result().cardinality() * inner_cardinality
        ivm_ops = view.stats.mean_update_operations
        table.add_row(
            n=size,
            touched_labels=len(targets),
            ivm_ops=ivm_ops,
            rebuild_size=rebuild_size,
            ops_per_touched_label=ratio(ivm_ops, len(targets)),
        )
    table.add_note(
        "paper §2.2: deep updates modify only the touched label definitions, never the sibling inner bags"
    )
    return table


# --------------------------------------------------------------------------- #
# E9 — §5.4 / Theorems 9 & 14: NC0 maintenance vs growing recompute cones
# --------------------------------------------------------------------------- #
def run_e9_circuit_cones(slot_counts: Sequence[int] = (4, 8, 16, 32), k: int = 4) -> ResultTable:
    table = ResultTable(
        title="E9: circuit complexity — per-output cone size of maintenance vs recompute",
        columns=(
            "input_slots",
            "k_bits",
            "update_cone",
            "recompute_cone",
            "update_depth",
            "recompute_depth",
        ),
    )
    for slots in slot_counts:
        update_circuit = build_update_circuit(slots, k)
        recompute_circuit = build_recompute_circuit(slots, k)
        table.add_row(
            input_slots=slots,
            k_bits=k,
            update_cone=update_circuit.max_cone_size(),
            recompute_cone=recompute_circuit.max_cone_size(),
            update_depth=update_circuit.depth(),
            recompute_depth=recompute_circuit.depth(),
        )
    table.add_note(
        "paper Theorem 9: maintenance cones stay at 2k bits regardless of database size; "
        "re-evaluation cones grow with the input"
    )
    return table


# --------------------------------------------------------------------------- #
# E10 — §2.2 / Appendix A.2: the IVM advantage shrinks as d approaches n
# --------------------------------------------------------------------------- #
def run_e10_crossover(
    size: int = 200,
    batch_fractions: Sequence[float] = (0.01, 0.05, 0.25, 0.5, 1.0),
) -> ResultTable:
    table = ResultTable(
        title="E10: batch-size sweep — IVM advantage versus d/n",
        columns=("n", "d", "d_over_n", "naive_ops", "nested_ivm_ops", "speedup"),
    )
    query = related_query()
    for fraction in batch_fractions:
        batch = max(1, int(size * fraction))
        engine = movies_engine(generate_movies(size), expected_update_size=batch)
        naive = engine.view("naive", query, strategy="naive")
        nested = engine.view("related", query, strategy="nested")
        engine.apply_stream(movie_update_stream(1, batch, seed=batch))
        naive_ops = naive.stats.mean_update_operations
        nested_ops = nested.stats.mean_update_operations
        table.add_row(
            n=size,
            d=batch,
            d_over_n=fraction,
            naive_ops=naive_ops,
            nested_ivm_ops=nested_ops,
            speedup=ratio(naive_ops, nested_ops),
        )
    table.add_note("paper §2.2: IVM wins when d ≪ n; the advantage disappears as d → n")
    return table


ALL_EXPERIMENTS = {
    "E1": run_e1_related_ivm,
    "E2": run_e2_filter_delta,
    "E3": run_e3_selfjoin_recursive,
    "E4": run_e4_flat_join,
    "E5": run_e5_shredding_roundtrip,
    "E6": run_e6_cost_model,
    "E7": run_e7_degree_towers,
    "E8": run_e8_deep_updates,
    "E9": run_e9_circuit_cones,
    "E10": run_e10_crossover,
}

_FULL_PARAMS = {
    "E1": dict(sizes=(100, 200, 400, 800, 1600), batch_size=8, num_updates=3),
    "E2": dict(sizes=(1000, 2000, 4000, 8000), batch_size=8, num_updates=3),
    "E3": dict(sizes=(50, 100, 200), inner_cardinality=5, num_updates=3),
    "E4": dict(sizes=(500, 1000, 2000), batch_size=8, num_updates=3),
    "E5": dict(depths=(1, 2, 3), top_cardinality=200, inner_cardinality=5),
    "E6": dict(sizes=(100, 200, 400)),
    "E7": dict(max_degree=6),
    "E8": dict(sizes=(100, 200, 400), inner_cardinality=6, touched_labels=3),
    "E9": dict(slot_counts=(8, 16, 32, 64, 128), k=4),
    "E10": dict(size=400, batch_fractions=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0)),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run and print one experiment or all of them."""
    parser = argparse.ArgumentParser(description="Run the reproduction experiments (E1–E10)")
    parser.add_argument("experiment", nargs="?", default="all", help="experiment id (E1…E10) or 'all'")
    parser.add_argument("--full", action="store_true", help="use the larger parameter sets")
    args = parser.parse_args(argv)

    chosen = list(ALL_EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment.upper()]
    for identifier in chosen:
        if identifier not in ALL_EXPERIMENTS:
            print(f"unknown experiment {identifier!r}; valid ids: {', '.join(ALL_EXPERIMENTS)}")
            return 2
        runner = ALL_EXPERIMENTS[identifier]
        params = _FULL_PARAMS.get(identifier, {}) if args.full else {}
        table = runner(**params)
        print(table.format())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
