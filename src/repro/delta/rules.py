"""The delta transformation (Figure 4) for IncNRC+ / IncNRC+_l.

Given a query ``h[R]`` and an update ``ΔR`` applied through bag union, the
delta query ``δ_R(h)[R, ΔR]`` satisfies (Proposition 4.1)::

    h[R ⊎ ΔR] = h[R] ⊎ δ_R(h)[R, ΔR].

The transformation is *closed*: deltas are again IncNRC+ expressions, which
is what enables recursive IVM (higher-order deltas, Section 4.1).

Generalization to several updated sources.  The paper presents the rules for
a single updated relation and notes the extension to many relations is
straightforward.  We implement the transformation with respect to a *set of
updated sources* (relations and/or database dictionaries): ``δ(R)`` is the
update symbol when ``R`` is in the target set and the empty bag otherwise,
and all structural rules are unchanged.  Differentiating with respect to a
``let``-bound variable — needed by the ``let`` rule — uses the same machinery
with the variable name as the target and a fresh ``ΔX`` bag variable as its
update symbol.

Expressions whose singleton bodies depend on an updated source are *not*
efficiently incrementalizable (they are outside IncNRC+ relative to the
update); :func:`delta` raises :class:`~repro.errors.NotInFragmentError` for
them — shred the query first (Section 5, :mod:`repro.shredding`).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.errors import NotInFragmentError
from repro.nrc import ast
from repro.nrc.analysis import referenced_sources
from repro.nrc.ast import Expr
from repro.nrc.rewrite import simplify

__all__ = ["delta", "delta_var_name", "depends_on"]


def delta_var_name(name: str, order: int = 1) -> str:
    """Name of the update symbol bound for a ``let`` variable (``ΔX``, ``Δ²X``…)."""
    if order == 1:
        return f"Δ{name}"
    return f"Δ{order}{name}"


def depends_on(
    expr: Expr,
    targets: FrozenSet[str],
    dependent_vars: FrozenSet[str] = frozenset(),
) -> bool:
    """True iff ``expr`` depends on one of the updated sources.

    ``dependent_vars`` lists ``let``-bound variables whose definitions depend
    on the targets; references to them count as dependence (cf. Lemma 1).
    """
    if isinstance(expr, (ast.Relation, ast.DictVar)):
        return expr.name in targets
    if isinstance(expr, ast.BagVar):
        # A bag variable depends on the update either because its definition
        # does (tracked through ``dependent_vars`` by the ``let`` rule) or
        # because the variable itself is the differentiation target (used
        # when deriving δ_X(e) for the ``let`` rule).
        return expr.name in dependent_vars or expr.name in targets
    if isinstance(expr, ast.Let):
        bound_depends = depends_on(expr.bound, targets, dependent_vars)
        if bound_depends:
            return depends_on(expr.body, targets, dependent_vars | {expr.name})
        return depends_on(expr.body, targets, dependent_vars - {expr.name})
    return any(depends_on(child, targets, dependent_vars) for child in expr.children())


def delta(
    expr: Expr,
    targets: Optional[Iterable[str]] = None,
    order: int = 1,
    auto_simplify: bool = True,
) -> Expr:
    """Derive the delta query of ``expr`` with respect to the updated sources.

    Parameters
    ----------
    expr:
        The query to differentiate (must be in IncNRC+ with respect to the
        targets: no ``sng`` body may depend on an updated source).
    targets:
        Names of the updated relations/dictionaries.  Defaults to every
        source referenced by ``expr``.
    order:
        Derivation order: the update symbols introduced are ``Δ^order R``.
        Recursive IVM derives the k-th delta with ``order=k``.
    auto_simplify:
        Apply the algebraic simplifier to the result (removes the empty-bag
        branches produced by input-independent sub-expressions).
    """
    if order < 1:
        raise ValueError("delta order must be at least 1")
    target_set = frozenset(targets) if targets is not None else referenced_sources(expr)
    transformer = _DeltaTransformer(target_set, order)
    result = transformer.transform(expr, frozenset())
    return simplify(result) if auto_simplify else result


class _DeltaTransformer:
    """Single-pass implementation of the Figure 4 rules."""

    def __init__(self, targets: FrozenSet[str], order: int) -> None:
        self._targets = targets
        self._order = order

    # ------------------------------------------------------------------ #
    def transform(self, expr: Expr, dependent_vars: FrozenSet[str]) -> Expr:
        # Lemma 1: the delta of an expression that does not depend on the
        # updated sources is the empty bag (or the empty dictionary).
        if not depends_on(expr, self._targets, dependent_vars):
            return self._empty_like(expr)
        method = getattr(self, f"_delta_{type(expr).__name__}", None)
        if method is None:
            raise NotInFragmentError(
                f"no delta rule for node {type(expr).__name__}"
            )
        return method(expr, dependent_vars)

    @staticmethod
    def _empty_like(expr: Expr) -> Expr:
        dict_nodes = (
            ast.DictSingleton,
            ast.DictEmpty,
            ast.DictUnion,
            ast.DictAdd,
            ast.DictVar,
            ast.DeltaDictVar,
        )
        if isinstance(expr, dict_nodes):
            return ast.DictEmpty()
        return ast.Empty()

    # Sources -------------------------------------------------------------
    def _delta_Relation(self, expr: ast.Relation, dependent_vars: FrozenSet[str]) -> Expr:
        return ast.DeltaRelation(expr.name, expr.schema, self._order)

    def _delta_DictVar(self, expr: ast.DictVar, dependent_vars: FrozenSet[str]) -> Expr:
        return ast.DeltaDictVar(expr.name, expr.value_type, self._order)

    def _delta_BagVar(self, expr: ast.BagVar, dependent_vars: FrozenSet[str]) -> Expr:
        # Reached only when differentiating with respect to a let variable
        # (the variable is then a member of the target set).
        if expr.name in self._targets:
            return ast.BagVar(delta_var_name(expr.name, self._order))
        return ast.Empty()

    # Structural rules ------------------------------------------------------
    def _delta_Let(self, expr: ast.Let, dependent_vars: FrozenSet[str]) -> Expr:
        bound_depends = depends_on(expr.bound, self._targets, dependent_vars)
        body_vars = dependent_vars | {expr.name} if bound_depends else dependent_vars - {expr.name}

        delta_bound = self.transform(expr.bound, dependent_vars)
        delta_body_wrt_sources = self.transform(expr.body, body_vars)

        # δ_X(e2): differentiate the body with respect to the let variable.
        var_transformer = _DeltaTransformer(frozenset({expr.name}), self._order)
        delta_body_wrt_var = var_transformer.transform(expr.body, frozenset())
        # δ_R(δ_X(e2)).
        delta_both = self.transform(delta_body_wrt_var, body_vars)

        combined = ast.Union((delta_body_wrt_sources, delta_body_wrt_var, delta_both))
        return ast.Let(
            expr.name,
            expr.bound,
            ast.Let(delta_var_name(expr.name, self._order), delta_bound, combined),
        )

    def _delta_For(self, expr: ast.For, dependent_vars: FrozenSet[str]) -> Expr:
        delta_source = self.transform(expr.source, dependent_vars)
        delta_body = self.transform(expr.body, dependent_vars)
        return ast.Union(
            (
                ast.For(expr.var, delta_source, expr.body),
                ast.For(expr.var, expr.source, delta_body),
                ast.For(expr.var, delta_source, delta_body),
            )
        )

    def _delta_Product(self, expr: ast.Product, dependent_vars: FrozenSet[str]) -> Expr:
        """n-ary generalization of ``δ(e1×e2) = δe1×e2 ⊎ e1×δe2 ⊎ δe1×δe2``.

        Every non-empty subset of factor positions contributes one term in
        which exactly those factors are replaced by their deltas.
        """
        factors = expr.factors
        deltas = [self.transform(factor, dependent_vars) for factor in factors]
        terms = []
        for mask in range(1, 1 << len(factors)):
            chosen = tuple(
                deltas[index] if mask & (1 << index) else factors[index]
                for index in range(len(factors))
            )
            terms.append(ast.Product(chosen))
        return ast.Union(tuple(terms))

    def _delta_Union(self, expr: ast.Union, dependent_vars: FrozenSet[str]) -> Expr:
        return ast.Union(tuple(self.transform(term, dependent_vars) for term in expr.terms))

    def _delta_Negate(self, expr: ast.Negate, dependent_vars: FrozenSet[str]) -> Expr:
        return ast.Negate(self.transform(expr.body, dependent_vars))

    def _delta_Flatten(self, expr: ast.Flatten, dependent_vars: FrozenSet[str]) -> Expr:
        return ast.Flatten(self.transform(expr.body, dependent_vars))

    def _delta_Sng(self, expr: ast.Sng, dependent_vars: FrozenSet[str]) -> Expr:
        # Only reached when the body depends on an updated source (otherwise
        # the Lemma 1 shortcut returned ∅): this is the unrestricted sng(e)
        # whose efficient incrementalization requires deep updates.
        raise NotInFragmentError(
            "sng(e) with an update-dependent body cannot be incrementalized "
            "directly; apply the shredding transformation first (Section 5)"
        )

    # Dictionary rules ------------------------------------------------------
    def _delta_DictSingleton(
        self, expr: ast.DictSingleton, dependent_vars: FrozenSet[str]
    ) -> Expr:
        return ast.DictSingleton(
            expr.iota,
            expr.params,
            self.transform(expr.body, dependent_vars),
            expr.value_type,
            expr.param_types,
        )

    def _delta_DictUnion(self, expr: ast.DictUnion, dependent_vars: FrozenSet[str]) -> Expr:
        return ast.DictUnion(
            tuple(self.transform(term, dependent_vars) for term in expr.terms)
        )

    def _delta_DictAdd(self, expr: ast.DictAdd, dependent_vars: FrozenSet[str]) -> Expr:
        return ast.DictAdd(
            tuple(self.transform(term, dependent_vars) for term in expr.terms)
        )

    def _delta_DictLookup(self, expr: ast.DictLookup, dependent_vars: FrozenSet[str]) -> Expr:
        return ast.DictLookup(
            self.transform(expr.dictionary, dependent_vars), expr.var, expr.path
        )
