"""Query degree: how many delta derivations until input independence.

Section 4.1 associates to every IncNRC+ expression a degree ``deg_φ(h)``;
Theorem 2 shows ``deg(δ(h)) = deg(h) − 1`` for input-dependent ``h``, so the
degree is exactly the number of delta derivations needed before the resulting
expression no longer depends on the database (and recursive IVM can stop).

As with :mod:`repro.delta.rules`, the degree is computed with respect to a
set of updated sources; a relation contributes 1 only if it is in the target
set (an un-updated relation behaves like a constant for the purposes of the
delta tower).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.errors import NotInFragmentError
from repro.nrc import ast
from repro.nrc.analysis import referenced_sources
from repro.nrc.ast import Expr

__all__ = ["degree"]


def degree(
    expr: Expr,
    targets: Optional[Iterable[str]] = None,
    var_degrees: Optional[Dict[str, int]] = None,
) -> int:
    """Return ``deg_φ(expr)`` with respect to the updated sources.

    ``var_degrees`` is the assignment ``φ`` of degrees to free bag variables
    (defaults to 0 for unknown variables, i.e. they are treated as
    input-independent constants).
    """
    target_set = frozenset(targets) if targets is not None else referenced_sources(expr)
    return _degree(expr, target_set, dict(var_degrees or {}))


def _degree(expr: Expr, targets: FrozenSet[str], phi: Dict[str, int]) -> int:
    if isinstance(expr, ast.Relation):
        return 1 if expr.name in targets else 0
    if isinstance(expr, ast.DictVar):
        return 1 if expr.name in targets else 0
    if isinstance(expr, (ast.DeltaRelation, ast.DeltaDictVar)):
        return 0
    if isinstance(expr, ast.BagVar):
        return phi.get(expr.name, 0)
    if isinstance(
        expr,
        (ast.SngVar, ast.SngProj, ast.SngUnit, ast.Empty, ast.Pred, ast.InLabel, ast.DictEmpty),
    ):
        return 0
    if isinstance(expr, ast.Sng):
        body_degree = _degree(expr.body, targets, phi)
        if body_degree > 0:
            raise NotInFragmentError(
                "degree is defined for IncNRC+ only; sng(e) has an "
                "update-dependent body — shred the query first"
            )
        return 0
    if isinstance(expr, ast.Union):
        return max(_degree(term, targets, phi) for term in expr.terms)
    if isinstance(expr, ast.For):
        return _degree(expr.source, targets, phi) + _degree(expr.body, targets, phi)
    if isinstance(expr, ast.Product):
        return sum(_degree(factor, targets, phi) for factor in expr.factors)
    if isinstance(expr, (ast.Flatten, ast.Negate)):
        return _degree(expr.body, targets, phi)
    if isinstance(expr, ast.Let):
        bound_degree = _degree(expr.bound, targets, phi)
        inner = dict(phi)
        inner[expr.name] = bound_degree
        return _degree(expr.body, targets, inner)
    if isinstance(expr, ast.DictSingleton):
        return _degree(expr.body, targets, phi)
    if isinstance(expr, (ast.DictUnion, ast.DictAdd)):
        return max(_degree(term, targets, phi) for term in expr.terms)
    if isinstance(expr, ast.DictLookup):
        return _degree(expr.dictionary, targets, phi)
    raise NotInFragmentError(f"no degree rule for node {type(expr).__name__}")
