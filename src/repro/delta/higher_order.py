"""Higher-order delta derivation (recursive IVM), Section 4.1.

Starting from a query ``h`` one can keep differentiating: ``δ(h)`` maintains
``h``, ``δ²(h)`` maintains (the partial evaluation of) ``δ(h)``, and so on.
Theorem 2 guarantees that the degree drops by one with every derivation, so
after ``deg(h)`` steps the delta is input-independent and the tower is
complete.  :func:`delta_tower` builds exactly that finite tower; the runtime
that materializes and maintains it lives in :mod:`repro.ivm.recursive`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.delta.degree import degree
from repro.delta.rules import delta
from repro.nrc.analysis import referenced_sources
from repro.nrc.ast import Expr

__all__ = ["DeltaTower", "delta_tower"]

#: Safety bound: the paper proves towers are finite (height = deg(h)), but a
#: defensive cap keeps an accidental misuse from looping.
_MAX_TOWER_HEIGHT = 64


@dataclass(frozen=True)
class DeltaTower:
    """A finite tower ``h, δ(h), δ²(h), …, δ^k(h)`` of higher-order deltas.

    ``levels[i]`` is ``δ^i(h)`` (``levels[0]`` is the original query) and the
    ``i``-th derivation introduced update symbols of order ``i``.  The last
    level is input-independent: it depends only on the update symbols, which
    is where recursive IVM stops deriving.
    """

    targets: Tuple[str, ...]
    levels: Tuple[Expr, ...]

    @property
    def height(self) -> int:
        """Number of delta derivations performed (``len(levels) - 1``)."""
        return len(self.levels) - 1

    @property
    def query(self) -> Expr:
        return self.levels[0]

    def level(self, index: int) -> Expr:
        """Return ``δ^index(h)``."""
        return self.levels[index]

    def degrees(self) -> Tuple[int, ...]:
        """Degrees of every level — Theorem 2 predicts ``deg(h), deg(h)-1, …, 0``."""
        return tuple(degree(level, self.targets) for level in self.levels)


def delta_tower(
    expr: Expr,
    targets: Optional[Iterable[str]] = None,
    max_height: Optional[int] = None,
) -> DeltaTower:
    """Derive the full tower of higher-order deltas of ``expr``.

    Derivation stops as soon as the latest delta no longer depends on the
    updated sources (degree 0), or when ``max_height`` derivations have been
    performed.
    """
    target_tuple = (
        tuple(sorted(targets)) if targets is not None else tuple(sorted(referenced_sources(expr)))
    )
    bound = max_height if max_height is not None else _MAX_TOWER_HEIGHT

    levels: List[Expr] = [expr]
    current = expr
    order = 1
    while order <= bound:
        if degree(current, target_tuple) == 0:
            break
        current = delta(current, target_tuple, order=order)
        levels.append(current)
        order += 1
    return DeltaTower(target_tuple, tuple(levels))
