"""Delta derivation for IncNRC+: delta rules, degrees and higher-order towers."""

from repro.delta.degree import degree
from repro.delta.higher_order import DeltaTower, delta_tower
from repro.delta.rules import delta, delta_var_name, depends_on

__all__ = [
    "degree",
    "DeltaTower",
    "delta_tower",
    "delta",
    "delta_var_name",
    "depends_on",
]
