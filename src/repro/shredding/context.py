"""Shredding contexts: the ``A^Γ`` component of shredded values and queries.

Section 5.1 maps every type ``A`` to a flat representation ``A^F`` and a
*context* ``A^Γ`` holding the label dictionaries for the inner bags::

    Base^Γ = 1      (A1 × A2)^Γ = A1^Γ × A2^Γ
    Bag(C)^Γ = (L ↦ Bag(C^F)) × C^Γ

A context is therefore a tree shaped like the type, with one dictionary per
bag position.  The same tree shape is used in two flavours:

* **symbolic contexts** — the dictionary slots hold IncNRC+_l *expressions*
  (``DictSingleton``, ``DictUnion``, ``DictVar``, …).  This is what the query
  shredder produces as ``h^Γ``.
* **value contexts** — the dictionary slots hold evaluated
  :class:`~repro.dictionaries.DictValue` objects.  This is what
  value shredding produces and what unshredding consumes.

:class:`EmptyContext` is the neutral element produced by shredding ``∅``
(whose inner-bag structure is unknown); it merges transparently with any
other context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Tuple

from repro.errors import ShreddingError
from repro.nrc import ast
from repro.nrc.ast import Expr
from repro.nrc.types import BagType, BaseType, DictType, LabelType, ProductType, Type, UnitType
from repro.dictionaries import DictValue

__all__ = [
    "Context",
    "UnitContext",
    "TupleContext",
    "BagContext",
    "EmptyContext",
    "UNIT_CONTEXT",
    "EMPTY_CONTEXT",
    "empty_context_for_type",
    "merge_contexts",
    "map_context_dicts",
    "iter_context_dicts",
]


class Context:
    """Abstract base class of shredding contexts (symbolic or value-level)."""

    def project(self, index: int) -> "Context":
        """Component of a tuple context (contexts of other shapes reject this)."""
        raise ShreddingError(f"context {self!r} has no component {index}")

    def project_path(self, path: Tuple[int, ...]) -> "Context":
        current: Context = self
        for index in path:
            current = current.project(index)
        return current


@dataclass(frozen=True)
class UnitContext(Context):
    """Context of base, unit and label types — there is nothing to record."""

    def project(self, index: int) -> "Context":
        # Projections of base-typed tuples reach unit contexts; stay unit.
        return self

    def __repr__(self) -> str:
        return "⟨⟩Γ"


@dataclass(frozen=True)
class TupleContext(Context):
    """Component-wise context of a product type."""

    components: Tuple[Context, ...]

    def project(self, index: int) -> Context:
        if index >= len(self.components):
            raise ShreddingError(f"tuple context has no component {index}")
        return self.components[index]

    def __repr__(self) -> str:
        return "⟨" + ", ".join(repr(component) for component in self.components) + "⟩Γ"


@dataclass(frozen=True)
class BagContext(Context):
    """Context of a bag type: a dictionary plus the context of the elements.

    ``dictionary`` is either an IncNRC+_l expression of dictionary type
    (symbolic contexts) or a :class:`DictValue` (value contexts).
    """

    dictionary: Any
    element: Context

    def __repr__(self) -> str:
        return f"(dict={self.dictionary!r}, {self.element!r})"


@dataclass(frozen=True)
class EmptyContext(Context):
    """Neutral context: merges with anything, projects to itself."""

    def project(self, index: int) -> "Context":
        return self

    def __repr__(self) -> str:
        return "∅Γ"


UNIT_CONTEXT = UnitContext()
EMPTY_CONTEXT = EmptyContext()


def empty_context_for_type(type_: Type, symbolic: bool = True) -> Context:
    """The context of the right shape for ``type_`` with empty dictionaries."""
    if isinstance(type_, (BaseType, UnitType, LabelType)):
        return UNIT_CONTEXT
    if isinstance(type_, ProductType):
        return TupleContext(
            tuple(empty_context_for_type(component, symbolic) for component in type_.components)
        )
    if isinstance(type_, BagType):
        from repro.nrc.types import shred_flat_type
        from repro.dictionaries import EMPTY_DICT

        dictionary: Any
        if symbolic:
            dictionary = ast.DictEmpty(BagType(shred_flat_type(type_.element)))
        else:
            dictionary = EMPTY_DICT
        return BagContext(dictionary, empty_context_for_type(type_.element, symbolic))
    raise ShreddingError(f"cannot build a context for type {type_!r}")


def merge_contexts(
    left: Context,
    right: Context,
    combine_dicts: Callable[[Any, Any], Any],
) -> Context:
    """Merge two contexts of the same shape, combining dictionary slots.

    ``combine_dicts`` receives the two dictionary slots of matching bag
    positions — label union for the shredding of ``⊎``, pointwise addition
    when applying updates.
    """
    if isinstance(left, EmptyContext):
        return right
    if isinstance(right, EmptyContext):
        return left
    if isinstance(left, UnitContext) and isinstance(right, UnitContext):
        return UNIT_CONTEXT
    if isinstance(left, TupleContext) and isinstance(right, TupleContext):
        if len(left.components) != len(right.components):
            raise ShreddingError("cannot merge tuple contexts of different arities")
        return TupleContext(
            tuple(
                merge_contexts(l, r, combine_dicts)
                for l, r in zip(left.components, right.components)
            )
        )
    if isinstance(left, BagContext) and isinstance(right, BagContext):
        return BagContext(
            combine_dicts(left.dictionary, right.dictionary),
            merge_contexts(left.element, right.element, combine_dicts),
        )
    raise ShreddingError(f"cannot merge contexts {left!r} and {right!r}")


def map_context_dicts(context: Context, transform: Callable[[Any], Any]) -> Context:
    """Apply ``transform`` to every dictionary slot, keeping the shape."""
    if isinstance(context, (UnitContext, EmptyContext)):
        return context
    if isinstance(context, TupleContext):
        return TupleContext(
            tuple(map_context_dicts(component, transform) for component in context.components)
        )
    if isinstance(context, BagContext):
        return BagContext(
            transform(context.dictionary), map_context_dicts(context.element, transform)
        )
    raise ShreddingError(f"unknown context {context!r}")


def iter_context_dicts(context: Context):
    """Yield ``(path, dictionary)`` pairs for every bag position, pre-order.

    The path records how the position is reached: integers are tuple
    components and the string ``"e"`` descends into a bag's element type.
    """

    def _walk(node: Context, path: Tuple[Any, ...]):
        if isinstance(node, TupleContext):
            for index, component in enumerate(node.components):
                yield from _walk(component, path + (index,))
        elif isinstance(node, BagContext):
            yield path, node.dictionary
            yield from _walk(node.element, path + ("e",))

    yield from _walk(context, ())
