"""The query shredding transformation (Figure 6): NRC+ → IncNRC+_l.

``shred_query`` takes any NRC+ query ``h[R] : Bag(B)`` to

* ``h^F`` — an IncNRC+_l expression over the *shredded inputs* (flat
  relations and input dictionaries, see
  :mod:`repro.shredding.shred_database`) computing the flat representation of
  the output, and
* ``h^Γ`` — a symbolic context (a tree of dictionary expressions, shaped like
  the output element type ``B``) defining every label that ``h^F`` can emit.

The resulting expressions contain no unrestricted singleton: every
``sng_ι(e)`` is replaced by the label constructor ``inL_ι`` and a dictionary
``[(ι, Π) ↦ e^F]``, exactly as in Section 5.1.  They are therefore
efficiently incrementalizable (Theorem 5), which is how the full NRC+ is
maintained.

Two presentational deviations from Figure 6, both semantics-preserving:

* the paper binds contexts with ``let x^Γ := e1^Γ in …``; we substitute the
  context tree of ``e1`` directly for ``x^Γ`` (contexts are pure
  expressions), and
* products and projections are n-ary, matching the rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bag.bag import Bag
from repro.errors import ShreddingError
from repro.nrc import ast
from repro.nrc.analysis import annotate_sng_indices, free_elem_vars
from repro.nrc.ast import Expr
from repro.nrc.builders import fresh_var
from repro.nrc.evaluator import Environment, evaluate, evaluate_bag
from repro.nrc.rewrite import simplify
from repro.nrc.typecheck import project_type
from repro.nrc.types import (
    BagType,
    ProductType,
    Type,
    UNIT,
    shred_flat_type,
)
from repro.shredding.context import (
    BagContext,
    Context,
    EMPTY_CONTEXT,
    EmptyContext,
    TupleContext,
    UNIT_CONTEXT,
    map_context_dicts,
    merge_contexts,
)
from repro.dictionaries import DictValue
from repro.shredding.shred_database import flat_relation_name, input_context_for
from repro.shredding.shred_values import unshred_bag

__all__ = ["ShreddedQuery", "shred_query"]


@dataclass(frozen=True)
class ShreddedQuery:
    """The result of shredding a query: flat part, context and output type."""

    flat: Expr
    context: Context
    output_type: Optional[BagType]

    @property
    def flat_output_type(self) -> Optional[BagType]:
        if self.output_type is None:
            return None
        return BagType(shred_flat_type(self.output_type.element))

    # ------------------------------------------------------------------ #
    # Evaluation helpers (used by tests, examples and the naive baselines;
    # the incremental engine lives in repro.ivm.nested).
    # ------------------------------------------------------------------ #
    def evaluate_flat(self, env: Environment) -> Bag:
        """Evaluate ``h^F`` over a shredded environment."""
        return evaluate_bag(self.flat, env)

    def evaluate_context(self, env: Environment) -> Context:
        """Evaluate every dictionary of ``h^Γ`` to a dictionary value."""

        def _to_value(dictionary) -> DictValue:
            value = evaluate(dictionary, env)
            if not isinstance(value, DictValue):
                raise ShreddingError("context expressions must evaluate to dictionaries")
            return value

        return map_context_dicts(self.context, _to_value)

    def evaluate_nested(self, env: Environment) -> Bag:
        """Evaluate the shredded query and nest the result back (Theorem 8)."""
        if self.output_type is None:
            raise ShreddingError("cannot nest a result of unknown output type")
        flat_result = self.evaluate_flat(env)
        value_context = self.evaluate_context(env)
        return unshred_bag(flat_result, self.output_type.element, value_context)


def shred_query(expr: Expr, iota_prefix: str = "ι") -> ShreddedQuery:
    """Shred an NRC+ query into its flat part and symbolic context."""
    annotated = annotate_sng_indices(expr, prefix=iota_prefix)
    shredder = _QueryShredder()
    flat, context, output_type = shredder.shred(annotated, _Scope())
    flat = simplify(flat)
    context = map_context_dicts(context, simplify)
    if output_type is not None and not isinstance(output_type, BagType):
        raise ShreddingError("shredded queries must have bag type")
    return ShreddedQuery(flat, context, output_type)


class _Scope:
    """Variable information tracked while descending the query."""

    def __init__(self) -> None:
        self.elem_types: Dict[str, Type] = {}
        self.elem_contexts: Dict[str, Context] = {}
        self.bag_vars: Dict[str, Tuple[str, Context, Optional[BagType]]] = {}

    def copy(self) -> "_Scope":
        scope = _Scope()
        scope.elem_types = dict(self.elem_types)
        scope.elem_contexts = dict(self.elem_contexts)
        scope.bag_vars = dict(self.bag_vars)
        return scope


class _QueryShredder:
    """Implementation of the Figure 6 rules."""

    # ------------------------------------------------------------------ #
    def shred(
        self, expr: Expr, scope: _Scope
    ) -> Tuple[Expr, Context, Optional[BagType]]:
        method = getattr(self, f"_shred_{type(expr).__name__}", None)
        if method is None:
            raise ShreddingError(f"no shredding rule for node {type(expr).__name__}")
        return method(expr, scope)

    # Sources -------------------------------------------------------------
    def _shred_Relation(self, expr: ast.Relation, scope: _Scope):
        element_type = expr.schema.element
        flat = ast.Relation(flat_relation_name(expr.name), BagType(shred_flat_type(element_type)))
        context = input_context_for(expr.name, element_type)
        return flat, context, expr.schema

    def _shred_BagVar(self, expr: ast.BagVar, scope: _Scope):
        if expr.name not in scope.bag_vars:
            raise ShreddingError(f"unbound bag variable {expr.name!r} during shredding")
        flat_name, context, bag_type = scope.bag_vars[expr.name]
        return ast.BagVar(flat_name), context, bag_type

    def _shred_Let(self, expr: ast.Let, scope: _Scope):
        bound_flat, bound_context, bound_type = self.shred(expr.bound, scope)
        flat_name = f"{expr.name}__F"
        inner = scope.copy()
        inner.bag_vars[expr.name] = (flat_name, bound_context, bound_type)
        body_flat, body_context, body_type = self.shred(expr.body, inner)
        return ast.Let(flat_name, bound_flat, body_flat), body_context, body_type

    # Singletons ------------------------------------------------------------
    def _shred_SngVar(self, expr: ast.SngVar, scope: _Scope):
        element_type = scope.elem_types.get(expr.var)
        context = scope.elem_contexts.get(expr.var, UNIT_CONTEXT)
        bag_type = BagType(element_type) if element_type is not None else None
        return ast.SngVar(expr.var), context, bag_type

    def _shred_SngProj(self, expr: ast.SngProj, scope: _Scope):
        element_type = scope.elem_types.get(expr.var)
        projected: Optional[Type] = None
        if element_type is not None:
            projected = project_type(element_type, expr.path, "shredding sng(π)")
        context = scope.elem_contexts.get(expr.var, UNIT_CONTEXT).project_path(expr.path)
        bag_type = BagType(projected) if projected is not None else None
        return ast.SngProj(expr.var, expr.path), context, bag_type

    def _shred_SngUnit(self, expr: ast.SngUnit, scope: _Scope):
        return ast.SngUnit(), UNIT_CONTEXT, BagType(UNIT)

    def _shred_Sng(self, expr: ast.Sng, scope: _Scope):
        if expr.iota is None:
            raise ShreddingError("sng occurrence without a static index; annotate first")
        body_flat, body_context, body_type = self.shred(expr.body, scope)
        params = tuple(sorted(free_elem_vars(body_flat)))
        param_types = tuple(
            shred_flat_type(scope.elem_types[param])
            if param in scope.elem_types
            else UNIT
            for param in params
        )
        value_type = None
        if body_type is not None:
            value_type = BagType(shred_flat_type(body_type.element))
        dictionary = ast.DictSingleton(
            expr.iota, params, body_flat, value_type, param_types
        )
        flat = ast.InLabel(expr.iota, params)
        context = BagContext(dictionary, body_context)
        output_type = BagType(body_type) if body_type is not None else None
        return flat, context, output_type

    # Constants ---------------------------------------------------------------
    def _shred_Empty(self, expr: ast.Empty, scope: _Scope):
        if expr.element_type is None:
            return ast.Empty(), EMPTY_CONTEXT, None
        flat = ast.Empty(shred_flat_type(expr.element_type))
        return flat, EMPTY_CONTEXT, BagType(expr.element_type)

    def _shred_Pred(self, expr: ast.Pred, scope: _Scope):
        return expr, UNIT_CONTEXT, BagType(UNIT)

    # Structural constructs -----------------------------------------------------
    def _shred_For(self, expr: ast.For, scope: _Scope):
        source_flat, source_context, source_type = self.shred(expr.source, scope)
        inner = scope.copy()
        if source_type is not None:
            inner.elem_types[expr.var] = source_type.element
        inner.elem_contexts[expr.var] = source_context
        body_flat, body_context, body_type = self.shred(expr.body, inner)
        return ast.For(expr.var, source_flat, body_flat), body_context, body_type

    def _shred_Flatten(self, expr: ast.Flatten, scope: _Scope):
        body_flat, body_context, body_type = self.shred(expr.body, scope)
        output_type: Optional[BagType] = None
        if body_type is not None:
            inner = body_type.element
            if not isinstance(inner, BagType):
                raise ShreddingError("flatten applied to a bag whose elements are not bags")
            output_type = inner
        if isinstance(body_context, EmptyContext):
            return ast.Empty(), EMPTY_CONTEXT, output_type
        if not isinstance(body_context, BagContext):
            raise ShreddingError("flatten requires a bag context for its body")
        label_var = fresh_var("_l")
        flat = ast.For(label_var, body_flat, ast.DictLookup(body_context.dictionary, label_var))
        return flat, body_context.element, output_type

    def _shred_Product(self, expr: ast.Product, scope: _Scope):
        flats = []
        contexts = []
        element_types = []
        known_types = True
        for factor in expr.factors:
            factor_flat, factor_context, factor_type = self.shred(factor, scope)
            flats.append(factor_flat)
            contexts.append(factor_context)
            if factor_type is None:
                known_types = False
            else:
                element_types.append(factor_type.element)
        output_type = (
            BagType(ProductType(tuple(element_types))) if known_types else None
        )
        return ast.Product(tuple(flats)), TupleContext(tuple(contexts)), output_type

    def _shred_Union(self, expr: ast.Union, scope: _Scope):
        flats = []
        context: Context = EMPTY_CONTEXT
        output_type: Optional[BagType] = None
        for term in expr.terms:
            term_flat, term_context, term_type = self.shred(term, scope)
            flats.append(term_flat)
            context = merge_contexts(context, term_context, self._union_dict_exprs)
            if output_type is None:
                output_type = term_type
        return ast.Union(tuple(flats)), context, output_type

    def _shred_Negate(self, expr: ast.Negate, scope: _Scope):
        body_flat, body_context, body_type = self.shred(expr.body, scope)
        return ast.Negate(body_flat), body_context, body_type

    @staticmethod
    def _union_dict_exprs(left, right):
        if left == right:
            return left
        return ast.DictUnion((left, right))
