"""Consistency of shredded values (Appendix C.3, Definitions 1 and 2).

A shredded bag ``(R^F, R^Γ)`` is *consistent* when every label occurring in
the flat part (and, recursively, in dictionary definitions) has a definition
in the dictionary of the corresponding bag position.  An *update* is
consistent with respect to an existing shredded value when, additionally,
fresh labels introduced by the update do not collide with existing labels.

The checks here are used by the test-suite (Lemmas 11–13: shredding produces
consistent values, shredded queries preserve consistency, deltas of shredded
queries preserve update consistency) and defensively by the nested IVM engine
when applying deep updates.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Set

from repro.bag.bag import Bag
from repro.errors import ConsistencyError
from repro.nrc.types import BagType, BaseType, LabelType, ProductType, Type, UnitType
from repro.shredding.context import BagContext, Context, EmptyContext, TupleContext, UnitContext
from repro.dictionaries import DictValue
from repro.labels import Label

__all__ = ["check_consistency", "is_consistent", "collect_labels", "check_update_consistency"]


def collect_labels(flat: Any) -> FrozenSet[Label]:
    """All labels occurring in a flat value / flat bag."""
    found: Set[Label] = set()

    def _walk(value: Any) -> None:
        if isinstance(value, Label):
            found.add(value)
        elif isinstance(value, tuple):
            for component in value:
                _walk(component)
        elif isinstance(value, Bag):
            for element in value.elements():
                _walk(element)

    _walk(flat)
    return frozenset(found)


def check_consistency(flat_bag: Bag, element_type: Type, context: Context) -> None:
    """Raise :class:`ConsistencyError` unless ``(flat_bag, context)`` is consistent."""
    for element in flat_bag.elements():
        _check_value(element, element_type, context)


def is_consistent(flat_bag: Bag, element_type: Type, context: Context) -> bool:
    """Boolean form of :func:`check_consistency`."""
    try:
        check_consistency(flat_bag, element_type, context)
    except ConsistencyError:
        return False
    return True


def _check_value(value: Any, type_: Type, context: Context) -> None:
    if isinstance(type_, (BaseType, UnitType, LabelType)):
        return
    if isinstance(type_, ProductType):
        if not isinstance(value, tuple) or len(value) != type_.arity:
            raise ConsistencyError(f"value {value!r} does not match type {type_.render()}")
        for index, (component, component_type) in enumerate(zip(value, type_.components)):
            _check_value(component, component_type, _component_context(context, index))
        return
    if isinstance(type_, BagType):
        if not isinstance(value, Label):
            raise ConsistencyError(
                f"flat value {value!r} should be a label at type {type_.render()}"
            )
        if isinstance(context, EmptyContext):
            raise ConsistencyError(f"label {value.render()} has no dictionary (empty context)")
        if not isinstance(context, BagContext):
            raise ConsistencyError(f"expected a bag context at type {type_.render()}")
        dictionary = context.dictionary
        if not isinstance(dictionary, DictValue):
            raise ConsistencyError("consistency checks require value contexts")
        if not dictionary.defines(value):
            raise ConsistencyError(f"label {value.render()} is undefined in its dictionary")
        for inner in dictionary.lookup(value).elements():
            _check_value(inner, type_.element, context.element)
        return
    raise ConsistencyError(f"cannot check values of type {type_.render()}")


def _component_context(context: Context, index: int) -> Context:
    if isinstance(context, (UnitContext, EmptyContext)):
        return context
    if isinstance(context, TupleContext):
        return context.project(index)
    raise ConsistencyError("tuple value paired with a non-tuple context")


def check_update_consistency(
    base_labels: FrozenSet[Label], update_labels: FrozenSet[Label], redefined: FrozenSet[Label]
) -> None:
    """Definition 2's requirements on a shredded update.

    ``base_labels`` are the labels defined by the existing shredded value,
    ``update_labels`` the labels defined by the update and ``redefined`` those
    update labels intended as modifications of existing definitions.  Fresh
    labels (``update_labels - redefined``) must not collide with existing
    ones.
    """
    fresh = update_labels - redefined
    collisions = fresh & base_labels
    if collisions:
        rendered = ", ".join(sorted(label.render() for label in collisions))
        raise ConsistencyError(f"update introduces non-fresh labels: {rendered}")
