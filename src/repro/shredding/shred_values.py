"""Shredding and nesting of *values* (Figure 9: ``s^F``, ``s^Γ`` and ``u``).

Shredding a nested bag ``R : Bag(A)`` produces

* a flat bag ``R^F : Bag(A^F)`` in which every inner bag is replaced by a
  label, and
* a value context ``R^Γ : A^Γ`` whose dictionaries map each label to the flat
  representation of the bag it stands for.

Unshredding (:func:`unshred_bag`) is the nesting function ``u``; Lemma 6
states it is a left inverse of shredding, which the test-suite checks both on
hand-written values and property-based random nested data.

Labels are memoized per distinct inner-bag value, so equal inner bags share a
label (the ``D_C`` mapping of the paper assigns one label per bag value).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.bag.bag import Bag, EMPTY_BAG
from repro.bag.values import is_base_value
from repro.errors import ShreddingError
from repro.nrc.types import BagType, BaseType, LabelType, ProductType, Type, UnitType
from repro.shredding.context import (
    BagContext,
    Context,
    EMPTY_CONTEXT,
    TupleContext,
    UNIT_CONTEXT,
    merge_contexts,
)
from repro.dictionaries import DictValue, MaterializedDict
from repro.labels import Label, LabelFactory

__all__ = ["ValueShredder", "shred_bag", "unshred_bag", "unshred_value"]


class ValueShredder:
    """Stateful shredder for input values.

    A single shredder instance should be used per database so that labels stay
    unique across relations and across successive updates (the consistency
    requirements of Definition 2).  Inner bags are memoized by value: the same
    bag value always receives the same label, and once a label's definition has
    been emitted it is not emitted again (so shredding an update never
    re-defines existing labels).
    """

    def __init__(self, factory: Optional[LabelFactory] = None) -> None:
        self._factory = factory or LabelFactory()
        self._labels_by_value: Dict[Bag, Label] = {}
        self._emitted: set = set()

    # ------------------------------------------------------------------ #
    def shred_bag(self, bag: Bag, element_type: Type, hint: str = "") -> Tuple[Bag, Context]:
        """Shred a top-level bag: flat bag of shredded elements + merged context."""
        flat_pairs = []
        context: Context = EMPTY_CONTEXT
        for element, multiplicity in bag.items():
            flat_element, element_context = self.shred_value(element, element_type, hint)
            flat_pairs.append((flat_element, multiplicity))
            context = merge_contexts(context, element_context, self._union_dicts)
        if isinstance(context, type(EMPTY_CONTEXT)):
            from repro.shredding.context import empty_context_for_type

            context = empty_context_for_type(element_type, symbolic=False)
        return Bag.from_pairs(flat_pairs), context

    def shred_value(self, value: Any, type_: Type, hint: str = "") -> Tuple[Any, Context]:
        """Shred a single value of the given type."""
        if isinstance(type_, (BaseType, LabelType)):
            return value, UNIT_CONTEXT
        if isinstance(type_, UnitType):
            return (), UNIT_CONTEXT
        if isinstance(type_, ProductType):
            if not isinstance(value, tuple) or len(value) != type_.arity:
                raise ShreddingError(f"value {value!r} does not match type {type_.render()}")
            flats = []
            contexts = []
            for component, component_type in zip(value, type_.components):
                flat, context = self.shred_value(component, component_type, hint)
                flats.append(flat)
                contexts.append(context)
            return tuple(flats), TupleContext(tuple(contexts))
        if isinstance(type_, BagType):
            if not isinstance(value, Bag):
                raise ShreddingError(f"value {value!r} is not a bag (type {type_.render()})")
            return self._shred_inner_bag(value, type_, hint)
        raise ShreddingError(f"cannot shred values of type {type_.render()}")

    # ------------------------------------------------------------------ #
    def _shred_inner_bag(self, value: Bag, type_: BagType, hint: str) -> Tuple[Label, Context]:
        label = self._labels_by_value.get(value)
        fresh = label is None
        if fresh:
            label = self._factory.fresh(hint)
            self._labels_by_value[value] = label

        contents, element_context = self.shred_bag(value, type_.element, hint)
        if fresh or label not in self._emitted:
            dictionary = MaterializedDict({label: contents})
            self._emitted.add(label)
        else:
            # The definition already exists in a previous shredding pass (for
            # example when shredding an update that deletes an existing tuple);
            # do not re-emit it — label union would otherwise see a duplicate.
            dictionary = MaterializedDict({})
        return label, BagContext(dictionary, element_context)

    @staticmethod
    def _union_dicts(left: Any, right: Any) -> DictValue:
        if not isinstance(left, DictValue) or not isinstance(right, DictValue):
            raise ShreddingError("value contexts must contain dictionary values")
        return left.label_union(right)


def shred_bag(
    bag: Bag, element_type: Type, factory: Optional[LabelFactory] = None
) -> Tuple[Bag, Context]:
    """One-shot convenience wrapper around :class:`ValueShredder`."""
    return ValueShredder(factory).shred_bag(bag, element_type)


# --------------------------------------------------------------------------- #
# Nesting (the function ``u`` of Figure 9)
# --------------------------------------------------------------------------- #
def unshred_value(flat: Any, type_: Type, context: Context) -> Any:
    """Rebuild the nested value represented by ``flat`` under ``context``."""
    if isinstance(type_, (BaseType, LabelType)):
        return flat
    if isinstance(type_, UnitType):
        return ()
    if isinstance(type_, ProductType):
        if not isinstance(flat, tuple) or len(flat) != type_.arity:
            raise ShreddingError(f"flat value {flat!r} does not match type {type_.render()}")
        return tuple(
            unshred_value(component, component_type, context.project(index))
            for index, (component, component_type) in enumerate(zip(flat, type_.components))
        )
    if isinstance(type_, BagType):
        if not isinstance(flat, Label):
            raise ShreddingError(f"flat value {flat!r} should be a label for type {type_.render()}")
        if not isinstance(context, BagContext):
            raise ShreddingError(f"expected a bag context for type {type_.render()}")
        dictionary = context.dictionary
        if not isinstance(dictionary, DictValue):
            raise ShreddingError("unshredding requires a value context (evaluated dictionaries)")
        contents = dictionary.lookup(flat)
        return unshred_bag(contents, type_.element, context.element)
    raise ShreddingError(f"cannot unshred values of type {type_.render()}")


def unshred_bag(flat_bag: Bag, element_type: Type, context: Context) -> Bag:
    """Rebuild a nested bag from its flat representation and value context."""
    if flat_bag.is_empty():
        return EMPTY_BAG
    pairs = []
    for element, multiplicity in flat_bag.items():
        pairs.append((unshred_value(element, element_type, context), multiplicity))
    return Bag.from_pairs(pairs)
