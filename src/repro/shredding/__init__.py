"""Shredding: labels, dictionaries and the NRC+ → IncNRC+_l transformation."""

from repro.shredding.consistency import check_consistency, collect_labels, is_consistent
from repro.shredding.context import (
    BagContext,
    Context,
    EMPTY_CONTEXT,
    EmptyContext,
    TupleContext,
    UNIT_CONTEXT,
    UnitContext,
    empty_context_for_type,
    iter_context_dicts,
    map_context_dicts,
    merge_contexts,
)
from repro.dictionaries import (
    CombinedDict,
    DictValue,
    EMPTY_DICT,
    IntensionalDict,
    MaterializedDict,
)
from repro.labels import Label, LabelFactory
from repro.shredding.shred_database import (
    ShreddedInput,
    build_shredded_environment,
    flat_relation_name,
    input_context_for,
    input_dict_name,
    shred_relation,
)
from repro.shredding.shred_query import ShreddedQuery, shred_query
from repro.shredding.shred_values import ValueShredder, shred_bag, unshred_bag, unshred_value

__all__ = [
    "check_consistency",
    "collect_labels",
    "is_consistent",
    "BagContext",
    "Context",
    "EMPTY_CONTEXT",
    "EmptyContext",
    "TupleContext",
    "UNIT_CONTEXT",
    "UnitContext",
    "empty_context_for_type",
    "iter_context_dicts",
    "map_context_dicts",
    "merge_contexts",
    "CombinedDict",
    "DictValue",
    "EMPTY_DICT",
    "IntensionalDict",
    "MaterializedDict",
    "Label",
    "LabelFactory",
    "ShreddedInput",
    "build_shredded_environment",
    "flat_relation_name",
    "input_context_for",
    "input_dict_name",
    "shred_relation",
    "ShreddedQuery",
    "shred_query",
    "ValueShredder",
    "shred_bag",
    "unshred_bag",
    "unshred_value",
]
