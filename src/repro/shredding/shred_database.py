"""Shredded representation of database inputs.

Section 5.1 assumes the input bags are themselves available in shredded form
(``R^F``, ``R^Γ``); queries produced by the query shredder therefore refer to

* a *flat relation* holding ``R^F`` (every inner bag replaced by a label), and
* one *input dictionary* per bag position inside ``R``'s element type,
  holding the label definitions of that position.

This module fixes the naming convention connecting the two worlds, builds the
symbolic input contexts used by the query shredder, and shreds concrete
relation instances into an :class:`~repro.nrc.evaluator.Environment` that can
evaluate shredded queries.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.bag.bag import Bag
from repro.nrc import ast
from repro.nrc.evaluator import Environment
from repro.nrc.types import BagType, ProductType, Type, shred_flat_type
from repro.shredding.context import (
    BagContext,
    Context,
    TupleContext,
    UNIT_CONTEXT,
    iter_context_dicts,
)
from repro.dictionaries import DictValue, MaterializedDict
from repro.labels import LabelFactory
from repro.shredding.shred_values import ValueShredder

__all__ = [
    "flat_relation_name",
    "input_dict_name",
    "input_context_for",
    "ShreddedInput",
    "shred_relation",
    "build_shredded_environment",
]


def flat_relation_name(relation: str) -> str:
    """Name of the flat relation carrying ``R^F``."""
    return f"{relation}__F"


def _path_token(part) -> str:
    return str(part)


def input_dict_name(relation: str, path: Tuple = ()) -> str:
    """Name of the input dictionary at a bag position of ``R``'s element type.

    ``path`` navigates the element type: integers select tuple components and
    the token ``"e"`` descends into a bag's element type (the same convention
    as :func:`repro.shredding.context.iter_context_dicts`).
    """
    if not path:
        return f"{relation}__D"
    return f"{relation}__D__" + "_".join(_path_token(part) for part in path)


def input_context_for(relation: str, element_type: Type) -> Context:
    """Symbolic context of ``R`` referencing its input dictionaries by name."""

    def _build(type_: Type, path: Tuple) -> Context:
        if isinstance(type_, ProductType):
            return TupleContext(
                tuple(
                    _build(component, path + (index,))
                    for index, component in enumerate(type_.components)
                )
            )
        if isinstance(type_, BagType):
            value_type = BagType(shred_flat_type(type_.element))
            dictionary = ast.DictVar(input_dict_name(relation, path), value_type)
            return BagContext(dictionary, _build(type_.element, path + ("e",)))
        return UNIT_CONTEXT

    return _build(element_type, ())


class ShreddedInput:
    """The shredded form of one relation instance: flat bag plus dictionaries."""

    def __init__(
        self,
        relation: str,
        element_type: Type,
        flat: Bag,
        dictionaries: Dict[str, DictValue],
    ) -> None:
        self.relation = relation
        self.element_type = element_type
        self.flat = flat
        self.dictionaries = dictionaries

    def __repr__(self) -> str:
        return (
            f"ShreddedInput({self.relation!r}, |flat|={self.flat.cardinality()}, "
            f"dicts={sorted(self.dictionaries)})"
        )


def shred_relation(
    relation: str,
    bag: Bag,
    element_type: Type,
    shredder: Optional[ValueShredder] = None,
) -> ShreddedInput:
    """Shred one relation instance into its flat bag and named dictionaries.

    Every bag position of the element type gets an entry in ``dictionaries``
    even when no inner bag of that position is present (an empty dictionary),
    so delta environments can always resolve the dictionary names.
    """
    shredder = shredder or ValueShredder(LabelFactory(prefix=relation))
    flat, context = shredder.shred_bag(bag, element_type, hint=relation)

    dictionaries: Dict[str, DictValue] = {
        input_dict_name(relation, path): MaterializedDict({})
        for path, _ in iter_context_dicts(input_context_for(relation, element_type))
    }
    for path, dictionary in iter_context_dicts(context):
        name = input_dict_name(relation, path)
        if not isinstance(dictionary, DictValue):
            raise TypeError("value shredding must produce dictionary values")
        existing = dictionaries.get(name)
        dictionaries[name] = dictionary if existing is None else existing.label_union(dictionary)
    return ShreddedInput(relation, element_type, flat, dictionaries)


def build_shredded_environment(
    relations: Mapping[str, Bag],
    schemas: Mapping[str, BagType],
    shredder: Optional[ValueShredder] = None,
) -> Environment:
    """Shred every relation and build an evaluation environment for flat queries."""
    shredder = shredder or ValueShredder()
    env = Environment()
    for name, bag in relations.items():
        schema = schemas[name]
        shredded = shred_relation(name, bag, schema.element, shredder)
        env.relations[flat_relation_name(name)] = shredded.flat
        env.dictionaries.update(shredded.dictionaries)
    return env
