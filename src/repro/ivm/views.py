"""Shared view infrastructure: maintenance statistics and the base protocol.

Every view implementation (naive, classic, recursive, nested) exposes the
same two-phase life cycle:

* construction materializes the view against the current database state;
* :meth:`on_update` (called by the database *before* it mutates its stored
  relations) refreshes the materialization for one update.

``MaintenanceStats`` accumulates the abstract operation counts and wall-clock
times used by the benchmark harness to compare strategies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.instrument import OpCounter

__all__ = ["MaintenanceStats", "View"]


@dataclass
class MaintenanceStats:
    """Work accounting for a view: initialization plus per-update refreshes."""

    init_seconds: float = 0.0
    init_operations: int = 0
    update_seconds: List[float] = field(default_factory=list)
    update_operations: List[int] = field(default_factory=list)

    def record_init(self, seconds: float, counter: OpCounter) -> None:
        self.init_seconds = seconds
        self.init_operations = counter.total()

    def record_update(self, seconds: float, counter: OpCounter) -> None:
        self.update_seconds.append(seconds)
        self.update_operations.append(counter.total())

    @property
    def updates_applied(self) -> int:
        return len(self.update_seconds)

    @property
    def total_update_seconds(self) -> float:
        return sum(self.update_seconds)

    @property
    def total_update_operations(self) -> int:
        return sum(self.update_operations)

    @property
    def mean_update_operations(self) -> float:
        if not self.update_operations:
            return 0.0
        return sum(self.update_operations) / len(self.update_operations)

    def summary(self) -> Dict[str, float]:
        return {
            "init_seconds": self.init_seconds,
            "init_operations": float(self.init_operations),
            "updates_applied": float(self.updates_applied),
            "total_update_seconds": self.total_update_seconds,
            "total_update_operations": float(self.total_update_operations),
            "mean_update_operations": self.mean_update_operations,
        }

    def __repr__(self) -> str:
        return (
            f"MaintenanceStats(init={self.init_operations} ops/"
            f"{self.init_seconds:.4f}s, updates={self.updates_applied}, "
            f"mean={self.mean_update_operations:.1f} ops/update)"
        )


class View:
    """Base class for materialized views.

    ``on_update`` may accept an optional shared
    :class:`~repro.ivm.database.RefreshContext` holding the pre-update
    snapshot environments of this refresh round; views that can, evaluate
    against it instead of rebuilding their own environments (one snapshot
    family per update instead of one per view, and the anchor that makes
    concurrent refresh safe).  ``accepts_refresh_context`` tells the
    database's dispatcher whether to pass it; it defaults to **false** so
    custom backends keeping the legacy two-argument ``on_update`` —
    whether or not they subclass this base — are still called correctly.
    Backends that take the context set it to true (as the four built-in
    views do).
    """

    #: The database passes a RefreshContext to ``on_update`` when true.
    #: Deliberately false here: opting in is the subclass's declaration
    #: that its ``on_update`` signature takes the third argument.
    accepts_refresh_context = False

    def __init__(self) -> None:
        self.stats = MaintenanceStats()

    # Subclasses implement result() and on_update().
    def result(self):
        raise NotImplementedError

    def on_update(self, update, shredded_delta, context=None) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Execution reporting
    # ------------------------------------------------------------------ #
    def execution_mode(self) -> str:
        """``"compiled"`` when every per-update query of this view runs
        through the closure compiler (:mod:`repro.nrc.compile`),
        ``"interpreted"`` otherwise (``REPRO_NO_COMPILE`` set, or some
        query fell outside the compiler's coverage)."""
        return getattr(self, "_execution_mode", "interpreted")

    # ------------------------------------------------------------------ #
    # Read-path reporting (the result-store layer)
    # ------------------------------------------------------------------ #
    def result_store(self):
        """The sharded :class:`~repro.storage.ResultStore` backing this
        view's materialization, or ``None`` for backends that keep their
        own representation (e.g. the naive recompute baseline)."""
        return None

    def read_stats(self):
        """Read-path accounting surfaced through ``storage_report()``.

        Base views report their result store's shape (shards, versions,
        snapshot freezes); backends with extra read-side machinery — the
        nested view's footprint-bounded dictionary probes — extend this.
        """
        stats = {"view": type(self).__name__}
        store = self.result_store()
        if store is not None:
            stats["result_store"] = store.describe()
        return stats

    # ------------------------------------------------------------------ #
    # Persistent index plumbing (the storage layer)
    # ------------------------------------------------------------------ #
    def _collect_index_requirements(self, *compiled) -> tuple:
        """Record the join atoms of this view's compiled queries.

        Collects the :class:`~repro.nrc.compile.IndexRequirement`s of every
        non-``None`` compiled query (deduplicated, first-seen order) for
        reporting, without registering anything — backends whose per-update
        evaluation cannot probe persistent indexes use this so the storage
        layer is not taxed with maintaining indexes nobody reads.
        """
        seen = set()
        requirements = []
        for compiled_query in compiled:
            if compiled_query is None:
                continue
            for requirement in compiled_query.index_requirements:
                if requirement.key() not in seen:
                    seen.add(requirement.key())
                    requirements.append(requirement)
        self._index_requirements = tuple(requirements)
        self._registered_indexes = ()
        return self._index_requirements

    def _register_indexes(self, database, *compiled) -> None:
        """Register the join atoms of this view's compiled queries.

        Asks the database's storage layer to keep persistent hash indexes
        for the collected requirements.  Requirements the storage layer
        cannot serve — computed build sides, the ``REPRO_NO_INDEX`` escape
        hatch — stay per-evaluation.
        """
        requirements = self._collect_index_requirements(*compiled)
        self._registered_indexes = database.register_index_requirements(requirements)

    def index_requirements(self):
        """Join atoms this view's compiled queries probe (maybe unregistered)."""
        return getattr(self, "_index_requirements", ())

    def registered_index_requirements(self):
        """The subset of :meth:`index_requirements` backed by persistent indexes."""
        return getattr(self, "_registered_indexes", ())

    def index_report(self):
        """Live state (sizes, hit/rebuild counts) of this view's indexes."""
        database = getattr(self, "_database", None)
        requirements = self.index_requirements()
        if database is None or not requirements:
            return ()
        return database.describe_indexes(requirements)

    # ------------------------------------------------------------------ #
    # Timing helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _now() -> float:
        return time.perf_counter()
