"""Naive re-evaluation: the baseline every IVM strategy is compared against.

The view is recomputed from scratch against the post-update database after
every update — exactly the ``h[R ⊎ ΔR]`` re-evaluation whose cost the paper's
delta processing beats (Theorem 4, Section 2.2's ``Ω((n+d)²)`` bound for the
``related`` query).
"""

from __future__ import annotations

from repro.bag.bag import Bag
from repro.instrument import OpCounter
from repro.ivm.database import Database, ShreddedDelta
from repro.ivm.updates import Update
from repro.ivm.views import View
from repro.nrc.ast import Expr
from repro.nrc.compile import run_bag, try_compile
from repro.nrc.evaluator import Environment

__all__ = ["NaiveView"]


class NaiveView(View):
    """Materialized view refreshed by full re-evaluation."""

    accepts_refresh_context = True

    def __init__(self, query: Expr, database: Database, register: bool = True) -> None:
        super().__init__()
        self._query = query
        self._database = database
        # Re-evaluation benefits from the compiled pipeline too (hash-joins
        # and loop-invariant hoisting), keeping the baseline honest.
        self._compiled_query = try_compile(query)
        self._execution_mode = "compiled" if self._compiled_query is not None else "interpreted"
        # Requirements are collected for explain()/index_report() but NOT
        # registered: every per-update re-evaluation assembles a post-update
        # environment by hand, which the provider's bag-identity check would
        # route to per-evaluation builds anyway — a persistent index would
        # be maintained on every update yet probed at most once, at init.
        # (Indexes registered by delta-maintaining views over the same
        # relations are still served to that initial evaluation.)
        self._collect_index_requirements(self._compiled_query)
        counter = OpCounter()
        started = self._now()
        self._result = run_bag(self._compiled_query, query, database.environment(), counter)
        self.stats.record_init(self._now() - started, counter)
        if register:
            database.register_view(self)

    def result(self) -> Bag:
        """Current materialized result (a nested bag)."""
        return self._result

    def on_update(self, update: Update, shredded_delta: ShreddedDelta, context=None) -> None:
        """Recompute the view against the post-update state.

        The database calls this before mutating its stored relations, so the
        post-update instances are assembled locally from the update.  The
        shared refresh context provides the pre-update snapshots when given
        (frozen once for all views; safe to read from worker threads).
        """
        counter = OpCounter()
        started = self._now()
        if context is not None:
            post_relations = dict(context.delta_environment().relations)
        else:
            post_relations = {
                name: self._database.relation(name) for name in self._database.relation_names()
            }
        for name, delta_bag in update.relations.items():
            post_relations[name] = post_relations[name].union(delta_bag)
        environment = Environment(relations=post_relations)
        self._result = run_bag(self._compiled_query, self._query, environment, counter)
        self.stats.record_update(self._now() - started, counter)
