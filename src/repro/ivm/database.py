"""The database: nested relations, their shredded mirror, and update dispatch.

A :class:`Database` routes all of its state through the persistent storage
layer (:mod:`repro.storage`):

* the *nested* relation instances (bags of possibly-nested tuples) live in
  one :class:`~repro.storage.StorageManager`, used by direct evaluation and
  by the naive re-evaluation baseline;
* a *shredded mirror* — flat relations plus input dictionaries (Section 5.1)
  — lives in a second manager and a :class:`~repro.storage.DictionaryStore`,
  maintained incrementally, used by the shredded/nested IVM engine;
* both managers also own the **persistent join indexes** the compiled delta
  pipelines register through :meth:`register_index_requirements`; every
  update folds its delta into the affected indexes in ``O(|Δ|)``, so compiled
  hash-joins probe without rebuilding their build sides.

Views register themselves with :meth:`register_view`.  ``apply_update``
notifies every registered view *before* mutating the stored instances, so
delta queries are evaluated against the pre-update state exactly as required
by ``h[R ⊎ ΔR] = h[R] ⊎ δ(h)[R, ΔR]``; the update is applied to the stored
relations (and their indexes) afterwards.

The whole application pass is ``O(|Δ|)``: stores fold deltas into transient
builders in place (copy-on-write — see :mod:`repro.bag.builder` and
:mod:`repro.storage.store`), relations without bag positions skip the
shredder entirely (their shredded form is the delta itself), and dictionary
deltas merge pointwise into the touched labels only.  The one deliberate
exception is the deep-update path, which re-nests affected relations from
the shredded mirror wholesale.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.bag.bag import Bag, EMPTY_BAG
from repro.dictionaries import DictValue, MaterializedDict
from repro.errors import ShreddingError, WorkloadError
from repro.ivm.updates import Update
from repro.labels import LabelFactory
from repro.nrc.compile import IndexRequirement
from repro.nrc.evaluator import Environment
from repro.nrc.types import BagType, BaseType, LabelType, ProductType, Type
from repro.shredding.shred_database import (
    flat_relation_name,
    input_context_for,
    input_dict_name,
    shred_relation,
)
from repro.shredding.context import iter_context_dicts
from repro.shredding.shred_values import ValueShredder
from repro.storage import DictionaryStore, ResultStore, StorageManager, resolve_shard_count
from repro.storage.shards import SMALL_RELATION_SHARD_THRESHOLD, shards_pinned

__all__ = ["Database", "RefreshContext", "ShreddedDelta"]


def _is_passthrough_flat(type_: Type) -> bool:
    """True iff shredding values of this type is the identity.

    Holds for base values, labels, and products thereof.  Bag positions need
    real shredding and unit positions are *normalized* (any value becomes
    ``()``), so both disqualify a relation from the shredder bypass.
    """
    if isinstance(type_, (BaseType, LabelType)):
        return True
    if isinstance(type_, ProductType):
        return all(_is_passthrough_flat(component) for component in type_.components)
    return False


def _validate_flat_element(value: object, type_: Type) -> None:
    """The shape validation the shredder performs, without the shredding.

    Mirrors :meth:`repro.shredding.shred_values.ValueShredder.shred_value`
    exactly for passthrough-flat types: tuple arity must match product
    types; base and label positions are accepted as-is.
    """
    if isinstance(type_, ProductType):
        if not isinstance(value, tuple) or len(value) != type_.arity:
            raise ShreddingError(f"value {value!r} does not match type {type_.render()}")
        for component, component_type in zip(value, type_.components):
            if isinstance(component_type, ProductType):
                _validate_flat_element(component, component_type)


class ShreddedDelta:
    """The shredded form of an update: delta symbols for the flat world.

    ``bags`` maps flat relation names to flat delta bags; ``dictionaries``
    maps input dictionary names to dictionary deltas (new label definitions
    from shredding inserted tuples, plus any explicit deep deltas).
    """

    def __init__(
        self,
        bags: Optional[Dict[str, Bag]] = None,
        dictionaries: Optional[Dict[str, MaterializedDict]] = None,
    ) -> None:
        self.bags: Dict[str, Bag] = dict(bags or {})
        self.dictionaries: Dict[str, MaterializedDict] = dict(dictionaries or {})

    def as_delta_symbols(self, order: int = 1) -> Dict[Tuple[str, int], object]:
        """Bindings for the ``Δ`` symbols of delta queries.

        Flat bags whose multiplicities cancel to empty are dropped: an
        unbound ``ΔR`` symbol resolves to the empty bag anyway, and views can
        then recognize no-op flat deltas and skip work for them (the shredded
        mirror of ``Update.is_empty()``'s pointwise check).
        """
        symbols: Dict[Tuple[str, int], object] = {}
        for name, bag in self.bags.items():
            if bag.is_empty():
                continue
            symbols[(name, order)] = bag
        for name, dictionary in self.dictionaries.items():
            symbols[(name, order)] = dictionary
        return symbols

    def source_names(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.bags) | set(self.dictionaries)))


class RefreshContext:
    """Shared, read-only evaluation state for one update's view refreshes.

    Before PR 5 every view's ``on_update`` rebuilt its own environments per
    update; the scheduler instead builds one family of pre-update snapshot
    environments and shares it across all views — one snapshot family per
    update instead of one per view, and the anchor that makes concurrent
    refresh safe.  All environments expose *pre-update* state; views must
    treat them as read-only (copy before binding view-local variables).

    The nested-relation delta environment is built eagerly on the
    coordinating thread (every built-in strategy reads it, and building it
    freezes the relation stores before any worker runs).  The shredded
    environments are built lazily under a lock — only nested views read
    them, so an engine of classic/recursive views never freezes the flat
    mirror at all; the lock makes the one-time construction (and the store
    freezes inside it) single-threaded.  :meth:`post_shredded_environment`
    is the laziest of all: it costs ``O(|DB|)`` (it unions the deltas into
    the flat mirror) and is only needed when a nested view discovers newly
    active labels.
    """

    __slots__ = (
        "update",
        "shredded_delta",
        "relation_deltas",
        "delta_symbols",
        "_database",
        "_lock",
        "_delta_environment",
        "_shredded_environment",
        "_shredded_delta_environment",
        "_post_shredded_environment",
    )

    def __init__(self, database: "Database", update: Update, shredded_delta: ShreddedDelta) -> None:
        self._database = database
        self.update = update
        self.shredded_delta = shredded_delta
        self.relation_deltas: Dict[Tuple[str, int], Bag] = {
            (name, 1): bag
            for name, bag in update.relations.items()
            if not bag.is_empty()
        }
        self.delta_symbols = shredded_delta.as_delta_symbols(order=1)
        self._lock = threading.Lock()
        # Built eagerly on the coordinating thread: freezing the relation
        # stores here means worker threads only ever *read* frozen snapshots.
        self._delta_environment = database.environment(self.relation_deltas)
        self._shredded_environment: Optional[Environment] = None
        self._shredded_delta_environment: Optional[Environment] = None
        self._post_shredded_environment: Optional[Environment] = None

    def delta_environment(self) -> Environment:
        """Pre-update nested environment with the relation Δ symbols bound."""
        return self._delta_environment

    def shredded_environment(self) -> Environment:
        """Pre-update shredded (flat) environment, no delta symbols (lazy)."""
        with self._lock:
            env = self._shredded_environment
            if env is None:
                env = self._shredded_environment = self._database.shredded_environment()
            return env

    def shredded_delta_environment(self) -> Environment:
        """Pre-update shredded environment with the shredded Δ symbols bound (lazy)."""
        with self._lock:
            env = self._shredded_delta_environment
            if env is None:
                env = self._shredded_delta_environment = self._database.shredded_environment(
                    self.delta_symbols
                )
            return env

    def post_shredded_environment(self) -> Environment:
        """Post-update shredded environment (lazy: costs ``O(|DB|)``).

        Only nested views that discover newly active labels need it; updates
        that touch no new labels skip the union entirely — one of the
        ``O(|DB|)`` terms the pre-PR-5 per-view flow paid unconditionally.
        """
        pre = self.shredded_environment()
        with self._lock:
            post = self._post_shredded_environment
            if post is None:
                post = pre.copy()
                for name, bag in self.shredded_delta.bags.items():
                    post.relations[name] = post.relations.get(name, EMPTY_BAG).union(bag)
                for name, dictionary in self.shredded_delta.dictionaries.items():
                    existing = post.dictionaries.get(name, MaterializedDict({}))
                    post.dictionaries[name] = existing.add(dictionary)
                self._post_shredded_environment = post
            return post


class Database:
    """Named nested relations with an incrementally-maintained shredded mirror.

    ``shards`` fixes the shard count of every relation store (``None``
    defers to ``REPRO_SHARDS`` / the default); ``parallel_views`` fixes the
    view-refresh worker count (``None`` defers to ``REPRO_PARALLEL_VIEWS`` /
    auto — ``0`` is the legacy serial per-view path, ``1`` shared-snapshot
    inline, ``N`` a thread pool; see :mod:`repro.engine.scheduler`).
    ``backend`` pins the execution backend deltas are applied on
    (``"serial"``/``"threads"``/``"processes"``/``"subinterpreters"``,
    optionally with a worker count as in ``"processes:4"``; ``None`` defers
    to ``REPRO_BACKEND`` / the per-delta cost model).
    """

    def __init__(
        self,
        shards: Optional[int] = None,
        parallel_views: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        if parallel_views is not None and (
            not isinstance(parallel_views, int) or parallel_views < 0
        ):
            raise ValueError(
                f"parallel_views must be a non-negative int, got {parallel_views!r}"
            )
        if backend is not None:
            from repro.engine.scheduler import parse_backend_spec

            parse_backend_spec(backend)  # validate eagerly; resolved per apply
        # Resolved once here (validating an explicit count): every store of
        # this database partitions the same way, and the reported shard
        # count can never drift from the stores actually created.
        resolved_shards = resolve_shard_count(shards)
        self._schemas: Dict[str, BagType] = {}
        self._storage = StorageManager(kind="nested", shards=resolved_shards)
        self._shredder = ValueShredder(LabelFactory(prefix="db"))
        self._flat_storage = StorageManager(kind="flat", shards=resolved_shards)
        self._dict_store = DictionaryStore()
        self._parallel_views = parallel_views
        self._scheduler = None  # lazily built ViewRefreshScheduler
        # Whether the shard count was pinned (constructor argument or the
        # REPRO_SHARDS hatch): pinned databases never adapt per relation.
        self._shards_pinned = shards_pinned(shards)
        self._backend_spec = backend
        # One ExecutionBackend instance per (name, workers) actually used,
        # created lazily — most sessions only ever touch one.
        self._exec_backends: Dict[Tuple[str, Optional[int]], object] = {}
        # Effective backend name → deltas applied through it (stats).
        self._backend_applies: Dict[str, int] = {}
        # Degradations recorded at resolution time (first occurrence each).
        self._backend_notes: List[str] = []
        # Input-dictionary name → owning relation.  Resolving ownership by
        # parsing the generated names would break for relations whose own
        # name contains the ``__D`` separator (e.g. ``user__Data``), so the
        # mapping is recorded from the schema at registration time.
        self._dict_owner: Dict[str, str] = {}
        # Relations whose element type contains no bag positions: their
        # shredded form is the relation itself (no labels, no dictionaries),
        # so the update path skips the shredder for them entirely.
        self._flat_relations: set = set()
        self._views: List[object] = []
        # Monotone counter of state transitions (registrations and applied
        # non-empty updates).  The serving layer stamps reader snapshots
        # with it: two reads with equal versions saw identical state.
        self._state_version = 0
        self._closed = False
        # Reentrant: the durability layer wraps {mutate + WAL append} and
        # {close database + close WAL} in it, and close() re-acquires.
        self._lifecycle_lock = threading.RLock()
        # Non-None once recovery degraded the database: the reason string.
        self._read_only: Optional[str] = None
        # Transient pin consumed by the next create_result_store call (the
        # durability restore sets it right before recreating each view, so
        # restored result stores keep their checkpointed shard counts
        # instead of re-running the adaptive rule against the larger
        # restored contents).  Result-store names are shared backend
        # constants, so the pin cannot be keyed by name.
        self._next_result_shards: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Schema and data registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, schema: BagType, instance: Optional[Bag] = None) -> None:
        """Register a relation with its schema and optional initial instance."""
        with self._lifecycle_lock:
            self._register(name, schema, instance)

    def _register(self, name: str, schema: BagType, instance: Optional[Bag]) -> None:
        self._check_writable()
        if name in self._schemas:
            raise WorkloadError(f"relation {name!r} is already registered")
        if not isinstance(schema, BagType):
            raise TypeError("relation schemas must be bag types")
        self._schemas[name] = schema
        instance_bag = instance or EMPTY_BAG
        # Small relations default to one shard: the shard_scale.json size
        # sweep shows partitioning overhead eating the win below ~500 rows
        # (n=500 barely breaks even where n=2000 speeds up 3×).  A pinned
        # count (constructor argument / REPRO_SHARDS) always wins; the
        # choice is made once, at registration time.
        adaptive: Optional[int] = None
        if (
            not self._shards_pinned
            and instance_bag.cardinality() < SMALL_RELATION_SHARD_THRESHOLD
        ):
            adaptive = 1
        self._storage.ensure(name, instance_bag, shards=adaptive)
        # The flat mirror follows the nested relation's decision so both
        # sides of a small relation stay on the single-shard fast path
        # (replace() in _reshred_relation would otherwise create it with
        # the manager default).
        self._flat_storage.ensure(flat_relation_name(name), shards=adaptive)
        context = input_context_for(name, schema.element)
        dict_paths = tuple(path for path, _ in iter_context_dicts(context))
        if not dict_paths and _is_passthrough_flat(schema.element):
            self._flat_relations.add(name)
        for path in dict_paths:
            self._dict_owner[input_dict_name(name, path)] = name
        self._reshred_relation(name)
        self._state_version += 1

    def _reshred_relation(self, name: str) -> None:
        schema = self._schemas[name]
        shredded = shred_relation(name, self._storage.bag(name), schema.element, self._shredder)
        self._flat_storage.replace(flat_relation_name(name), shredded.flat)
        for dict_name, dictionary in shredded.dictionaries.items():
            if not isinstance(dictionary, MaterializedDict):
                dictionary = dictionary.materialize(dictionary.support() or ())
            self._dict_store.set(dict_name, dictionary)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def schema(self, name: str) -> BagType:
        return self._schemas[name]

    def relation(self, name: str) -> Bag:
        return self._storage.bag(name)

    def relation_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._schemas))

    def shredded_source_names(self, name: str) -> Tuple[str, ...]:
        """Names of the flat relation and input dictionaries backing ``name``."""
        names = [flat_relation_name(name)]
        context = input_context_for(name, self._schemas[name].element)
        for path, _ in iter_context_dicts(context):
            names.append(input_dict_name(name, path))
        return tuple(names)

    def environment(self, deltas: Optional[Mapping] = None) -> Environment:
        """Environment for direct (nested) evaluation.

        ``deltas`` optionally binds the ``Δ`` symbols directly at
        construction — one environment build instead of the
        ``environment().with_deltas(...)`` copy-everything-twice dance the
        views used to pay on every update.
        """
        return Environment(
            relations=self._storage.bags(),
            deltas=deltas,
            indexes=self._storage.provider(),
        )

    def shredded_environment(self, deltas: Optional[Mapping] = None) -> Environment:
        """Environment for evaluating shredded (flat) queries."""
        return Environment(
            relations=self._flat_storage.bags(),
            dictionaries=self._dict_store.as_mapping(),
            deltas=deltas,
            indexes=self._flat_storage.provider(),
        )

    # ------------------------------------------------------------------ #
    # Storage and persistent indexes
    # ------------------------------------------------------------------ #
    def register_index_requirements(
        self, requirements: Iterable[IndexRequirement]
    ) -> Tuple[IndexRequirement, ...]:
        """Register persistent join indexes for the given requirements.

        Each requirement names a relation (nested, or the shredded mirror's
        flat form) and the projection paths of the join key.  Requirements
        over unknown names — delta symbols, let-bound bags, computed
        subexpressions — are skipped: those build sides stay per-evaluation.
        Returns the requirements that were actually registered (also empty
        while the ``REPRO_NO_INDEX`` escape hatch is set).
        """
        registered: List[IndexRequirement] = []
        for requirement in requirements:
            name = requirement.relation
            if name in self._schemas:
                index = self._storage.ensure_index(name, requirement.paths)
            elif name in self._flat_storage:
                index = self._flat_storage.ensure_index(name, requirement.paths)
            else:
                index = None
            if index is not None:
                registered.append(requirement)
        return tuple(registered)

    def describe_indexes(
        self, requirements: Iterable[IndexRequirement]
    ) -> Tuple[Dict[str, object], ...]:
        """Live state of the indexes behind the given requirements."""
        report: List[Dict[str, object]] = []
        for requirement in requirements:
            name = requirement.relation
            if name in self._schemas:
                store = self._storage.get(name)
            else:
                store = self._flat_storage.get(name)
            entry: Dict[str, object] = {
                "relation": name,
                "key_paths": [list(path) for path in requirement.paths],
                "registered": False,
            }
            if store is not None:
                entry["store_version"] = store.version
                entry["snapshot_freezes"] = store.snapshot_freezes
                index = store.index_for(requirement.paths)
                if index is not None:
                    entry["registered"] = True
                    entry.update(index.describe())
            report.append(entry)
        return tuple(report)

    def vacuum_storage(self) -> int:
        """Re-validate poisoned persistent indexes against their current bags.

        The recovery half of the index lifecycle: a transient unhashable key
        poisons an index, and once the offending elements have been deleted
        one vacuum pass rebuilds it and restores ``O(|Δ|)`` maintenance.
        Returns the number of indexes that came back healthy.
        """
        return self._storage.vacuum() + self._flat_storage.vacuum()

    def storage_shards(self) -> int:
        """The shard count this database's stores are partitioned into.

        Fixed at construction (explicit argument, or the ``REPRO_SHARDS`` /
        default resolution at that moment), so it always matches the
        per-store ``shards`` entries in :meth:`storage_report`.
        """
        return self._storage.shards

    def storage_report(self) -> Dict[str, object]:
        """Sizes and index statistics of every store (what ``explain`` surfaces).

        Store entries aggregate across shards (``cardinality``/``distinct``
        sum the shard builders; index ``hits``/``entries`` merge the shard
        slices) and carry per-shard breakdowns under ``shard_stats`` /
        ``per_shard`` for multi-shard stores.
        """
        result_stores: List[Dict[str, object]] = []
        read_path: List[Dict[str, object]] = []
        for view in self._views:
            store_of = getattr(view, "result_store", None)
            store = store_of() if callable(store_of) else None
            if store is not None:
                result_stores.append(store.describe())
            reader = getattr(view, "read_stats", None)
            if callable(reader):
                stats = reader()
                # The facade (Engine.storage_report) swaps this for the
                # user-facing view name; here the backend is anonymous.
                stats["backend_id"] = id(view)
                read_path.append(stats)
        return {
            "nested": self._storage.report(),
            "flat": self._flat_storage.report(),
            "dictionaries": self._dict_store.report(),
            "results": {"kind": "results", "stores": result_stores},
            "read_path": read_path,
            "shards": self.storage_shards(),
            "parallel_views": self.refresh_mode(),
            "execution": self.execution_report(),
        }

    def create_result_store(self, name: str, bag: Bag = EMPTY_BAG) -> ResultStore:
        """A result store partitioned like this database's relation stores.

        View backends route their materializations through here so result
        sharding follows the same policy as relation sharding: the
        database-wide shard count, with the small-relation rule (results
        below :data:`SMALL_RELATION_SHARD_THRESHOLD` rows stay on a single
        shard) applied when nothing pins a count.  The choice is made once,
        at view materialization time.
        """
        pinned = self._next_result_shards
        if pinned is not None:
            self._next_result_shards = None
            return ResultStore(name, bag, shards=pinned)
        shards = self.storage_shards()
        if (
            not self._shards_pinned
            and bag.cardinality() < SMALL_RELATION_SHARD_THRESHOLD
        ):
            shards = 1
        return ResultStore(name, bag, shards=shards)

    def pin_next_result_shards(self, shards: Optional[int]) -> None:
        """Pin the shard count of the *next* result store created.

        Consumed (and cleared) by that one :meth:`create_result_store` call.
        The durability restore sets it immediately before recreating each
        view, so restored result stores keep their checkpointed shard count
        — the adaptive small-relation rule would otherwise re-decide against
        the full restored cardinality and diverge from the original run.
        """
        self._next_result_shards = shards

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def register_view(self, view: object) -> None:
        """Register a view to be notified on every update (pre-mutation)."""
        if self._read_only is not None:
            raise WorkloadError(f"database is read-only: {self._read_only}")
        self._views.append(view)
        self._state_version += 1

    # ------------------------------------------------------------------ #
    # Durability: state export and checkpoint adoption
    # ------------------------------------------------------------------ #
    def export_durable_state(self) -> Dict[str, object]:
        """Everything a checkpoint must persist, as frozen snapshots.

        Cheap by construction — O(shards) per store (copy-on-write freezes),
        O(labels) per dictionary, O(1) for the shredder reference — so the
        caller can encode the result on another thread while updates keep
        applying.  Must be called while no update is in flight (the same
        contract as :class:`~repro.engine.core.EngineSnapshot`).
        """
        relations: Dict[str, Dict[str, object]] = {}
        for name in self._schemas:
            nested = self._storage.get(name)
            flat = self._flat_storage.get(flat_relation_name(name))
            relations[name] = {
                "nested_bag": nested.bag,
                "nested_shards": nested.shards,
                "flat_bag": flat.bag,
                "flat_shards": flat.shards,
            }
        return {
            "state_version": self._state_version,
            "schemas": dict(self._schemas),
            "relations": relations,
            "dictionaries": {
                name: dict(dictionary.items())
                for name, dictionary in self._dict_store.as_mapping().items()
            },
            "shredder": self._shredder,
        }

    def adopt_relation(
        self,
        name: str,
        schema: BagType,
        nested_bag: Bag,
        flat_bag: Bag,
        *,
        nested_shards: int,
        flat_shards: int,
    ) -> None:
        """Install a checkpointed relation wholesale, bypassing the shredder.

        The recovery path's replacement for :meth:`register`: contents were
        already shredded in the original run and the label definitions live
        in the adopted dictionaries and shredder, so re-shredding here would
        be both wasted work and wrong — the restored shredder's emitted-set
        would suppress the label definitions ``_reshred_relation`` expects
        to produce.  Shard counts come from the checkpoint manifest (never
        re-decided: the adaptive rule would see the full restored
        cardinality, not the at-registration one), but contents are
        re-partitioned here because shard routing hashes with the current
        process's seed.  No version bump — recovery restores the recorded
        ``state_version`` explicitly once the whole checkpoint is adopted.
        """
        self._check_open()
        if name in self._schemas:
            raise WorkloadError(f"relation {name!r} is already registered")
        self._schemas[name] = schema
        self._adopt_store(self._storage, name, nested_bag, nested_shards)
        self._adopt_store(
            self._flat_storage, flat_relation_name(name), flat_bag, flat_shards
        )
        context = input_context_for(name, schema.element)
        dict_paths = tuple(path for path, _ in iter_context_dicts(context))
        if not dict_paths and _is_passthrough_flat(schema.element):
            self._flat_relations.add(name)
        for path in dict_paths:
            self._dict_owner[input_dict_name(name, path)] = name

    @staticmethod
    def _adopt_store(manager: StorageManager, name: str, bag: Bag, shards: int) -> None:
        store = manager.ensure(name, shards=shards)
        if bag.is_empty():
            return
        version = store.begin_delta()
        for position, pairs in store.partition_delta(bag).items():
            store.adopt_shard(position, dict(pairs), version=version)
        store.finish_delta()

    def adopt_dictionary(self, name: str, entries: Mapping) -> None:
        """Install one checkpointed input dictionary (label → bag entries)."""
        self._check_open()
        self._dict_store.set(name, MaterializedDict(dict(entries)))

    def adopt_shredder(self, shredder: ValueShredder) -> None:
        """Install the checkpointed shredder (label counter + memo + emitted).

        What makes WAL replay assign the same labels the original run did.
        """
        self._check_open()
        self._shredder = shredder

    def restore_state_version(self, version: int) -> None:
        """Set the version counter to the checkpoint's recorded value."""
        self._state_version = version

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def shred_update(self, update: Update) -> ShreddedDelta:
        """Shred an update into delta symbols for the flat world.

        Inner bags of inserted tuples receive fresh labels (consistently with
        the database's label memoisation), and their definitions become
        dictionary deltas; explicit deep deltas are passed through.
        """
        delta = ShreddedDelta()
        for name, bag in update.relations.items():
            if name not in self._schemas:
                raise WorkloadError(f"update touches unknown relation {name!r}")
            if bag.is_empty():
                continue
            if name in self._flat_relations:
                # Flat relations shred to themselves — no inner bags, no
                # labels, no dictionary deltas.  Skipping the shredder keeps
                # the whole apply path O(|Δ|) for the common flat case; the
                # shape validation the shredder would have performed is kept.
                element_type = self._schemas[name].element
                for element in bag.elements():
                    _validate_flat_element(element, element_type)
                delta.bags[flat_relation_name(name)] = bag
                continue
            shredded = shred_relation(name, bag, self._schemas[name].element, self._shredder)
            delta.bags[flat_relation_name(name)] = shredded.flat
            for dict_name, dictionary in shredded.dictionaries.items():
                if isinstance(dictionary, MaterializedDict) and len(dictionary) == 0:
                    continue
                existing = delta.dictionaries.get(dict_name, MaterializedDict({}))
                merged = existing.add(dictionary)  # type: ignore[assignment]
                delta.dictionaries[dict_name] = merged  # type: ignore[assignment]
        for dict_name, entries in update.deep.items():
            existing = delta.dictionaries.get(dict_name, MaterializedDict({}))
            delta.dictionaries[dict_name] = existing.add(MaterializedDict(dict(entries)))  # type: ignore[assignment]
        return delta

    def apply_update(self, update: Update) -> ShreddedDelta:
        """Notify views of ``update`` and then apply it to the stored instances.

        A no-op update (empty relation bags, deep deltas whose entry bags are
        all empty) short-circuits: views are not notified and nothing is
        written.  Relation names are still validated first, so a typo'd name
        fails loudly even when its delta bag happens to be empty.
        """
        with self._lifecycle_lock:
            return self._apply_update(update)

    def _apply_update(self, update: Update) -> ShreddedDelta:
        self._check_writable()
        for name in update.relations:
            if name not in self._schemas:
                raise WorkloadError(f"update touches unknown relation {name!r}")
        if update.is_empty():
            return ShreddedDelta()
        shredded_delta = self.shred_update(update)

        self._notify_views(update, shredded_delta)

        # Nested instances: one delta pass per store updates the bag and all
        # of its persistent indexes.  Each store's delta runs on the resolved
        # execution backend (serial/threads/processes/subinterpreters) —
        # interchangeable bit-for-bit, so the choice is pure scheduling.
        for name, bag in update.relations.items():
            self._apply_store_delta(self._storage, name, bag)

        # Shredded mirror: flat relations and dictionaries.
        for flat_name, bag in shredded_delta.bags.items():
            self._apply_store_delta(self._flat_storage, flat_name, bag)
        for dict_name, dictionary in shredded_delta.dictionaries.items():
            self._dict_store.apply_delta(dict_name, dictionary)

        # Deep updates also change the *nested* instances: rebuilding the
        # nested relation from the shredded mirror is expensive, so nested
        # instances are only guaranteed to reflect relation deltas.  Engines
        # that need the nested view of deep updates reconstruct it through the
        # shredded mirror (see repro.ivm.nested).
        if update.deep:
            self._refresh_nested_from_shredded(update)
        self._state_version += 1
        return shredded_delta

    # ------------------------------------------------------------------ #
    # Execution backends
    # ------------------------------------------------------------------ #
    def _apply_store_delta(self, manager: StorageManager, name: str, delta: Bag) -> None:
        """Apply one store's delta on the resolved execution backend.

        Empty deltas stay a strict no-op (matching ``RelationStore.
        apply_delta``'s early return) and are not counted.  The requested
        backend degrades along the documented chain when unavailable
        (``subinterpreters``/``processes`` → ``threads``); the effective
        backend name — which a backend may further narrow mid-flight — is
        what the per-backend apply counters record.
        """
        if delta.is_empty():
            manager.apply_delta(name, delta)
            return
        store = manager.ensure(name)
        backend = self._resolve_execution_backend(store, delta)
        effective = backend.apply_delta(store, delta)
        self._backend_applies[effective] = self._backend_applies.get(effective, 0) + 1

    def _resolve_execution_backend(self, store, delta: Bag):
        from repro.engine.scheduler import (
            _auto_workers,
            availability_fallback,
            create_execution_backend,
            recommend_backend,
            resolve_backend_spec,
        )

        name, workers = resolve_backend_spec(self._backend_spec)
        if name == "auto":
            name = recommend_backend(
                delta.distinct_size(),
                store.shards,
                workers if workers is not None else _auto_workers(),
            )
        effective, note = availability_fallback(name)
        if note and note not in self._backend_notes:
            self._backend_notes.append(note)
        key = (effective, workers)
        backend = self._exec_backends.get(key)
        if backend is None:
            backend = self._exec_backends[key] = create_execution_backend(
                effective, workers
            )
        return backend

    def execution_report(self) -> Dict[str, object]:
        """The active execution backend and per-backend apply counts.

        ``requested`` is the resolution input (``"auto"`` unless pinned by
        the constructor or ``REPRO_BACKEND``); ``applies`` counts non-empty
        store deltas per *effective* backend; ``backends`` carries each
        instantiated backend's own state (workers, recorded fallbacks);
        ``notes`` lists availability degradations seen this session.
        Everything is plain data — the serving layer json-encodes it as-is.
        """
        from repro.engine.scheduler import backend_availability, resolve_backend_spec

        requested, workers = resolve_backend_spec(self._backend_spec)
        report: Dict[str, object] = {
            "requested": requested,
            "workers": workers,
            "applies": dict(self._backend_applies),
            "availability": backend_availability(),
            "backends": [
                backend.describe() for backend in self._exec_backends.values()
            ],
        }
        if self._backend_notes:
            report["notes"] = list(self._backend_notes)
        return report

    def execution_plan(self, delta_size: int = 1) -> str:
        """The backend a delta of ``delta_size`` would run on (for explain).

        Renders the resolution: a pinned name stays as-is (with the
        degradation arrow when this runtime lacks it), ``auto`` shows the
        cost model's pick for the assumed delta size.
        """
        from repro.engine.scheduler import (
            _auto_workers,
            availability_fallback,
            recommend_backend,
            resolve_backend_spec,
        )

        name, workers = resolve_backend_spec(self._backend_spec)
        resolved_workers = workers if workers is not None else _auto_workers()
        if name == "auto":
            recommended = recommend_backend(
                delta_size, self.storage_shards(), resolved_workers
            )
            effective, _ = availability_fallback(recommended)
            return f"auto({effective})"
        effective, _ = availability_fallback(name)
        if effective != name:
            return f"{name}->{effective}"
        if workers is not None:
            return f"{name}({workers})"
        return name

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def state_version(self) -> int:
        """Monotone counter of committed state transitions.

        Bumps once per registration and once per applied non-empty update
        (after the stores mutated), so a reader that pairs a snapshot with
        the version current at snapshot time can tell staleness apart from
        divergence.  No-op updates leave it untouched.
        """
        return self._state_version

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def lifecycle_lock(self) -> threading.RLock:
        """The lock serializing mutations against close (reentrant).

        ``register``/``apply_update``/``close`` all take it, so a ``close``
        racing an in-flight apply waits for the apply to commit instead of
        tearing down the scheduler under it.  The durability layer holds it
        across ``{mutate + WAL append}`` so the log can never record an
        update the store rejected (or vice versa).
        """
        return self._lifecycle_lock

    @property
    def read_only(self) -> Optional[str]:
        """The degradation reason, or ``None`` while the database is writable."""
        return self._read_only

    def set_read_only(self, reason: str) -> None:
        """Degrade to read-only: reads keep working, mutations raise.

        Recovery calls this when the WAL is damaged beyond a truncatable
        tail — serving stale-but-consistent state beats silently dropping
        acknowledged writes.  Replication fencing uses the same switch: a
        demoted primary stops accepting mutations without losing reads.
        """
        self._read_only = reason

    def promote_writable(self) -> None:
        """The explicit inverse of :meth:`set_read_only`, for failover.

        Taken under the lifecycle lock so the flip can never interleave
        with an in-flight mutation or close; promoting a closed database
        raises.  Idempotent when already writable.
        """
        with self._lifecycle_lock:
            self._check_open()
            self._read_only = None

    def _check_open(self) -> None:
        if self._closed:
            raise WorkloadError("database is closed")

    def _check_writable(self) -> None:
        self._check_open()
        if self._read_only is not None:
            raise WorkloadError(f"database is read-only: {self._read_only}")

    def close(self) -> None:
        """Deterministically release scheduler resources.

        Shuts down the view-refresh thread pool (worker threads otherwise
        live until garbage collection) and marks the database closed:
        further registrations and updates raise, while reads of the frozen
        stores remain valid.  Idempotent, and safe to race with an in-flight
        apply: the lifecycle lock makes close wait for it to commit.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            scheduler = self._scheduler
            if scheduler is not None:
                scheduler.shutdown()
                self._scheduler = None
            for backend in self._exec_backends.values():
                backend.shutdown()
            self._exec_backends.clear()

    # ------------------------------------------------------------------ #
    # View refresh dispatch
    # ------------------------------------------------------------------ #
    def view_refresh_workers(self) -> int:
        """The effective refresh worker count for the next update.

        Re-resolved on every call so the ``REPRO_PARALLEL_VIEWS`` hatch is
        dynamic, like the other escape hatches.
        """
        from repro.engine.scheduler import resolve_view_workers

        return resolve_view_workers(self._parallel_views)

    def refresh_mode(self) -> str:
        """Human-readable refresh mode (what ``explain`` reports)."""
        workers = self.view_refresh_workers()
        if workers == 0:
            return "serial-legacy"
        if workers == 1:
            return "shared-snapshot inline"
        return f"threads({workers})"

    def _notify_views(self, update: Update, shredded_delta: ShreddedDelta) -> None:
        """Refresh every registered view against the pre-update state.

        ``workers == 0`` reproduces the legacy flow exactly: serial, each
        view building its own environments.  Otherwise one shared
        :class:`RefreshContext` is built up front and the scheduler runs
        the refreshes — inline for one worker, on a thread pool for more
        (delta environments are snapshots, so concurrency is scheduling,
        not semantics).  Only context-aware views go to the pool: a legacy
        two-argument backend rebuilds its environments itself, which
        freezes the shared store builders — unsynchronized check-then-act
        state — so legacy refreshes always run serially on the
        coordinating thread, *before* the pool phase (never overlapping
        it).  The context is released before the stores mutate so
        unretained snapshots die and the builders keep mutating in place.
        """
        notifiable = [
            (view, on_update)
            for view in list(self._views)
            if (on_update := getattr(view, "on_update", None)) is not None
        ]
        if not notifiable:
            return
        workers = self.view_refresh_workers()
        # A pinned serial execution backend means "single-threaded": clamp
        # multi-worker refresh down to the shared-snapshot inline mode (the
        # 0 legacy per-view path is preserved untouched).
        if workers > 1:
            from repro.engine.scheduler import resolve_backend_spec

            requested, _ = resolve_backend_spec(self._backend_spec)
            if requested == "serial":
                workers = 1
        if workers == 0:
            for _, on_update in notifiable:
                on_update(update, shredded_delta)
            return
        # The context freezes stores eagerly; engines of purely legacy
        # backends (no context-aware view at all) skip building it.
        context: Optional[RefreshContext] = None
        if any(
            getattr(view, "accepts_refresh_context", False) for view, _ in notifiable
        ):
            context = RefreshContext(self, update, shredded_delta)
        pool_tasks: List[Callable[[], None]] = []
        for view, on_update in notifiable:
            if getattr(view, "accepts_refresh_context", False):
                pool_tasks.append(
                    lambda on_update=on_update: on_update(update, shredded_delta, context)
                )
            else:
                # Legacy third-party backends keep the two-argument protocol
                # and must not run concurrently with anything (see docstring).
                on_update(update, shredded_delta)
        if workers > 1 and len(pool_tasks) > 1:
            scheduler = self._scheduler
            if scheduler is None:
                from repro.engine.scheduler import ViewRefreshScheduler

                scheduler = self._scheduler = ViewRefreshScheduler(workers)
            else:
                scheduler.resize(workers)
            scheduler.run(pool_tasks)
        else:
            for task in pool_tasks:
                task()

    def _refresh_nested_from_shredded(self, update: Update) -> None:
        """Re-nest relations whose inner bags were deep-updated.

        Ownership of a deep-updated dictionary is resolved through the
        registry built from the schemas at registration time, never by
        parsing the dictionary name (a relation may itself be named with the
        ``__D`` separator).  The store replaces the bag wholesale, so any
        persistent indexes over it are rebuilt (counted as rebuilds).
        """
        from repro.shredding.shred_values import unshred_bag

        touched = set()
        for dict_name in update.deep:
            owner = self._dict_owner.get(dict_name)
            if owner is not None:
                touched.add(owner)
        for name in touched:
            element_type = self._schemas[name].element
            context = self._value_context_for(name, element_type)
            flat = self._flat_storage.bag(flat_relation_name(name))
            self._storage.replace(name, unshred_bag(flat, element_type, context))

    def _value_context_for(self, name: str, element_type) -> object:
        """Value context of a relation assembled from the stored dictionaries."""
        from repro.shredding.context import BagContext, TupleContext, UNIT_CONTEXT
        from repro.nrc.types import BagType as _BagType, ProductType

        def _build(type_, path):
            if isinstance(type_, ProductType):
                return TupleContext(
                    tuple(
                        _build(component, path + (index,))
                        for index, component in enumerate(type_.components)
                    )
                )
            if isinstance(type_, _BagType):
                dictionary = self._dict_store.get(
                    input_dict_name(name, path), MaterializedDict({})
                )
                return BagContext(dictionary, _build(type_.element, path + ("e",)))
            return UNIT_CONTEXT

        return _build(element_type, ())
