"""Updates: the ``ΔR`` objects fed to the IVM engines.

An :class:`Update` bundles

* *relation deltas* — nested bags (with positive/negative multiplicities for
  insertions/deletions) applied to base relations through ``⊎``, and
* *deep deltas* — per-label bag deltas applied to the *input dictionaries* of
  the shredded database, i.e. the paper's deep updates to inner bags of the
  input (Section 2.2, Section 5).

:class:`UpdateStream` is a convenience container used by workload generators
and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from repro.bag.bag import Bag
from repro.dictionaries import MaterializedDict
from repro.labels import Label

__all__ = ["Update", "UpdateStream", "insertions", "deletions"]


@dataclass
class Update:
    """One update event.

    ``relations`` maps relation names to nested delta bags; ``deep`` maps
    *input dictionary names* (see
    :func:`repro.shredding.shred_database.input_dict_name`) to per-label bag
    deltas.
    """

    relations: Dict[str, Bag] = field(default_factory=dict)
    deep: Dict[str, Dict[Label, Bag]] = field(default_factory=dict)

    def is_empty(self) -> bool:
        """True iff the update changes nothing.

        Emptiness is checked pointwise: a deep delta whose entry bags are all
        empty (``deep={"R__D": {label: EMPTY_BAG}}``) is a no-op — adding the
        empty bag to a label definition changes nothing — and must not
        trigger view notification or nested-relation refreshes.
        """
        return all(bag.is_empty() for bag in self.relations.values()) and all(
            bag.is_empty()
            for entries in self.deep.values()
            for bag in entries.values()
        )

    def total_size(self) -> int:
        """Total number of changed tuples (the ``d`` of the cost analyses)."""
        size = sum(bag.cardinality() for bag in self.relations.values())
        for entries in self.deep.values():
            size += sum(bag.cardinality() for bag in entries.values())
        return size

    def deep_dict_deltas(self) -> Dict[str, MaterializedDict]:
        """Deep deltas as dictionary values (pointwise-addition operands)."""
        return {
            name: MaterializedDict(dict(entries)) for name, entries in self.deep.items()
        }

    def touched_relations(self) -> Tuple[str, ...]:
        return tuple(sorted(name for name, bag in self.relations.items() if not bag.is_empty()))

    def __repr__(self) -> str:
        relation_parts = ", ".join(
            f"{name}:{bag.cardinality()}" for name, bag in sorted(self.relations.items())
        )
        deep_parts = ", ".join(
            f"{name}:{len(entries)} labels" for name, entries in sorted(self.deep.items())
        )
        inner = "; ".join(part for part in (relation_parts, deep_parts) if part)
        return f"Update({inner})"


def insertions(relation: str, elements: Iterable) -> Update:
    """Convenience: an update inserting the given elements into ``relation``."""
    return Update(relations={relation: Bag(elements)})


def deletions(relation: str, elements: Iterable) -> Update:
    """Convenience: an update deleting the given elements from ``relation``."""
    return Update(relations={relation: Bag(elements).negate()})


class UpdateStream:
    """An ordered sequence of updates."""

    def __init__(self, updates: Iterable[Update] = ()) -> None:
        self._updates: List[Update] = list(updates)

    def append(self, update: Update) -> None:
        self._updates.append(update)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __getitem__(self, index: int) -> Update:
        return self._updates[index]

    def total_size(self) -> int:
        return sum(update.total_size() for update in self._updates)

    def __repr__(self) -> str:
        if not self._updates:
            return "UpdateStream(empty)"
        return (
            f"UpdateStream({len(self._updates)} updates, "
            f"{self.total_size()} changed tuples)"
        )

    def merged(self) -> Update:
        """Collapse the stream into a single cumulative update.

        Relations and deep-delta labels whose merged bag cancels to empty
        (an insertion later undone by a deletion) are dropped, so a merged
        no-op stream is itself a no-op: applying it triggers neither view
        refreshes nor dictionary writes.
        """
        relations: Dict[str, Bag] = {}
        deep: Dict[str, Dict[Label, Bag]] = {}
        for update in self._updates:
            for name, bag in update.relations.items():
                relations[name] = relations.get(name, Bag()).union(bag)
            for name, entries in update.deep.items():
                bucket = deep.setdefault(name, {})
                for label, bag in entries.items():
                    bucket[label] = bucket.get(label, Bag()).union(bag)
        relations = {name: bag for name, bag in relations.items() if not bag.is_empty()}
        cleaned_deep: Dict[str, Dict[Label, Bag]] = {}
        for name, bucket in deep.items():
            bucket = {label: bag for label, bag in bucket.items() if not bag.is_empty()}
            if bucket:
                cleaned_deep[name] = bucket
        return Update(relations=relations, deep=cleaned_deep)
