"""Static key-footprint analysis of dictionary delta expressions.

The nested view refreshes every context dictionary by probing the update's
*delta dictionary* — ``δ(h^Γ)`` evaluated over the shredded delta symbols.
When that delta has finite support (deep updates arriving as explicit label
deltas) only the touched labels are probed, but an **intensional** delta (a
``DictSingleton`` whose body joins ``ΔR`` against the database) reports no
support and used to be probed for *every* existing label — the O(n·d) term
of §2.2 of the paper.

Almost every such body constrains the label's value assignment ``ε`` against
the delta tuples through equality predicates: for the running ``related``
query the delta body is

    for m2 in ΔM^F where π₁(m) = π₁(m2) ∨ π₂(m) = π₂(m2) ...

so a label ⟨ι, m⟩ can only change if *some* delta tuple agrees with ``m`` on
the genre or the director position.  This module extracts that fact **once,
statically, at view construction**: :func:`analyze` walks the delta
expression, puts the guard predicates of each ``DictSingleton`` body in
(bounded) disjunctive normal form, and keeps every disjunct's
``ε``-projection ↔ ``Δ``-projection equality atoms as a
:class:`KeyConstraint`.  At refresh time the view projects the delta bag at
the ``Δ`` paths (O(|Δ|) keys) and consults a per-dictionary key → label
index maintained alongside the entries map, probing only the matched labels
— the delta's **label footprint**.

Soundness over precision: any construct the analysis cannot bound a label
set for (``Let`` bindings, dictionary lookups in bag position, a disjunct
with no usable equality atom) makes :func:`analyze` return ``None`` and the
view falls back to the all-labels sweep, which is always correct.  Dropping
atoms (``Not`` terms, constant comparisons, second join variables) only
*widens* the footprint, never narrows it, so every widening is sound too.

Setting the environment variable :data:`REPRO_NO_FOOTPRINT` (to any
non-empty value) disables footprint-bounded probing dynamically — the escape
hatch the benchmarks use to measure the sweep the analysis eliminates.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.nrc import ast
from repro.nrc.predicates import (
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    TruePredicate,
    VarPath,
)

__all__ = [
    "REPRO_NO_FOOTPRINT",
    "FootprintPlan",
    "KeyConstraint",
    "SingletonPlan",
    "analyze",
    "footprint_enabled",
    "forced_no_footprint",
]

#: Environment variable that disables footprint-bounded dictionary probes.
REPRO_NO_FOOTPRINT = "REPRO_NO_FOOTPRINT"

#: DNF expansion caps: an analysis that would exceed them bails to the full
#: sweep instead of building a huge (still-sound but useless) plan.
_MAX_DISJUNCTS = 32
_MAX_BRANCHES = 32


def footprint_enabled() -> bool:
    """True unless the ``REPRO_NO_FOOTPRINT`` escape hatch is set."""
    return not os.environ.get(REPRO_NO_FOOTPRINT)


@contextmanager
def forced_no_footprint(disabled: bool = True) -> Iterator[None]:
    """Temporarily disable (or re-enable) footprint-bounded probing.

    Dynamic, like :func:`repro.storage.store.forced_no_index`: the plans
    stay attached to the views, but refreshes inside the block run the
    all-labels sweep — how the benchmarks measure the sweep's cost.
    """
    saved = os.environ.get(REPRO_NO_FOOTPRINT)
    try:
        if disabled:
            os.environ[REPRO_NO_FOOTPRINT] = "1"
        else:
            os.environ.pop(REPRO_NO_FOOTPRINT, None)
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_NO_FOOTPRINT, None)
        else:
            os.environ[REPRO_NO_FOOTPRINT] = saved


@dataclass(frozen=True)
class KeyConstraint:
    """One disjunct's joint equality key between ``ε`` and a delta relation.

    A label ⟨ι, ε⟩ satisfies this constraint iff some element ``t`` of the
    ``ΔR`` bag named ``delta_name`` agrees with it on every aligned pair:
    ``project(ε[param], param_path) == project(t, delta_path)``.  The paths
    are tuple projections (the only operand form flat predicates use).
    """

    delta_name: str
    delta_paths: Tuple[Tuple[int, ...], ...]
    #: Aligned with ``delta_paths``: (parameter position in ε, path into it).
    param_paths: Tuple[Tuple[int, Tuple[int, ...]], ...]


@dataclass(frozen=True)
class SingletonPlan:
    """The footprint of one ``DictSingleton`` occurrence of the delta.

    A label with this ``iota`` (and ``arity`` packed values) may receive a
    non-empty delta only if it satisfies at least one of ``constraints``.
    An empty tuple means the body is statically empty — no label of this
    iota is ever touched.
    """

    iota: str
    arity: int
    constraints: Tuple[KeyConstraint, ...]


@dataclass(frozen=True)
class FootprintPlan:
    """Everything needed to bound one dictionary's refresh by its delta.

    ``singletons`` cover the intensional parts; ``dict_deltas`` names the
    ``ΔDict`` symbols whose runtime support contributes labels directly
    (deep updates riding along in the same delta expression).
    """

    singletons: Tuple[SingletonPlan, ...]
    dict_deltas: Tuple[str, ...]

    def key_combos(self) -> Tuple[Tuple[str, Tuple[Tuple[int, Tuple[int, ...]], ...]], ...]:
        """The distinct (iota, param_paths) combinations the label index needs."""
        combos = []
        for singleton in self.singletons:
            for constraint in singleton.constraints:
                combo = (singleton.iota, constraint.param_paths)
                if combo not in combos:
                    combos.append(combo)
        return tuple(combos)


# --------------------------------------------------------------------------- #
# Analysis entry point
# --------------------------------------------------------------------------- #
def analyze(delta_expression: ast.Expr) -> Optional[FootprintPlan]:
    """A bounded footprint plan for a dictionary delta, or ``None``.

    ``None`` means some part of the expression could touch labels the plan
    cannot enumerate from the delta — the caller must keep the all-labels
    sweep for correctness.
    """
    singletons: List[SingletonPlan] = []
    dict_deltas: List[str] = []
    if not _walk_dict(delta_expression, singletons, dict_deltas):
        return None
    return FootprintPlan(tuple(singletons), tuple(dict_deltas))


def _walk_dict(
    expr: ast.Expr, singletons: List[SingletonPlan], dict_deltas: List[str]
) -> bool:
    if isinstance(expr, ast.DictEmpty):
        return True
    if isinstance(expr, (ast.DictUnion, ast.DictAdd)):
        return all(_walk_dict(term, singletons, dict_deltas) for term in expr.terms)
    if isinstance(expr, ast.DeltaDictVar):
        if expr.name not in dict_deltas:
            dict_deltas.append(expr.name)
        return True
    if isinstance(expr, ast.DictSingleton):
        plan = _singleton_plan(expr)
        if plan is None:
            return False
        singletons.append(plan)
        return True
    # DictVar (a stored input dictionary: every label), DictLookup results,
    # Let-bound dictionaries, … — no static bound.
    return False


def _singleton_plan(node: ast.DictSingleton) -> Optional[SingletonPlan]:
    branches = _branches(node.body)
    if branches is None:
        return None
    params = {name: position for position, name in enumerate(node.params)}
    constraints: List[KeyConstraint] = []
    for predicates, delta_vars in branches:
        disjuncts = _conjunction_dnf(predicates)
        if disjuncts is None:
            return None
        for atoms in disjuncts:
            constraint = _key_constraint(atoms, delta_vars, params)
            if constraint is None:
                # An unconstrained way for this label to change: no bound.
                return None
            if constraint not in constraints:
                constraints.append(constraint)
    return SingletonPlan(node.iota, len(node.params), tuple(constraints))


# --------------------------------------------------------------------------- #
# Branch collection: which (predicates, delta bindings) make the body
# non-empty?  A branch is one way the body can produce elements; the body is
# non-empty only if some branch's conjunction holds with its delta variables
# bound to delta elements.
# --------------------------------------------------------------------------- #
_Branch = Tuple[Tuple[Predicate, ...], Dict[str, str]]


def _branches(expr: ast.Expr) -> Optional[List[_Branch]]:
    if isinstance(expr, ast.Empty):
        return []
    if isinstance(expr, ast.Union):
        collected: List[_Branch] = []
        for term in expr.terms:
            term_branches = _branches(term)
            if term_branches is None:
                return None
            collected.extend(term_branches)
            if len(collected) > _MAX_BRANCHES:
                return None
        return collected
    if isinstance(expr, ast.For):
        source = expr.source
        if isinstance(source, ast.DeltaRelation):
            if source.order != 1:
                return None
            source_branches: Optional[List[_Branch]] = [((), {expr.var: source.name})]
        elif isinstance(source, ast.Pred):
            source_branches = [((source.predicate,), {})]
        elif isinstance(source, (ast.Relation, ast.BagVar)):
            source_branches = [((), {})]
        else:
            # The bound variable stays unconstrained; the source's own
            # requirements still apply.
            source_branches = _branches(source)
        if source_branches is None:
            return None
        body_branches = _branches(expr.body)
        if body_branches is None:
            return None
        return _cross(source_branches, body_branches)
    if isinstance(expr, ast.Product):
        combined: Optional[List[_Branch]] = [((), {})]
        for factor in expr.factors:
            factor_branches = _branches(factor)
            if factor_branches is None:
                return None
            combined = _cross(combined, factor_branches)
            if combined is None:
                return None
        return combined
    if isinstance(expr, ast.Pred):
        return [((expr.predicate,), {})]
    if isinstance(expr, (ast.Flatten, ast.Negate)):
        # Non-emptiness of the wrapper requires non-emptiness of the body;
        # negation preserves support.
        return _branches(expr.body)
    if isinstance(expr, (ast.Sng, ast.SngVar, ast.SngProj, ast.SngUnit, ast.InLabel)):
        return [((), {})]
    if isinstance(expr, (ast.Relation, ast.BagVar, ast.DeltaRelation)):
        # A bare bag reference: may be non-empty with no key constraint.
        return [((), {})]
    # Let, DictLookup, nested dictionary constructs, … — unanalyzable.
    return None


def _cross(left: List[_Branch], right: List[_Branch]) -> Optional[List[_Branch]]:
    combined: List[_Branch] = []
    for left_preds, left_vars in left:
        for right_preds, right_vars in right:
            merged_vars = dict(left_vars)
            merged_vars.update(right_vars)
            combined.append((left_preds + right_preds, merged_vars))
            if len(combined) > _MAX_BRANCHES:
                return None
    return combined


# --------------------------------------------------------------------------- #
# Predicate normalization: conjunction of predicates → bounded DNF whose
# atoms are Comparison leaves.  Dropping a term (Not, non-comparison leaves)
# replaces it with "true", which widens the footprint — sound.
# --------------------------------------------------------------------------- #
def _conjunction_dnf(
    predicates: Tuple[Predicate, ...]
) -> Optional[List[Tuple[Comparison, ...]]]:
    disjuncts: List[Tuple[Comparison, ...]] = [()]
    for predicate in predicates:
        term_dnf = _dnf(predicate)
        if term_dnf is None:
            return None
        expanded = [
            existing + additional for existing in disjuncts for additional in term_dnf
        ]
        if len(expanded) > _MAX_DISJUNCTS:
            return None
        disjuncts = expanded
    return disjuncts


def _dnf(predicate: Predicate) -> Optional[List[Tuple[Comparison, ...]]]:
    if isinstance(predicate, Comparison):
        return [(predicate,)]
    if isinstance(predicate, TruePredicate):
        return [()]
    if isinstance(predicate, Not):
        # No information extracted: treated as "true" (widening).
        return [()]
    if isinstance(predicate, And):
        return _conjunction_dnf(tuple(predicate.terms))
    if isinstance(predicate, Or):
        collected: List[Tuple[Comparison, ...]] = []
        for term in predicate.terms:
            term_dnf = _dnf(term)
            if term_dnf is None:
                return None
            collected.extend(term_dnf)
            if len(collected) > _MAX_DISJUNCTS:
                return None
        return collected
    # Unknown predicate kinds carry no extractable structure.
    return [()]


def _key_constraint(
    atoms: Tuple[Comparison, ...],
    delta_vars: Dict[str, str],
    params: Dict[str, int],
) -> Optional[KeyConstraint]:
    """The joint key this disjunct pins between ε and one delta variable.

    Only ``ε``-projection = ``Δ``-projection equalities are usable.  When
    atoms span several delta variables the one with the most atoms wins and
    the rest are dropped (widening).  ``None`` when no atom is usable — the
    disjunct leaves the label unconstrained.
    """
    by_delta_var: Dict[str, List[Tuple[Tuple[int, ...], Tuple[int, Tuple[int, ...]]]]] = {}
    for atom in atoms:
        if atom.op != "==":
            continue
        for param_side, delta_side in ((atom.left, atom.right), (atom.right, atom.left)):
            if (
                isinstance(param_side, VarPath)
                and isinstance(delta_side, VarPath)
                and param_side.var in params
                and delta_side.var in delta_vars
            ):
                pair = (
                    tuple(delta_side.path),
                    (params[param_side.var], tuple(param_side.path)),
                )
                pairs = by_delta_var.setdefault(delta_side.var, [])
                if pair not in pairs:
                    pairs.append(pair)
                break
    if not by_delta_var:
        return None
    chosen = max(by_delta_var, key=lambda var: (len(by_delta_var[var]), var))
    pairs = sorted(by_delta_var[chosen])
    return KeyConstraint(
        delta_name=delta_vars[chosen],
        delta_paths=tuple(delta_path for delta_path, _ in pairs),
        param_paths=tuple(param_path for _, param_path in pairs),
    )
