"""IVM engines: database, updates, and the naive/classic/recursive/nested views."""

from repro.ivm.classic import ClassicIVMView
from repro.ivm.database import Database, ShreddedDelta
from repro.ivm.naive import NaiveView
from repro.ivm.nested import NestedIVMView
from repro.ivm.recursive import RecursiveIVMView, partially_evaluate
from repro.ivm.updates import Update, UpdateStream, deletions, insertions
from repro.ivm.views import MaintenanceStats, View

__all__ = [
    "ClassicIVMView",
    "Database",
    "ShreddedDelta",
    "NaiveView",
    "NestedIVMView",
    "RecursiveIVMView",
    "partially_evaluate",
    "Update",
    "UpdateStream",
    "deletions",
    "insertions",
    "MaintenanceStats",
    "View",
]
