"""Classical (first-order) IVM for IncNRC+ queries.

The delta query ``δ(h)[R, ΔR]`` is derived once, at view-creation time, and
evaluated against the *pre-update* database plus the update on every refresh
(Equation (5) of Appendix A.1 / Proposition 4.1)::

    h[R ⊎ ΔR] = h[R] ⊎ δ(h)[R, ΔR]

Queries outside IncNRC+ (an ``sng`` body depending on an updated relation)
are rejected with :class:`~repro.errors.NotInFragmentError`; use
:class:`repro.ivm.nested.NestedIVMView`, which shreds the query first.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bag.bag import Bag
from repro.delta.rules import delta
from repro.instrument import OpCounter
from repro.ivm.database import Database, ShreddedDelta
from repro.ivm.updates import Update
from repro.ivm.views import View
from repro.nrc.analysis import referenced_relations
from repro.nrc.ast import Expr
from repro.nrc.compile import run_bag, try_compile

__all__ = ["ClassicIVMView"]


class ClassicIVMView(View):
    """Materialized view maintained with a single, first-order delta query."""

    accepts_refresh_context = True

    def __init__(
        self,
        query: Expr,
        database: Database,
        targets: Optional[Sequence[str]] = None,
        register: bool = True,
    ) -> None:
        super().__init__()
        self._query = query
        self._database = database
        self._targets = tuple(sorted(targets)) if targets is not None else tuple(
            sorted(referenced_relations(query))
        )
        self._delta_query = delta(query, self._targets)
        # The delta pipeline is compiled once here and reused on every
        # update; ``None`` (escape hatch or unsupported node) means the
        # interpreter remains in charge.
        self._compiled_delta = try_compile(self._delta_query)
        self._execution_mode = "compiled" if self._compiled_delta is not None else "interpreted"
        compiled_query = try_compile(query)
        # Registering the join atoms before the initial evaluation lets even
        # the first materialization probe the persistent indexes.
        self._register_indexes(database, compiled_query, self._compiled_delta)

        counter = OpCounter()
        started = self._now()
        # The materialization lives in a sharded result store: per-update
        # changes fold into the touched shards (O(|Δresult|)), result()
        # freezes the snapshot lazily, and a retained snapshot copy-on-writes
        # only dirty shards on the next update.
        self._result = database.create_result_store(
            "classic", run_bag(compiled_query, query, database.environment(), counter)
        )
        self.stats.record_init(self._now() - started, counter)
        if register:
            database.register_view(self)

    # ------------------------------------------------------------------ #
    @property
    def delta_query(self) -> Expr:
        """The derived delta query (inspectable, e.g. for pretty printing)."""
        return self._delta_query

    def result(self) -> Bag:
        return self._result.freeze()

    def result_store(self):
        return self._result

    def on_update(self, update: Update, shredded_delta: ShreddedDelta, context=None) -> None:
        counter = OpCounter()
        started = self._now()
        if context is not None:
            deltas = context.relation_deltas
        else:
            deltas = {
                (name, 1): bag for name, bag in update.relations.items() if not bag.is_empty()
            }
        if deltas:
            # The shared context's environment is read-only here: the delta
            # query binds nothing view-local.
            environment = (
                context.delta_environment()
                if context is not None
                else self._database.environment(deltas)
            )
            change = run_bag(self._compiled_delta, self._delta_query, environment, counter)
            self._result.apply_bag(change)
        self.stats.record_update(self._now() - started, counter)
