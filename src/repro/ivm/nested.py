"""Nested IVM through shredding — the paper's solution for full NRC+.

A query that adds nesting (an ``sng(e)`` whose body touches the database)
cannot be maintained by delta rules alone: its delta would need *deep
updates*.  Section 5 solves this by shredding the query into a flat part
``h^F`` and a context ``h^Γ`` of label dictionaries, both of which are
efficiently incrementalizable (Theorem 5).  This module is the runtime for
that strategy, mirroring the maintenance plan worked out for the ``related``
query in Section 2.2:

* the flat view is maintained with the delta of ``h^F``;
* every dictionary of ``h^Γ`` is materialized *for the labels that actually
  occur* (domain maintenance) and refreshed per update by

  - adding ``δ(h^Γ)(ℓ)`` to every existing definition, and
  - initializing definitions for labels newly introduced by ``δ(h^F)``
    against the post-update state;

* the nested result is reconstructed on demand by the nesting function ``u``
  (Theorem 8 guarantees it equals direct re-evaluation).

Deep updates to inner bags of the *input* arrive as dictionary deltas and
flow through the same delta machinery — no recomputation of unrelated inner
bags ever happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.bag.bag import Bag, EMPTY_BAG
from repro.bag.builder import BagBuilder
from repro.dictionaries import DictValue, MaterializedDict
from repro.errors import ShreddingError
from repro.instrument import OpCounter, maybe_count
from repro.ivm.database import Database, ShreddedDelta
from repro.ivm.footprint import FootprintPlan, analyze, footprint_enabled
from repro.ivm.updates import Update
from repro.ivm.views import View
from repro.labels import Label
from repro.nrc.analysis import referenced_sources
from repro.nrc.ast import Expr
from repro.nrc.compile import CompiledQuery, run_bag, try_compile
from repro.nrc.evaluator import Environment, evaluate
from repro.delta.rules import delta
from repro.shredding.context import (
    BagContext,
    Context,
    TupleContext,
    UNIT_CONTEXT,
    UnitContext,
    EmptyContext,
    iter_context_dicts,
)
from repro.shredding.shred_query import ShreddedQuery, shred_query
from repro.shredding.shred_values import unshred_bag

__all__ = ["NestedIVMView"]


@dataclass
class _DictState:
    """Maintenance state of one dictionary position of the output context.

    ``entries`` is the mutable label → bag map owned by this state: per
    update only the touched labels are rewritten in place (no full-map
    rebuild on the update path).  Readers get snapshot
    :class:`~repro.dictionaries.MaterializedDict` copies on demand through
    :meth:`NestedIVMView.dictionary`.

    ``active`` is the incrementally maintained **active-label index**: for
    every label that must be defined at this position, the number of
    distinct carrier elements referencing it.  Root positions count
    references from the flat view, nested positions from their parent's
    ``carrier`` (a transient mirroring the union of the parent's entries,
    kept only while some child needs it).  Both are refreshed from the
    update's presence transitions — O(|Δ|) per update — replacing the
    per-update carrier scan that used to cost O(|flat view|);
    :meth:`NestedIVMView.vacuum` still reconciles by re-scanning.
    """

    path: Tuple[Any, ...]
    expression: Expr
    delta_expression: Expr
    entries: Dict[Label, Bag] = field(default_factory=dict)
    #: Cached read snapshot of ``entries`` (an independent copy), rebuilt
    #: lazily by :meth:`NestedIVMView.dictionary` and invalidated whenever
    #: maintenance touches the entries map.
    snapshot: Optional[MaterializedDict] = None
    compiled: Optional[CompiledQuery] = None
    compiled_delta: Optional[CompiledQuery] = None
    #: label → number of distinct carrier elements referencing it (> 0).
    active: Dict[Label, int] = field(default_factory=dict)
    #: Projection from a carrier element to this position's label.
    tuple_path: Tuple[Any, ...] = ()
    #: The parent dictionary state for nested positions (``None`` at roots).
    parent: Optional["_DictState"] = None
    #: States whose labels are drawn from this state's entries.
    children: List["_DictState"] = field(default_factory=list)
    #: Union of all entry bags, maintained only when ``children`` is non-empty.
    carrier: Optional[BagBuilder] = None
    #: Static key-footprint plan of ``delta_expression`` (``None`` when the
    #: analysis could not bound the touched labels — full sweep for safety).
    footprint_plan: Optional[FootprintPlan] = None
    #: (iota, param_paths) → projected key → labels of ``entries`` with that
    #: key.  Maintained wherever entries are inserted/removed, so refresh
    #: probes are bounded by the delta's key footprint instead of |entries|.
    footprint_index: Dict[Any, Dict[Any, Set[Label]]] = field(default_factory=dict)


class NestedIVMView(View):
    """Materialized view over a full NRC+ query, maintained in shredded form."""

    accepts_refresh_context = True

    def __init__(
        self,
        query: Expr,
        database: Database,
        register: bool = True,
    ) -> None:
        super().__init__()
        self._query = query
        self._database = database
        self._shredded: ShreddedQuery = shred_query(query)
        if self._shredded.output_type is None:
            raise ShreddingError("cannot maintain a query with unknown output type")

        self._dict_states: List[_DictState] = []
        sources: Set[str] = set(referenced_sources(self._shredded.flat))
        for path, expression in iter_context_dicts(self._shredded.context):
            sources |= set(referenced_sources(expression))
        self._targets = tuple(sorted(sources))

        self._flat_delta = delta(self._shredded.flat, self._targets)
        self._compiled_flat = try_compile(self._shredded.flat)
        self._compiled_flat_delta = try_compile(self._flat_delta)
        for path, expression in iter_context_dicts(self._shredded.context):
            delta_expression = delta(expression, self._targets)
            self._dict_states.append(
                _DictState(
                    path=path,
                    expression=expression,
                    delta_expression=delta_expression,
                    compiled=try_compile(expression),
                    compiled_delta=try_compile(delta_expression),
                    # Derived once, statically: which labels an intensional
                    # delta can touch, keyed by the delta's projections.
                    footprint_plan=analyze(delta_expression),
                )
            )
        self._execution_mode = (
            "compiled"
            if self._compiled_flat_delta is not None
            and all(
                state.compiled is not None and state.compiled_delta is not None
                for state in self._dict_states
            )
            else "interpreted"
        )
        # The shredded pipelines join over the *flat* relations; their join
        # atoms register against the flat storage manager.
        self._register_indexes(
            database,
            self._compiled_flat,
            self._compiled_flat_delta,
            *(state.compiled for state in self._dict_states),
            *(state.compiled_delta for state in self._dict_states),
        )

        # Wire up the dictionary-position tree (parent-before-child order is
        # guaranteed by iter_context_dicts) for the active-label index.
        states_by_path = {state.path: state for state in self._dict_states}
        for state in self._dict_states:
            path = state.path
            if "e" in path:
                split = max(index for index, token in enumerate(path) if token == "e")
                parent = states_by_path.get(path[:split])
                if parent is None:
                    raise ShreddingError(f"no parent dictionary at path {path[:split]!r}")
                state.parent = parent
                state.tuple_path = path[split + 1 :]
                parent.children.append(state)
            else:
                state.tuple_path = path

        counter = OpCounter()
        started = self._now()
        environment = database.shredded_environment()
        # The flat view lives in a sharded result store: per-update deltas
        # fold into the touched shards and flat_result() freezes the
        # snapshot lazily (a retained reader COWs only dirty shards).
        self._flat_view = database.create_result_store(
            "nested-flat",
            run_bag(self._compiled_flat, self._shredded.flat, environment, counter),
        )
        #: Cached unshredded result, invalidated per maintenance pass, so an
        #: unchanged view answers repeated result() reads with one object.
        self._result_cache: Optional[Bag] = None
        #: Read-path accounting: how refresh probes were bounded.
        self._probe_stats: Dict[str, int] = {
            "dict_probes": 0,
            "footprint_probes": 0,
            "footprint_keys": 0,
            "skipped_labels": 0,
            "footprint_sweeps": 0,
            "support_sweeps": 0,
            "full_sweeps": 0,
        }
        for state in self._dict_states:
            # One full scan at construction seeds the active-label index;
            # updates maintain it from presence transitions thereafter.
            state.active = self._scan_active(state)
            dictionary = self._dictionary_value(
                state.compiled, state.expression, environment, counter
            )
            state.entries = {label: dictionary.lookup(label) for label in state.active}
            for label in state.entries:
                self._footprint_add(state, label)
            if state.children:
                carrier = BagBuilder()
                for bag in state.entries.values():
                    carrier.apply_bag(bag)
                state.carrier = carrier
        self.stats.record_init(self._now() - started, counter)
        if register:
            database.register_view(self)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shredded(self) -> ShreddedQuery:
        return self._shredded

    @property
    def flat_delta(self) -> Expr:
        return self._flat_delta

    def flat_result(self) -> Bag:
        """The materialized flat view ``h^F`` (labels in place of inner bags)."""
        return self._flat_view.freeze()

    def dictionary(self, path: Tuple[Any, ...]) -> MaterializedDict:
        """The materialized dictionary at a context path (a snapshot copy).

        The copy is cached until the next maintenance pass touches the
        entries, so repeated reads (``result()`` walks every dictionary
        position) pay the copy once per update, not once per read.
        """
        for state in self._dict_states:
            if state.path == path:
                if state.snapshot is None:
                    state.snapshot = MaterializedDict(state.entries)
                return state.snapshot
        raise KeyError(f"no dictionary at context path {path!r}")

    def dictionary_paths(self) -> Tuple[Tuple[Any, ...], ...]:
        return tuple(state.path for state in self._dict_states)

    # ------------------------------------------------------------------ #
    # Result reconstruction (the nesting function u)
    # ------------------------------------------------------------------ #
    def result(self) -> Bag:
        """Reconstruct the nested result from the shredded materializations.

        The reconstruction is cached until the next maintenance pass: an
        unchanged view returns the identical frozen object on repeated reads
        (no re-unshredding, no COW refcount movement) — what makes snapshot
        capture O(1) per quiescent view.
        """
        cached = self._result_cache
        if cached is not None:
            return cached
        value_context = self._value_context(self._shredded.context, ())
        element_type = self._shredded.output_type.element  # type: ignore[union-attr]
        result = unshred_bag(self._flat_view.freeze(), element_type, value_context)
        self._result_cache = result
        return result

    def result_store(self):
        return self._flat_view

    def read_stats(self):
        stats = super().read_stats()
        stats["probes"] = dict(self._probe_stats)
        stats["footprint"] = {
            "enabled": footprint_enabled(),
            "dictionaries": len(self._dict_states),
            "planned": sum(
                1 for state in self._dict_states if state.footprint_plan is not None
            ),
        }
        return stats

    def _value_context(self, context: Context, path: Tuple[Any, ...]) -> Context:
        if isinstance(context, (UnitContext, EmptyContext)):
            return context
        if isinstance(context, TupleContext):
            return TupleContext(
                tuple(
                    self._value_context(component, path + (index,))
                    for index, component in enumerate(context.components)
                )
            )
        if isinstance(context, BagContext):
            materialized = self.dictionary(path)
            return BagContext(materialized, self._value_context(context.element, path + ("e",)))
        raise ShreddingError(f"unexpected context node {context!r}")

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def on_update(self, update: Update, shredded_delta: ShreddedDelta, context=None) -> None:
        counter = OpCounter()
        started = self._now()
        self._result_cache = None

        if context is not None:
            delta_env = context.shredded_delta_environment()
        else:
            delta_symbols = shredded_delta.as_delta_symbols(order=1)
            delta_env = self._database.shredded_environment(delta_symbols)
        # The post-update environment costs O(|DB|) to assemble (it unions
        # the deltas into the flat mirror); it is built lazily below, only
        # when some dictionary actually discovers newly active labels.
        post_env: Optional[Environment] = None

        # 1. Maintain the flat view with δ(h^F) — folded into the transient
        #    in place, O(|Δh^F|) — and fold the presence transitions into
        #    the root active-label indexes (no flat-view scan).
        flat_change = run_bag(self._compiled_flat_delta, self._flat_delta, delta_env, counter)
        transitions = self._presence_transitions(self._flat_view, flat_change)
        self._flat_view.apply_bag(flat_change)
        if transitions:
            for state in self._dict_states:
                if state.parent is None:
                    self._apply_transitions(state, transitions)

        # 2. Maintain every dictionary: refresh existing definitions with
        #    δ(h^Γ)(ℓ) and initialize definitions for newly active labels.
        #    Only the touched labels are rewritten — the entries map is
        #    mutated in place, never rebuilt wholesale.  Entry changes
        #    propagate into the carrier transient and from there into the
        #    children's active-label indexes (parents precede children in
        #    self._dict_states), again O(|change|).
        for state in self._dict_states:
            delta_dictionary = self._dictionary_value(
                state.compiled_delta, state.delta_expression, delta_env, counter
            )
            entries = state.entries
            state.snapshot = None
            entry_changes: Optional[List[Bag]] = [] if state.children else None
            # When the delta dictionary has finite support (e.g. deep updates
            # arriving as explicit label deltas) only the touched labels need
            # refreshing.  Intensional deltas (dictionary bodies over ΔR)
            # report no support; the static key-footprint plan bounds the
            # probes by the delta's label footprint instead — only when no
            # plan exists (or the REPRO_NO_FOOTPRINT hatch is set) does the
            # refresh fall back to probing every existing label, the O(n·d)
            # term of §2.2.
            probes = self._probe_stats
            delta_support = delta_dictionary.support()
            if delta_support is None:
                footprint = self._footprint_labels(state, shredded_delta)
                if footprint is None:
                    refresh_labels = list(entries)
                    probes["full_sweeps"] += 1
                else:
                    refresh_labels = footprint
                    probes["footprint_sweeps"] += 1
                    probes["footprint_probes"] += len(footprint)
                    probes["skipped_labels"] += len(entries) - len(footprint)
            else:
                refresh_labels = [label for label in delta_support if label in entries]
                probes["support_sweeps"] += 1
            probes["dict_probes"] += len(refresh_labels)
            for label in refresh_labels:
                change = delta_dictionary.lookup(label)
                maybe_count(counter, "dict_refreshes")
                if not change.is_empty():
                    entries[label] = entries[label].union(change)
                    if entry_changes is not None:
                        entry_changes.append(change)

            new_labels = [label for label in state.active if label not in entries]
            if new_labels:
                if post_env is None:
                    if context is not None:
                        post_env = context.post_shredded_environment()
                    else:
                        post_env = self._post_update_environment(
                            self._database.shredded_environment(), shredded_delta
                        )
                full_dictionary = self._dictionary_value(
                    state.compiled, state.expression, post_env, counter
                )
                for label in new_labels:
                    maybe_count(counter, "dict_initializations")
                    definition = full_dictionary.lookup(label)
                    entries[label] = definition
                    self._footprint_add(state, label)
                    if entry_changes is not None and not definition.is_empty():
                        entry_changes.append(definition)

            if entry_changes:
                self._propagate_entry_changes(state, entry_changes)

        self.stats.record_update(self._now() - started, counter)

    def vacuum(self) -> int:
        """Drop dictionary entries whose labels are no longer reachable.

        Returns the number of entries removed.  Stale entries are harmless
        for correctness (unshredding never looks them up) but keeping the
        dictionaries tight mirrors the space bounds of the paper.  Vacuum is
        also the reconciliation pass of the active-label index: counts and
        carriers are recomputed from scratch here (parents before children,
        so a child's scan sees its parent already vacuumed).
        """
        removed = 0
        self._result_cache = None
        for state in self._dict_states:
            state.active = self._scan_active(state)
            stale = [label for label in state.entries if label not in state.active]
            for label in stale:
                del state.entries[label]
                self._footprint_discard(state, label)
            if stale:
                state.snapshot = None
            removed += len(stale)
            if state.children:
                carrier = BagBuilder()
                for bag in state.entries.values():
                    carrier.apply_bag(bag)
                state.carrier = carrier
        return removed

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _dictionary_value(
        compiled: Optional[CompiledQuery],
        expression: Expr,
        environment: Environment,
        counter: OpCounter,
    ) -> DictValue:
        """Evaluate a context expression through its compiled pipeline if any."""
        if compiled is not None:
            value = compiled.evaluate(environment, counter)
        else:
            value = evaluate(expression, environment, counter)
        if not isinstance(value, DictValue):
            raise ShreddingError("context expressions must evaluate to dictionaries")
        return value

    def _post_update_environment(
        self, pre_env: Environment, shredded_delta: ShreddedDelta
    ) -> Environment:
        post = pre_env.copy()
        for name, bag in shredded_delta.bags.items():
            post.relations[name] = post.relations.get(name, EMPTY_BAG).union(bag)
        for name, dictionary in shredded_delta.dictionaries.items():
            existing = post.dictionaries.get(name, MaterializedDict({}))
            post.dictionaries[name] = existing.add(dictionary)
        return post

    def _active_labels(self, state: _DictState) -> List[Label]:
        """Labels that must be defined at this dictionary position.

        Served from the incrementally maintained active-label index in
        O(|active|); :meth:`_scan_active` is the O(|carrier|) scan that
        seeds it (construction) and reconciles it (:meth:`vacuum`).
        """
        return list(state.active)

    def _scan_active(self, state: _DictState) -> Dict[Label, int]:
        """Full carrier scan: label → distinct supporting carrier elements.

        Root positions (no ``"e"`` in the path) draw their labels from the
        flat view; nested positions draw them from their parent's carrier
        (the union of the parent's entries, already up to date — states are
        kept in parent-before-child order).
        """
        if state.parent is None:
            elements = self._flat_view.elements()  # iterates without freezing
        elif state.parent.carrier is not None:
            elements = state.parent.carrier.elements()
        else:
            elements = iter(())
        counts: Dict[Label, int] = {}
        for element in elements:
            value = self._project(element, state.tuple_path)
            if isinstance(value, Label):
                counts[value] = counts.get(value, 0) + 1
        return counts

    @staticmethod
    def _presence_transitions(carrier, change: Bag) -> List[Tuple[Any, int]]:
        """Elements of ``change`` that appear in / disappear from ``carrier``.

        ``carrier`` is anything answering ``multiplicity`` without freezing
        — a :class:`BagBuilder` (dictionary carriers) or the flat view's
        :class:`~repro.storage.ResultStore`.

        Computed *before* the change is folded in: ``(element, +1)`` when a
        multiplicity crosses zero upward (the element joins the carrier's
        support), ``(element, -1)`` when it cancels out.  Sign changes that
        stay non-zero are not transitions — the element keeps supporting its
        label either way, matching the support semantics of ``elements()``.
        """
        transitions: List[Tuple[Any, int]] = []
        for element, multiplicity in change.items():
            old = carrier.multiplicity(element)
            if old == 0:
                if multiplicity != 0:
                    transitions.append((element, 1))
            elif old + multiplicity == 0:
                transitions.append((element, -1))
        return transitions

    def _apply_transitions(
        self, state: _DictState, transitions: List[Tuple[Any, int]]
    ) -> None:
        """Fold carrier presence transitions into a state's active-label counts."""
        active = state.active
        for element, sign in transitions:
            value = self._project(element, state.tuple_path)
            if not isinstance(value, Label):
                continue
            count = active.get(value, 0) + sign
            if count <= 0:
                active.pop(value, None)
            else:
                active[value] = count

    # ------------------------------------------------------------------ #
    # Key-footprint index (see repro.ivm.footprint)
    # ------------------------------------------------------------------ #
    def _footprint_add(self, state: _DictState, label: Label) -> None:
        """Index one entries-label under every key combination of the plan."""
        plan = state.footprint_plan
        if plan is None:
            return
        for singleton in plan.singletons:
            if label.iota != singleton.iota or len(label.values) != singleton.arity:
                continue
            for constraint in singleton.constraints:
                key = tuple(
                    self._project(label.values[position], path)
                    for position, path in constraint.param_paths
                )
                combo = (singleton.iota, constraint.param_paths)
                bucket = state.footprint_index.setdefault(combo, {})
                bucket.setdefault(key, set()).add(label)

    def _footprint_discard(self, state: _DictState, label: Label) -> None:
        plan = state.footprint_plan
        if plan is None:
            return
        for singleton in plan.singletons:
            if label.iota != singleton.iota or len(label.values) != singleton.arity:
                continue
            for constraint in singleton.constraints:
                combo = (singleton.iota, constraint.param_paths)
                bucket = state.footprint_index.get(combo)
                if bucket is None:
                    continue
                key = tuple(
                    self._project(label.values[position], path)
                    for position, path in constraint.param_paths
                )
                labels = bucket.get(key)
                if labels is not None:
                    labels.discard(label)
                    if not labels:
                        del bucket[key]

    def _footprint_labels(
        self, state: _DictState, shredded_delta: ShreddedDelta
    ) -> Optional[List[Label]]:
        """The labels this update's delta can possibly touch, or ``None``.

        O(|Δ| + |footprint|): project every delta element at the plan's
        delta paths and collect the matching labels from the footprint
        index.  ``None`` (no plan, the escape hatch, or a dictionary delta
        whose support cannot be enumerated) means the caller must probe
        every entry.
        """
        plan = state.footprint_plan
        if plan is None or not footprint_enabled():
            return None
        matched: Set[Label] = set()
        probes = self._probe_stats
        for singleton in plan.singletons:
            for constraint in singleton.constraints:
                delta_bag = shredded_delta.bags.get(constraint.delta_name)
                if delta_bag is None or delta_bag.is_empty():
                    continue
                bucket = state.footprint_index.get(
                    (singleton.iota, constraint.param_paths)
                )
                if not bucket:
                    continue
                seen_keys: Set[Any] = set()
                for element in delta_bag.elements():
                    key = tuple(
                        self._project(element, path) for path in constraint.delta_paths
                    )
                    if key in seen_keys:
                        continue
                    seen_keys.add(key)
                    probes["footprint_keys"] += 1
                    labels = bucket.get(key)
                    if labels:
                        matched.update(labels)
        for name in plan.dict_deltas:
            dictionary = shredded_delta.dictionaries.get(name)
            if dictionary is None:
                continue
            support = dictionary.support()
            if support is None:
                return None
            matched.update(label for label in support if label in state.entries)
        return list(matched)

    def _propagate_entry_changes(self, state: _DictState, changes: List[Bag]) -> None:
        """Fold entry changes into the carrier and the children's label counts.

        Each change bag is a delta to the union-of-entries carrier; the
        per-bag transition pass keeps cross-label cancellation exact (an
        element leaving one label's entry while entering another's nets out
        before any child count moves).
        """
        carrier = state.carrier
        if carrier is None:
            carrier = state.carrier = BagBuilder()
        for change in changes:
            transitions = self._presence_transitions(carrier, change)
            carrier.apply_bag(change)
            if transitions:
                for child in state.children:
                    self._apply_transitions(child, transitions)

    @staticmethod
    def _project(value: Any, path: Tuple[Any, ...]) -> Any:
        current = value
        for token in path:
            if not isinstance(token, int):
                raise ShreddingError(f"unexpected path token {token!r}")
            if not isinstance(current, tuple) or token >= len(current):
                return None
            current = current[token]
        return current
