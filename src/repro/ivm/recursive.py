"""Recursive IVM: higher-order deltas with materialized partial evaluations.

Section 4.1 observes that the delta query itself can be sped up the same way
as the original query: partially evaluate it with respect to the database
(materializing the database-dependent parts) and maintain those
materializations with the next-order delta.  Because every derivation lowers
the degree by one (Theorem 2), the tower is finite, and after it is set up no
refresh ever needs to re-scan the base relations — only the update and the
materialized parts are touched.

Compiling delta towers to imperative trigger programs is explicitly out of
scope in the paper (Example 4); this engine instead performs the partial
evaluation at the granularity of *maximal database-dependent,
update-independent sub-expressions*:

* every such sub-expression of ``δ(h)`` (for example ``flatten(R)`` in
  Example 4) is materialized once and replaced by a reference,
* the residual delta then only touches the update and the materializations,
* each materialization is itself maintained by its own (cheap) delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bag.bag import Bag
from repro.bag.builder import BagBuilder
from repro.delta.rules import delta, depends_on
from repro.instrument import OpCounter
from repro.ivm.database import Database, ShreddedDelta
from repro.ivm.updates import Update
from repro.ivm.views import View
from repro.nrc import ast
from repro.nrc.analysis import free_elem_vars, referenced_deltas, referenced_relations
from repro.nrc.ast import Expr
from repro.nrc.compile import CompiledQuery, run_bag, try_compile
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.rewrite import simplify

__all__ = ["RecursiveIVMView", "partially_evaluate"]


@dataclass
class _Materialization:
    """A materialized database-dependent sub-expression and its delta.

    The materialized value lives in a transient builder: its per-update
    delta folds in place, and the immutable snapshot the residual delta
    reads is frozen (O(1)) when the evaluation environment is assembled.
    """

    name: str
    expression: Expr
    delta_expression: Expr
    value: BagBuilder
    compiled_delta: Optional[CompiledQuery] = None


def partially_evaluate(
    expr: Expr, targets: Sequence[str]
) -> Tuple[Expr, List[Tuple[str, Expr]]]:
    """Replace maximal database-dependent, update-independent sub-expressions.

    Returns the residual expression (with :class:`~repro.nrc.ast.BagVar`
    references in place of the materialized parts) and the list of
    ``(name, sub-expression)`` pairs to materialize.  A sub-expression
    qualifies when it references an updated relation, references no update
    symbol, has no free element variables (so it denotes a closed bag) and is
    not itself a bare relation reference (materializing those would just copy
    the base relation).
    """
    target_set = frozenset(targets)
    replacements: Dict[Expr, str] = {}
    ordered: List[Tuple[str, Expr]] = []

    def _qualifies(node: Expr) -> bool:
        if isinstance(node, (ast.Relation, ast.BagVar, ast.Empty, ast.DeltaRelation)):
            return False
        if isinstance(
            node,
            (
                ast.DictSingleton,
                ast.DictEmpty,
                ast.DictUnion,
                ast.DictAdd,
                ast.DictVar,
                ast.DeltaDictVar,
            ),
        ):
            return False
        if not depends_on(node, target_set):
            return False
        if referenced_deltas(node):
            return False
        if free_elem_vars(node):
            return False
        return True

    def _rewrite(node: Expr) -> Expr:
        if _qualifies(node):
            if node not in replacements:
                name = f"__mat{len(replacements)}"
                replacements[node] = name
                ordered.append((name, node))
            return ast.BagVar(replacements[node])
        new_children = tuple(_rewrite(child) for child in node.children())
        from repro.nrc.traverse import _rebuild_with_children

        return _rebuild_with_children(node, new_children)

    residual = _rewrite(expr)
    return residual, ordered


class RecursiveIVMView(View):
    """Materialized view maintained through a tower of higher-order deltas."""

    accepts_refresh_context = True

    def __init__(
        self,
        query: Expr,
        database: Database,
        targets: Optional[Sequence[str]] = None,
        register: bool = True,
    ) -> None:
        super().__init__()
        self._query = query
        self._database = database
        self._targets = tuple(sorted(targets)) if targets is not None else tuple(
            sorted(referenced_relations(query))
        )

        first_order = delta(query, self._targets)
        residual, to_materialize = partially_evaluate(first_order, self._targets)
        self._residual_delta = simplify(residual)
        self._compiled_residual = try_compile(self._residual_delta)
        compiled_query = try_compile(query)
        self._register_indexes(database, compiled_query, self._compiled_residual)

        counter = OpCounter()
        started = self._now()
        environment = database.environment()
        # The view materialization goes to a sharded result store (retained
        # snapshots COW per shard); the partial-evaluation materializations
        # below stay in plain builders — they are view-internal state no
        # reader ever retains across an update.
        self._result = database.create_result_store(
            "recursive", run_bag(compiled_query, query, environment, counter)
        )
        self._materializations: Dict[str, _Materialization] = {}
        for name, expression in to_materialize:
            value = evaluate_bag(expression, environment, counter)
            delta_expression = delta(expression, self._targets)
            self._materializations[name] = _Materialization(
                name=name,
                expression=expression,
                delta_expression=delta_expression,
                value=BagBuilder.from_bag(value),
                compiled_delta=try_compile(delta_expression),
            )
        self.stats.record_init(self._now() - started, counter)
        # The materialization-maintenance deltas read base relations too;
        # fold their join atoms into the registered set.
        self._register_indexes(
            database,
            compiled_query,
            self._compiled_residual,
            *(m.compiled_delta for m in self._materializations.values()),
        )
        self._execution_mode = (
            "compiled"
            if self._compiled_residual is not None
            and all(m.compiled_delta is not None for m in self._materializations.values())
            else "interpreted"
        )
        if register:
            database.register_view(self)

    # ------------------------------------------------------------------ #
    @property
    def residual_delta(self) -> Expr:
        """The first-order delta with database-dependent parts materialized."""
        return self._residual_delta

    def materialized_names(self) -> Tuple[str, ...]:
        return tuple(self._materializations)

    def result(self) -> Bag:
        return self._result.freeze()

    def result_store(self):
        return self._result

    def on_update(self, update: Update, shredded_delta: ShreddedDelta, context=None) -> None:
        counter = OpCounter()
        started = self._now()
        if context is not None:
            deltas = context.relation_deltas
        else:
            deltas = {
                (name, 1): bag for name, bag in update.relations.items() if not bag.is_empty()
            }
        if deltas:
            # Refresh the view using the residual delta: it reads only the
            # update and the materialized sub-expressions, never the base
            # relations.
            # Bare relation references may survive in the residual (for
            # example non-updated relations); they are read from the
            # pre-update database, which is the state delta queries expect.
            # The shared context environment is copied before binding the
            # view-local materialization snapshots.
            if context is not None:
                environment = context.delta_environment().copy()
            else:
                environment = self._database.environment(deltas)
            environment.bag_vars.update(
                {m.name: m.value.freeze() for m in self._materializations.values()}
            )
            change = run_bag(self._compiled_residual, self._residual_delta, environment, counter)
            self._result.apply_bag(change)
            # Drop the residual environment before maintenance: it holds the
            # frozen materialization snapshots, and releasing it lets the
            # builders below mutate in place instead of copy-on-write.
            del environment

            # Maintain the materialized sub-expressions with their own deltas
            # (the higher-order step); these deltas are evaluated against the
            # pre-update database state.
            maintenance_env = (
                context.delta_environment()
                if context is not None
                else self._database.environment(deltas)
            )
            for materialization in self._materializations.values():
                change = run_bag(
                    materialization.compiled_delta,
                    materialization.delta_expression,
                    maintenance_env,
                    counter,
                )
                materialization.value.apply_bag(change)
        self.stats.record_update(self._now() - started, counter)
