"""``python -m repro.replication.chaoscheck``: the replication chaos battery.

The replication analogue of :mod:`repro.durability.faultcheck`.  For every
maintenance strategy (naive / classic / recursive / nested) and every
chaos scenario, this module

1. stands up a real primary/replica HTTP pair (two in-process
   :class:`~repro.serve.ReproServer` instances over temp data dirs, the
   replica following the primary with ``replica_of``);
2. drives the movie workload over the wire — a dataset, one
   pinned-strategy view, and a batched update stream with deletions —
   recording every **acknowledged** operation in order;
3. injects the scenario's chaos mid-stream: killing the primary,
   partitioning the subscriber link, promoting twice, or crashing the
   replica between the mirror append and the engine apply (and restarting
   it from its own mirror);
4. promotes the replica and requires its state to be **exactly the
   acknowledged prefix**: the promoted engine's ``state_version`` selects
   a prefix of the acked op log, an in-memory reference server replays
   that prefix over the same wire path, and the two engines must be
   indistinguishable (:func:`~repro.durability.faults.state_differences`);
5. asserts the fencing contract: once a higher epoch exists, the demoted
   primary never acknowledges another write (it answers 503), and a stale
   demote is refused with 409.

Where both sides stay alive, the battery additionally checks the byte
contract of log shipping — every replica WAL segment is a byte-for-byte
prefix of the primary segment with the same number.

Exit status 0 when every cell holds, 1 with a per-cell report otherwise.
CI runs this as its replication leg next to the crash-recovery
``faultcheck`` leg; see ``docs/replication.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.client.api import APIClient, APIError
from repro.durability.faults import engine_state, state_differences
from repro.durability.wal import list_segments, resolve_fsync_policy
from repro.workloads.movies import generate_movies, movie_update_stream

__all__ = ["CHAOS_SCENARIOS", "main", "run_battery"]

STRATEGIES = ("naive", "classic", "recursive", "nested")

CHAOS_SCENARIOS = (
    "primary_kill",
    "subscriber_partition",
    "double_promotion",
    "replica_crash_mid_apply",
)

#: Wire query specs per strategy.  The JSON spec language only expresses
#: comprehensions over one dataset, so the flat strategies get the dramas
#: filter and the nest-capable ones the related query of Example 1.
_FILTER_SPEC = {
    "from": "M",
    "var": "m",
    "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
    "select": [["field", "m", "name"]],
}
_NEST_SPEC = {
    "from": "M",
    "var": "m",
    "select": [
        ["field", "m", "name"],
        [
            "nest",
            {
                "from": "M",
                "var": "m2",
                "where": [
                    "and",
                    ["ne", ["field", "m", "name"], ["field", "m2", "name"]],
                    [
                        "or",
                        ["eq", ["field", "m", "gen"], ["field", "m2", "gen"]],
                        ["eq", ["field", "m", "dir"], ["field", "m2", "dir"]],
                    ],
                ],
                "select": [["field", "m2", "name"]],
            },
        ],
    ],
}


def _spec_for(strategy: str) -> Dict[str, Any]:
    return _NEST_SPEC if strategy in ("naive", "nested") else _FILTER_SPEC


def build_wire_ops(strategy: str, movies: int, updates: int) -> List[Tuple[str, Dict[str, Any]]]:
    """One cell's workload as ``(endpoint, body)`` wire operations.

    Every op advances ``state_version`` by exactly one on whatever engine
    acknowledges it, so a promoted replica's version directly selects the
    acked prefix it must equal.
    """
    rows = generate_movies(movies)
    ops: List[Tuple[str, Dict[str, Any]]] = [
        (
            "datasets",
            {
                "name": "M",
                "fields": ["name", "gen", "dir"],
                "rows": [list(row) for row in rows.elements()],
            },
        ),
        (
            "views",
            {
                "name": f"{strategy}_view",
                "query": _spec_for(strategy),
                "strategy": strategy,
            },
        ),
    ]
    stream = movie_update_stream(
        updates, batch_size=3, existing=rows, deletion_ratio=0.25
    )
    for update in stream:
        wire = {
            relation: {"pairs": [[list(row), mult] for row, mult in bag.items()]}
            for relation, bag in update.relations.items()
        }
        ops.append(("apply", {"updates": [wire], "mode": "sync"}))
    return ops


def _apply_op(api: APIClient, tenant: str, op: Tuple[str, Dict[str, Any]]) -> None:
    endpoint, body = op
    api.post(f"v1/{tenant}/{endpoint}", body)


def _wait_until(
    predicate: Callable[[], bool], timeout: float, what: str
) -> Optional[str]:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return None
        time.sleep(0.02)
    return f"timed out after {timeout:g}s waiting for {what}"


class _Cell:
    """One strategy × scenario run: a live primary/replica pair."""

    def __init__(self, strategy: str, fsync: str, tenant: str = "default") -> None:
        from repro.serve import ReproServer, ServerConfig

        self.strategy = strategy
        self.tenant = tenant
        self.tmp = tempfile.TemporaryDirectory(prefix="repro-chaoscheck-")
        self.primary_dir = os.path.join(self.tmp.name, "primary")
        self.replica_dir = os.path.join(self.tmp.name, "replica")
        self._config = dict(host="127.0.0.1", port=0, quiet=True, fsync=fsync)
        self.primary = ReproServer(
            ServerConfig(data_dir=self.primary_dir, **self._config)
        ).start()
        self.replica = ReproServer(
            ServerConfig(
                data_dir=self.replica_dir,
                replica_of=self.primary.url,
                poll_wait=0.5,
                poll_interval=0.01,
                **self._config,
            )
        ).start()
        self.api = APIClient(self.primary.url, max_retries=1, sleep=lambda _: None)
        #: Ops the primary acknowledged, in acknowledgement order.
        self.acked: List[Tuple[str, Dict[str, Any]]] = []

    # -- drive ---------------------------------------------------------- #
    def apply_acked(self, ops: Sequence[Tuple[str, Dict[str, Any]]]) -> None:
        for op in ops:
            _apply_op(self.api, self.tenant, op)
            self.acked.append(op)

    def replica_session(self):
        return self.replica.sessions.get(self.tenant)

    def wait_converged(self, timeout: float = 15.0) -> Optional[str]:
        target = len(self.acked)

        def _caught_up() -> bool:
            from repro.serve.sessions import TenantRecoveringError

            try:
                status = self.replica_session().replication_status()
            except TenantRecoveringError:
                return False
            lag = status.get("replication_lag") or {}
            return status["state_version"] >= target and lag.get("records") == 0

        return _wait_until(
            _caught_up, timeout, f"replica to reach version {target} with lag 0"
        )

    # -- chaos ---------------------------------------------------------- #
    def kill_primary(self) -> None:
        """Tear the primary down without draining — subscribers just see
        connection errors, like a killed process would produce."""
        self.primary.close(drain=False)

    def restart_replica(self) -> None:
        """Crash-restart the replica server over the same data dir."""
        from repro.serve import ReproServer, ServerConfig

        self.replica.close(drain=False)
        self.replica = ReproServer(
            ServerConfig(
                data_dir=self.replica_dir,
                replica_of=self.primary.url,
                poll_wait=0.5,
                poll_interval=0.01,
                **self._config,
            )
        ).start()

    def promote_replica(self, *, epoch: Optional[int] = None) -> Dict[str, Any]:
        client = APIClient(self.replica.url, max_retries=1, sleep=lambda _: None)
        body: Dict[str, Any] = {} if epoch is None else {"epoch": epoch}
        return client.post(f"v1/{self.tenant}/promote", body)

    # -- checks --------------------------------------------------------- #
    def mirror_prefix_problems(self) -> List[str]:
        """Every replica WAL segment must be a byte prefix of the primary's."""
        problems: List[str] = []
        primary_wal = os.path.join(self.primary_dir, self.tenant, "wal")
        replica_wal = os.path.join(self.replica_dir, self.tenant, "wal")
        upstream = dict(list_segments(primary_wal))
        for number, path in list_segments(replica_wal):
            if number not in upstream:
                problems.append(f"replica has segment {number} the primary lacks")
                continue
            with open(path, "rb") as handle:
                mirrored = handle.read()
            with open(upstream[number], "rb") as handle:
                original = handle.read(len(mirrored))
            if mirrored != original:
                problems.append(
                    f"segment {number}: replica bytes are not a prefix of the "
                    f"primary's ({len(mirrored)} bytes compared)"
                )
        return problems

    def acked_prefix_problems(self, engine) -> List[str]:
        """The promoted engine must equal the acked prefix its version selects."""
        from repro.serve import ReproServer, ServerConfig

        version = engine.state_version
        if version > len(self.acked):
            return [
                f"promoted replica at version {version} is ahead of the "
                f"{len(self.acked)} acknowledged op(s)"
            ]
        reference_server = ReproServer(
            ServerConfig(host="127.0.0.1", port=0, quiet=True)
        ).start()
        try:
            reference_api = APIClient(
                reference_server.url, max_retries=1, sleep=lambda _: None
            )
            for op in self.acked[:version]:
                _apply_op(reference_api, self.tenant, op)
            reference = reference_server.sessions.get(self.tenant).engine
            return state_differences(engine_state(reference), engine_state(engine))
        finally:
            reference_server.close(drain=False)

    def fenced_primary_problems(self) -> List[str]:
        """A demoted primary must never acknowledge another write."""
        problems: List[str] = []
        session = self.primary.sessions.get(self.tenant)
        if session.role != "fenced":
            problems.append(f"old primary role is {session.role!r}, not fenced")
        probe = {"updates": [{"M": {"rows": [["PostFence", "Drama", "Nobody"]]}}]}
        try:
            self.api.post(f"v1/{self.tenant}/apply", probe)
        except APIError as error:
            if error.status not in (503, 409):
                problems.append(
                    f"post-fence write failed with {error.status}/{error.code}, "
                    f"expected 503 not_writable"
                )
        else:
            problems.append("demoted primary acknowledged a post-fence write")
        return problems

    def wait_old_primary_fenced(self, timeout: float = 10.0) -> Optional[str]:
        return _wait_until(
            lambda: self.primary.sessions.get(self.tenant).role == "fenced",
            timeout,
            "the old primary to observe the higher epoch and fence itself",
        )

    def close(self) -> None:
        for server in (self.replica, self.primary):
            try:
                server.close(drain=False)
            except Exception:
                pass
        self.tmp.cleanup()


# --------------------------------------------------------------------------- #
# Scenarios
# --------------------------------------------------------------------------- #
def _run_primary_kill(cell: _Cell, ops: Sequence[Tuple[str, Dict[str, Any]]]) -> List[str]:
    """Kill the primary mid-stream; promote; state ≡ an acked prefix."""
    half = len(ops) // 2
    cell.apply_acked(ops[:half])
    problem = cell.wait_converged()
    if problem:
        return [problem]
    cell.apply_acked(ops[half:])
    cell.kill_primary()
    result = cell.promote_replica()
    problems = [] if result.get("promoted") else [f"promote failed: {result}"]
    engine = cell.replica_session().engine
    problems += cell.acked_prefix_problems(engine)
    # The promoted tenant must take writes immediately.
    new_primary = APIClient(cell.replica.url, max_retries=1, sleep=lambda _: None)
    payload = new_primary.post(
        f"v1/{cell.tenant}/apply",
        {"updates": [{"M": {"rows": [["AfterFailover", "Drama", "Nobody"]]}}]},
    )
    if payload["results"][-1]["version"] != engine.state_version:
        problems.append("write after promotion did not advance the promoted engine")
    return problems


def _run_subscriber_partition(
    cell: _Cell, ops: Sequence[Tuple[str, Dict[str, Any]]]
) -> List[str]:
    """Partition the link mid-stream; heal; converge; promote; verify."""
    third = max(len(ops) // 3, 1)
    cell.apply_acked(ops[:third])
    problem = cell.wait_converged()
    if problem:
        return [problem]
    link = cell.replica_session().link
    link.pause()
    cell.apply_acked(ops[third : 2 * third])
    status = cell.replica_session().replication_status()
    problems: List[str] = []
    if status["state_version"] >= len(cell.acked):
        problems.append("partitioned replica kept up — the partition did nothing")
    link.resume()
    cell.apply_acked(ops[2 * third :])
    problem = cell.wait_converged()
    if problem:
        return problems + [problem]
    problems += cell.mirror_prefix_problems()
    result = cell.promote_replica()
    if not result.get("promoted"):
        problems.append(f"promote failed: {result}")
    problems += cell.acked_prefix_problems(cell.replica_session().engine)
    problem = cell.wait_old_primary_fenced()
    if problem:
        return problems + [problem]
    return problems + cell.fenced_primary_problems()


def _run_double_promotion(
    cell: _Cell, ops: Sequence[Tuple[str, Dict[str, Any]]]
) -> List[str]:
    """Promote twice; the second is idempotent, stale demotes are refused."""
    cell.apply_acked(ops)
    problem = cell.wait_converged()
    if problem:
        return [problem]
    first = cell.promote_replica()
    problems = [] if first.get("promoted") else [f"first promote failed: {first}"]
    second = cell.promote_replica()
    if not second.get("already_primary"):
        problems.append(f"second promote was not idempotent: {second}")
    if second.get("epoch") != first.get("epoch"):
        problems.append(
            f"re-promotion moved the epoch: {first.get('epoch')} -> "
            f"{second.get('epoch')}"
        )
    problems += cell.acked_prefix_problems(cell.replica_session().engine)
    problem = cell.wait_old_primary_fenced()
    if problem:
        return problems + [problem]
    problems += cell.fenced_primary_problems()
    # A demote that does not supersede the current epoch must be refused.
    new_primary = APIClient(cell.replica.url, max_retries=1, sleep=lambda _: None)
    try:
        new_primary.post(
            f"v1/{cell.tenant}/demote",
            {"epoch": first.get("epoch", 1), "reason": "stale split-brain demote"},
        )
    except APIError as error:
        if error.status != 409:
            problems.append(
                f"stale demote failed with {error.status}, expected 409"
            )
    else:
        problems.append("new primary accepted a demote at its own epoch")
    return problems


def _run_replica_crash_mid_apply(
    cell: _Cell, ops: Sequence[Tuple[str, Dict[str, Any]]]
) -> List[str]:
    """Crash the replica between mirror-append and engine-apply; restart;
    it must resume from its own mirror and converge; promote; verify."""
    half = len(ops) // 2
    cell.apply_acked(ops[:half])
    problem = cell.wait_converged()
    if problem:
        return [problem]
    crashed = threading.Event()

    def _chaos(point: str) -> None:
        if point == "replica.mid_apply" and not crashed.is_set():
            crashed.set()
            raise RuntimeError("chaos: replica dies between mirror and apply")

    link = cell.replica_session().link
    link._chaos = _chaos
    cell.apply_acked(ops[half:])
    problem = _wait_until(
        lambda: link.crashed, 10.0, "the chaos hook to crash the replica link"
    )
    if problem:
        return [problem]
    cell.restart_replica()
    problem = cell.wait_converged()
    if problem:
        return [problem]
    problems = cell.mirror_prefix_problems()
    result = cell.promote_replica()
    if not result.get("promoted"):
        problems.append(f"promote failed: {result}")
    problems += cell.acked_prefix_problems(cell.replica_session().engine)
    problem = cell.wait_old_primary_fenced()
    if problem:
        return problems + [problem]
    return problems + cell.fenced_primary_problems()


_SCENARIO_RUNNERS = {
    "primary_kill": _run_primary_kill,
    "subscriber_partition": _run_subscriber_partition,
    "double_promotion": _run_double_promotion,
    "replica_crash_mid_apply": _run_replica_crash_mid_apply,
}


# --------------------------------------------------------------------------- #
# Battery
# --------------------------------------------------------------------------- #
def run_battery(
    strategies: Sequence[str] = STRATEGIES,
    scenarios: Sequence[str] = CHAOS_SCENARIOS,
    *,
    movies: int = 12,
    updates: int = 5,
    fsync: Optional[str] = None,
    verbose: bool = False,
) -> List[str]:
    """Run the full chaos battery; returns the list of failures."""
    policy = resolve_fsync_policy(fsync)
    failures: List[str] = []
    for strategy in strategies:
        ops = build_wire_ops(strategy, movies, updates)
        for scenario in scenarios:
            cell_name = f"{strategy} × {scenario}"
            cell = _Cell(strategy, policy)
            try:
                problems = _SCENARIO_RUNNERS[scenario](cell, ops)
            except (APIError, OSError) as error:
                problems = [f"unhandled error: {error}"]
            finally:
                cell.close()
            if problems:
                failures.extend(f"{cell_name}: {problem}" for problem in problems)
                print(f"FAIL  {cell_name}")
                for problem in problems:
                    print(f"      - {problem}")
            elif verbose:
                print(f"ok    {cell_name}")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replication.chaoscheck",
        description="Replication & failover chaos battery (see docs/replication.md)",
    )
    parser.add_argument(
        "--strategy",
        action="append",
        choices=STRATEGIES,
        default=None,
        help="restrict to one strategy (repeatable; default: all four)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=CHAOS_SCENARIOS,
        default=None,
        help="restrict to one chaos scenario (repeatable; default: all)",
    )
    parser.add_argument("--movies", type=int, default=12)
    parser.add_argument("--updates", type=int, default=5)
    parser.add_argument(
        "--fsync",
        choices=("always", "batch", "off"),
        default=None,
        help="WAL fsync policy (default: $REPRO_FSYNC or 'batch')",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    strategies = tuple(args.strategy or STRATEGIES)
    scenarios = tuple(args.scenario or CHAOS_SCENARIOS)
    started = time.perf_counter()
    failures = run_battery(
        strategies,
        scenarios,
        movies=args.movies,
        updates=args.updates,
        fsync=args.fsync,
        verbose=args.verbose,
    )
    cells = len(strategies) * len(scenarios)
    elapsed = time.perf_counter() - started
    policy = resolve_fsync_policy(args.fsync)
    if failures:
        print(
            f"chaoscheck: {len(failures)} failure(s) across {cells} cells "
            f"(fsync={policy}, {elapsed:.1f}s)"
        )
        return 1
    print(
        f"chaoscheck: {cells} cells held — promoted state ≡ acked prefix, "
        f"no post-fence ack (strategies={','.join(strategies)}, "
        f"fsync={policy}, {elapsed:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
