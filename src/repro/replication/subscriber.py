"""The replica-side link: long-poll the primary, mirror, apply.

:class:`ReplicaLink` is a daemon thread owned by a replica tenant session.
Each iteration long-polls ``GET /v1/{tenant}/wal`` on the upstream for
frames past the local mirror's end, then hands the batch to the session's
single-writer worker, which (in order) appends the frames verbatim to the
local WAL mirror, fsyncs, and applies each payload through the engine's
replay path with logging suspended.  Because the mirror is a byte prefix
of the primary's WAL and replay is deterministic, the replica's versioned
snapshots — and therefore its ETags — match the primary's at every version
it has reached.

The link carries the replica's **epoch** on every request; a primary that
sees a higher epoch than its own knows it has been superseded and fences
itself.  Conversely the link adopts the upstream's epoch from every
response, so a replica always knows the newest epoch it has observed when
it is asked to promote.

``pause()``/``resume()`` freeze polling without tearing the thread down —
promotion pauses the link before fencing, and the chaos battery uses the
same switch to simulate a network partition.  An optional ``chaos`` hook
fires at named points (``replica.pre_apply``, ``replica.mid_apply``,
``replica.post_apply``) so the battery can crash a replica in the middle
of an apply without widening the durability layer's ``CRASH_POINTS``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Callable, Dict, Optional

from repro.replication.feed import ReplicationError, decode_frames

__all__ = ["ReplicaLink"]

#: Chaos hook points the link fires (outside the worker); the session's
#: apply path fires ``replica.mid_apply`` between mirror and engine apply.
LINK_CHAOS_POINTS = ("replica.pre_apply", "replica.mid_apply", "replica.post_apply")


class ReplicaLink:
    """Tail one upstream tenant's WAL into a local session.

    The session wires the link up with callables rather than the link
    importing the serving layer:

    ``position()``
        ``(segment, offset)`` end of the local durable mirror — where to
        resume fetching.  Derived from the replica's own files, so a crash
        anywhere needs no position ledger.
    ``apply(frames, chaos)``
        Mirror-append + fsync + engine-apply the shipped frames, executed
        on the session's single-writer worker; calls ``chaos`` at
        ``replica.mid_apply`` between the two halves.
    ``reseed(bootstrap)``
        Reinstall the tenant from a shipped checkpoint (cold start, a
        pruned-away position, or a diverged/fenced directory).
    ``observe_epoch(epoch)``
        Adopt the upstream's epoch (monotone).
    ``local_epoch()``
        The epoch to advertise upstream.
    """

    def __init__(
        self,
        upstream: str,
        tenant: str,
        *,
        position: Callable[[], tuple],
        apply: Callable[..., Any],
        reseed: Callable[[Dict[str, Any]], None],
        observe_epoch: Callable[[int], None],
        local_epoch: Callable[[], int],
        poll_wait: float = 5.0,
        poll_interval: float = 0.05,
        max_bytes: int = 1 << 20,
        need_reseed: bool = False,
        chaos: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.upstream = upstream.rstrip("/")
        self.tenant = tenant
        self._position = position
        self._apply = apply
        self._reseed = reseed
        self._observe_epoch = observe_epoch
        self._local_epoch = local_epoch
        self.poll_wait = poll_wait
        self.poll_interval = poll_interval
        self.max_bytes = max_bytes
        self.need_reseed = need_reseed
        self._chaos = chaos
        self._stop = threading.Event()
        self._unpaused = threading.Event()
        self._unpaused.set()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        # Telemetry, guarded by _lock.
        self._polls = 0
        self._frames_shipped = 0
        self._bytes_shipped = 0
        self._bootstraps = 0
        self._lag_records = 0
        self._lag_bytes = 0
        self._upstream_epoch = 0
        self._upstream_role: Optional[str] = None
        self._last_error: Optional[str] = None
        self._connected = False
        self.crashed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"replica-link-{self.tenant}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Ask the loop to exit and wait for it.

        Safe to call from the link's own worker-side apply (the join is
        skipped when called on the link thread itself).
        """
        self._stop.set()
        self._unpaused.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout)

    def pause(self) -> None:
        """Freeze polling after the in-flight iteration completes."""
        self._unpaused.clear()

    def resume(self) -> None:
        self._unpaused.set()

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive() and not self._stop.is_set()

    @property
    def paused(self) -> bool:
        return not self._unpaused.is_set()

    def fire_chaos(self, point: str) -> None:
        """Invoke the chaos hook (if any) at ``point``; it may raise."""
        if self._chaos is not None:
            self._chaos(point)

    # ------------------------------------------------------------------ #
    # Status
    # ------------------------------------------------------------------ #

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "upstream": self.upstream,
                "running": self.running,
                "paused": self.paused,
                "connected": self._connected,
                "need_reseed": self.need_reseed,
                "polls": self._polls,
                "frames_shipped": self._frames_shipped,
                "bytes_shipped": self._bytes_shipped,
                "bootstraps": self._bootstraps,
                "lag_records": self._lag_records,
                "lag_bytes": self._lag_bytes,
                "upstream_epoch": self._upstream_epoch,
                "upstream_role": self._upstream_role,
                "last_error": self._last_error,
            }

    # ------------------------------------------------------------------ #
    # The poll loop
    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        backoff = self.poll_interval
        while not self._stop.is_set():
            if not self._unpaused.wait(timeout=0.25):
                continue
            if self._stop.is_set():
                break
            try:
                progressed = self._poll_once()
            except _LinkCrash:
                # The chaos hook simulated a replica crash: stop dead,
                # leaving whatever the worker managed on disk as-is.
                self.crashed = True
                self._stop.set()
                break
            except Exception as error:  # noqa: BLE001 - keep tailing
                with self._lock:
                    self._last_error = f"{type(error).__name__}: {error}"
                    self._connected = False
                self._stop.wait(backoff)
                backoff = min(backoff * 2, 2.0)
                continue
            backoff = self.poll_interval
            if not progressed:
                # The server long-polled already; a short local sleep just
                # bounds the request rate on an idle stream.
                self._stop.wait(self.poll_interval)

    def _poll_once(self) -> bool:
        """One fetch/mirror/apply round.  Returns True if frames landed."""
        reseeding = self.need_reseed
        if reseeding:
            segment, offset = 0, 0
        else:
            segment, offset = self._position()
        params = {
            "from_segment": str(segment),
            "from_offset": str(offset),
            "wait": f"{self.poll_wait:g}",
            "max_bytes": str(self.max_bytes),
            "epoch": str(self._local_epoch()),
        }
        if reseeding:
            params["bootstrap"] = "1"
        body = self._fetch(params)
        epoch = int(body.get("epoch", 0))
        self._observe_epoch(epoch)
        status = body.get("status", "ok")
        with self._lock:
            self._polls += 1
            self._connected = True
            self._upstream_epoch = max(self._upstream_epoch, epoch)
            self._upstream_role = body.get("role")
            self._lag_records = int(body.get("lag_records", 0))
            self._lag_bytes = int(body.get("lag_bytes", 0))
            self._last_error = None
        if reseeding:
            bootstrap = body.get("bootstrap")
            if bootstrap is None and status in ("ok",):
                # No checkpoint upstream yet: the stream starts at segment
                # 1 and a plain wipe-and-tail reseed suffices.
                self._reseed({})
            elif bootstrap is not None:
                self._reseed(bootstrap)
            else:
                raise ReplicationError(
                    f"upstream reported {status!r} but shipped no bootstrap"
                )
            self.need_reseed = False
            with self._lock:
                self._bootstraps += 1
            return True
        if status in ("pruned", "diverged"):
            # Cannot continue from our position: fall back to a bootstrap
            # on the next iteration.
            self.need_reseed = True
            with self._lock:
                self._last_error = f"stream {status} at {segment}:{offset}"
            return True
        frames = decode_frames(body.get("frames", []))
        if not frames:
            return False
        self._guarded_chaos("replica.pre_apply")
        # The worker re-raises chaos-hook exceptions verbatim (Command
        # semantics), so guarding here catches ``replica.mid_apply`` too.
        self._apply(frames, self._guarded_chaos)
        self._guarded_chaos("replica.post_apply")
        with self._lock:
            self._frames_shipped += len(frames)
            self._bytes_shipped += sum(len(frame) for _, _, frame in frames)
        return True

    def _guarded_chaos(self, point: str) -> None:
        try:
            self.fire_chaos(point)
        except Exception as error:
            raise _LinkCrash(point) from error

    def _fetch(self, params: Dict[str, str]) -> Dict[str, Any]:
        url = (
            f"{self.upstream}/v1/{urllib.parse.quote(self.tenant)}/wal?"
            + urllib.parse.urlencode(params)
        )
        request = urllib.request.Request(url, method="GET")
        try:
            with urllib.request.urlopen(
                request, timeout=self.poll_wait + 10.0
            ) as response:
                payload = response.read()
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                detail = error.read().decode("utf-8", "replace")[:200]
            except Exception:  # noqa: BLE001 - detail is best-effort
                pass
            raise ReplicationError(
                f"upstream {error.code} for {self.tenant}: {detail}"
            ) from error
        return json.loads(payload.decode("utf-8"))


class _LinkCrash(Exception):
    """A chaos hook fired: the link dies in place, mid-stream."""
