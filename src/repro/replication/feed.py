"""The WAL shipping feed: byte-addressed frame tailing and mirroring.

Replication ships the primary's WAL **verbatim**: a subscriber names a
``(segment, offset)`` byte position, the feed answers with the complete
record frames on disk past it, and the replica appends those frames —
header, CRC, payload, unchanged — into same-numbered local segment files.
The replica's WAL is therefore a byte-identical prefix of the primary's,
which buys the two properties failover needs:

* **crash-safe resume** — the replica's position is derived from its own
  files (:func:`wal_end_position`) after a normal recovery, so a crash
  between mirror-append and apply needs no separate position ledger:
  restart replays the local mirror, and re-fetching starts exactly where
  the durable bytes end.
* **bit-for-bit promotion** — a promoted replica recovers from the same
  bytes the primary would have, so its state is the primary's acknowledged
  prefix, not an approximation of it.

Positions advance across **rotation boundaries** deterministically: a
position at the exact end of a sealed segment (one a later segment
follows) normalizes to ``(next_segment, header)``, so a subscriber parked
at a rotation point resumes on the next segment without skipping or
duplicating a record (the ``tests/test_durability.py`` tailing cases).

Only bytes on disk ship.  Under every fsync policy the WAL's
application-level buffer drains to the file at the sync points, so the
shipped stream never contains a record the primary could still lose in a
crash — acked-before-shipped, by construction.
"""

from __future__ import annotations

import base64
import os
import shutil
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.checkpoint import list_checkpoints, read_manifest
from repro.durability.wal import SEGMENT_MAGIC, list_segments, segment_filename
from repro.errors import ReproError

__all__ = [
    "FeedChunk",
    "ReplicationError",
    "WAL_HEADER_BYTES",
    "append_mirror_frames",
    "count_lag",
    "install_bootstrap",
    "normalize_position",
    "package_bootstrap",
    "read_frames",
    "wal_end_position",
]

#: Every segment file starts with the 8-byte magic; offset 8 is the first
#: record frame, and the canonical "start of segment" position.
WAL_HEADER_BYTES = len(SEGMENT_MAGIC)

_FRAME = struct.Struct("<II")

#: Default byte budget of one feed chunk (keeps long-poll responses and
#: replica apply batches bounded).
DEFAULT_MAX_BYTES = 1 << 20


class ReplicationError(ReproError):
    """A shipping-stream invariant broke (gap, divergence, bad frame)."""


class FeedChunk:
    """One feed response: frames plus where to resume and where the end is.

    ``status`` is ``"ok"`` (frames — possibly none — from a live stream),
    ``"pruned"`` (the requested segment was checkpoint-pruned away: the
    subscriber must bootstrap from a checkpoint), or ``"diverged"`` (the
    requested position does not exist in this WAL — the subscriber is
    ahead of, or forked from, this primary and must reseed).
    """

    __slots__ = ("status", "frames", "next", "end")

    def __init__(
        self,
        status: str,
        frames: List[Tuple[int, int, bytes]],
        next_position: Tuple[int, int],
        end_position: Tuple[int, int],
    ) -> None:
        self.status = status
        self.frames = frames  # (segment, offset, raw frame bytes), in order
        self.next = next_position
        self.end = end_position

    def __repr__(self) -> str:
        return (
            f"FeedChunk({self.status}, frames={len(self.frames)}, "
            f"next={self.next}, end={self.end})"
        )


# ---------------------------------------------------------------------- #
# Positions
# ---------------------------------------------------------------------- #

def wal_end_position(wal_dir: str) -> Tuple[int, int]:
    """The ``(segment, offset)`` one past the last durable byte.

    An empty (or missing) WAL directory is position ``(1, header)`` — the
    very first frame a segment-1 append would produce.
    """
    segments = list_segments(wal_dir)
    if not segments:
        return (1, WAL_HEADER_BYTES)
    number, path = segments[-1]
    try:
        size = os.path.getsize(path)
    except OSError:
        size = 0
    return (number, max(size, WAL_HEADER_BYTES))


def normalize_position(wal_dir: str, segment: int, offset: int) -> Tuple[int, int]:
    """Canonicalize a position: header-floor the offset, hop sealed ends.

    A position at (or past) the end of a segment that a *later* segment
    follows advances to the next segment's first frame; a position at the
    end of the live tail segment stays put (there is nothing to hop to
    yet).  ``segment`` 0 or negative means "from the very beginning".
    """
    if segment < 1:
        segment = 1
    offset = max(offset, WAL_HEADER_BYTES)
    by_number = dict(list_segments(wal_dir))
    while True:
        path = by_number.get(segment)
        if path is None:
            return (segment, offset)
        try:
            size = os.path.getsize(path)
        except OSError:
            return (segment, offset)
        if offset >= max(size, WAL_HEADER_BYTES) and (segment + 1) in by_number:
            segment += 1
            offset = WAL_HEADER_BYTES
            continue
        return (segment, offset)


# ---------------------------------------------------------------------- #
# Reading (the primary side of the feed)
# ---------------------------------------------------------------------- #

def read_frames(
    wal_dir: str,
    from_segment: int,
    from_offset: int,
    *,
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> FeedChunk:
    """Complete record frames on disk past ``(from_segment, from_offset)``.

    Stops at the first incomplete or CRC-failing frame (an append or torn
    tail in progress — the bytes will be re-read complete on the next
    poll), at ``max_bytes``, or at the end of the durable stream.  Reading
    races appends harmlessly: frames are parsed from a point-in-time read
    of the file, and a partial trailing frame is simply not shipped yet.
    """
    segments = list_segments(wal_dir)
    end = wal_end_position(wal_dir)
    if not segments:
        position = (max(from_segment, 1), max(from_offset, WAL_HEADER_BYTES))
        return FeedChunk("ok", [], position, end)
    oldest = segments[0][0]
    newest = segments[-1][0]
    if max(from_segment, 1) < oldest:
        return FeedChunk("pruned", [], (from_segment, from_offset), end)
    segment, offset = normalize_position(wal_dir, from_segment, from_offset)
    if segment > newest:
        if segment == newest + 1 and offset == WAL_HEADER_BYTES:
            # Parked exactly where the next rotation will create a segment.
            return FeedChunk("ok", [], (segment, offset), end)
        return FeedChunk("diverged", [], (segment, offset), end)
    by_number = dict(segments)
    frames: List[Tuple[int, int, bytes]] = []
    shipped = 0
    while segment <= newest and shipped < max_bytes:
        path = by_number.get(segment)
        if path is None:
            # A hole in the numbering below the newest segment cannot come
            # from normal operation (pruning removes prefixes only).
            return FeedChunk(
                "diverged", frames, (segment, offset), wal_end_position(wal_dir)
            )
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            # Checkpoint-pruned between listing and reading.
            return FeedChunk("pruned", frames, (segment, offset), end)
        if data[:WAL_HEADER_BYTES] != SEGMENT_MAGIC:
            if segment == newest and len(data) < WAL_HEADER_BYTES:
                # A rotation in progress: the new segment exists but its
                # header is not durable yet.  Nothing to ship from it.
                break
            return FeedChunk("diverged", frames, (segment, offset), end)
        if offset > len(data):
            return FeedChunk("diverged", frames, (segment, offset), end)
        pos = offset
        size = len(data)
        while pos < size and shipped < max_bytes:
            if size - pos < _FRAME.size:
                break
            length, crc = _FRAME.unpack_from(data, pos)
            frame_end = pos + _FRAME.size + length
            if frame_end > size:
                break
            payload = data[pos + _FRAME.size : frame_end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                break
            frames.append((segment, pos, data[pos:frame_end]))
            shipped += frame_end - pos
            pos = frame_end
        offset = pos
        if shipped >= max_bytes:
            break
        if segment < newest and pos >= size:
            segment += 1
            offset = WAL_HEADER_BYTES
        else:
            break
    next_position = normalize_position(wal_dir, segment, offset)
    return FeedChunk("ok", frames, next_position, wal_end_position(wal_dir))


def count_lag(
    wal_dir: str, position: Tuple[int, int], end: Optional[Tuple[int, int]] = None
) -> Tuple[int, int]:
    """``(records, bytes)`` of durable stream between ``position`` and the end.

    What ``/health`` and ``/stats`` report as ``replication_lag``: the
    records a subscriber parked at ``position`` has not yet shipped.
    """
    if end is None:
        end = wal_end_position(wal_dir)
    segment, offset = normalize_position(wal_dir, *position)
    records = 0
    lag_bytes = 0
    for number, path in list_segments(wal_dir):
        if number < segment or number > end[0]:
            continue
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            continue
        pos = offset if number == segment else WAL_HEADER_BYTES
        stop = end[1] if number == end[0] else len(data)
        stop = min(stop, len(data))
        while pos < stop:
            if stop - pos < _FRAME.size:
                break
            length, crc = _FRAME.unpack_from(data, pos)
            frame_end = pos + _FRAME.size + length
            if frame_end > stop:
                break
            records += 1
            lag_bytes += frame_end - pos
            pos = frame_end
    return records, lag_bytes


# ---------------------------------------------------------------------- #
# Mirroring (the replica side of the feed)
# ---------------------------------------------------------------------- #

def append_mirror_frames(
    wal_dir: str,
    frames: List[Tuple[int, int, bytes]],
    *,
    fsync: bool = True,
) -> Tuple[int, int]:
    """Append shipped frames verbatim into the local mirror segments.

    Each frame must land exactly at the current end of its segment file
    (frames already present are skipped — redelivery after a crash is
    idempotent); a frame that would leave a gap raises
    :class:`ReplicationError`, because a mirror with holes is not a prefix
    of the primary's WAL and must reseed instead.  Returns the mirror's
    end position.  ``fsync=True`` makes the appended frames durable before
    returning — the replica applies records only after this, so its engine
    state never runs ahead of its durable mirror across a crash.
    """
    os.makedirs(wal_dir, exist_ok=True)
    touched: Dict[str, Any] = {}
    try:
        for segment, offset, frame in frames:
            path = os.path.join(wal_dir, segment_filename(segment))
            handle = touched.get(path)
            if handle is None:
                handle = touched[path] = open(path, "ab", buffering=0)
                handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size < WAL_HEADER_BYTES:
                if size != 0:
                    raise ReplicationError(
                        f"mirror segment {segment_filename(segment)} has a "
                        f"partial header ({size} bytes); reseed required"
                    )
                handle.write(SEGMENT_MAGIC)
                size = WAL_HEADER_BYTES
            if offset < size:
                # Already mirrored (redelivery); verify length coherence
                # cheaply by requiring the claimed end not to pass our end.
                if offset + len(frame) > size:
                    raise ReplicationError(
                        f"mirror segment {segment_filename(segment)} diverges "
                        f"at offset {offset}; reseed required"
                    )
                continue
            if offset > size:
                raise ReplicationError(
                    f"shipped frame for segment {segment_filename(segment)} "
                    f"starts at {offset} but the mirror ends at {size}; "
                    f"a gap means lost frames — reseed required"
                )
            handle.write(frame)
        if fsync:
            for handle in touched.values():
                os.fsync(handle.fileno())
    finally:
        for handle in touched.values():
            handle.close()
    return wal_end_position(wal_dir)


# ---------------------------------------------------------------------- #
# Bootstrap (checkpoint shipping for cold or pruned-behind replicas)
# ---------------------------------------------------------------------- #

def package_bootstrap(checkpoint_root: str) -> Optional[Dict[str, Any]]:
    """The newest checkpoint directory, packaged for the wire.

    ``None`` when no checkpoint exists (the WAL then still starts at
    segment 1, so a cold subscriber needs no bootstrap).  Files travel
    base64-encoded; they are already CRC-framed internally, so the replica
    detects transit rot at install time via the normal checkpoint loader.
    """
    checkpoints = list_checkpoints(checkpoint_root)
    if not checkpoints:
        return None
    seq, path = checkpoints[-1]
    try:
        manifest = read_manifest(path)
        files = {}
        for name in sorted(os.listdir(path)):
            with open(os.path.join(path, name), "rb") as handle:
                files[name] = base64.b64encode(handle.read()).decode("ascii")
    except (OSError, ValueError):
        # Pruned or damaged under us; the subscriber will retry.
        return None
    return {
        "seq": seq,
        "dirname": os.path.basename(path),
        "state_version": manifest["state_version"],
        "wal_start_segment": manifest["wal_start_segment"],
        "epoch": manifest.get("epoch", 0),
        "files": files,
    }


def install_bootstrap(data_dir: str, bootstrap: Dict[str, Any]) -> None:
    """Reseed a tenant directory from a shipped checkpoint package.

    Wipes the local WAL mirror and checkpoints (they are not a prefix of
    the stream the bootstrap belongs to), writes the shipped checkpoint
    directory atomically, and seeds the mirror with an empty (magic-only)
    segment at the checkpoint's ``wal_start_segment`` — so the replica's
    :func:`wal_end_position` lands exactly where the primary's stream
    resumes after the checkpoint, not back at segment 1.  The caller must
    have closed the tenant's engine and reopens it afterwards.
    """
    wal_dir = os.path.join(data_dir, "wal")
    checkpoint_root = os.path.join(data_dir, "checkpoints")
    shutil.rmtree(wal_dir, ignore_errors=True)
    shutil.rmtree(checkpoint_root, ignore_errors=True)
    os.makedirs(checkpoint_root, exist_ok=True)
    dirname = str(bootstrap["dirname"])
    if os.sep in dirname or dirname in (".", ".."):
        raise ReplicationError(f"bad bootstrap checkpoint dirname {dirname!r}")
    tmp = os.path.join(checkpoint_root, f".tmp-{dirname}")
    final = os.path.join(checkpoint_root, dirname)
    shutil.rmtree(tmp, ignore_errors=True)
    os.makedirs(tmp)
    for name, encoded in bootstrap["files"].items():
        name = str(name)
        if os.sep in name or name in (".", ".."):
            raise ReplicationError(f"bad bootstrap file name {name!r}")
        with open(os.path.join(tmp, name), "wb") as handle:
            handle.write(base64.b64decode(encoded))
            handle.flush()
            os.fsync(handle.fileno())
    os.rename(tmp, final)
    start_segment = int(bootstrap.get("wal_start_segment", 1))
    os.makedirs(wal_dir, exist_ok=True)
    with open(os.path.join(wal_dir, segment_filename(start_segment)), "wb") as handle:
        handle.write(SEGMENT_MAGIC)
        handle.flush()
        os.fsync(handle.fileno())


# ---------------------------------------------------------------------- #
# Wire encoding of frames
# ---------------------------------------------------------------------- #

def encode_frames(frames: List[Tuple[int, int, bytes]]) -> List[Dict[str, Any]]:
    """Frames as JSON-safe objects (raw bytes base64-encoded)."""
    return [
        {
            "segment": segment,
            "offset": offset,
            "data": base64.b64encode(frame).decode("ascii"),
        }
        for segment, offset, frame in frames
    ]


def decode_frames(encoded: List[Dict[str, Any]]) -> List[Tuple[int, int, bytes]]:
    """Inverse of :func:`encode_frames`, with CRC re-verification.

    The frame's own CRC already covers the payload; re-checking here means
    a frame corrupted in transit is rejected before it can poison the
    mirror.
    """
    frames = []
    for entry in encoded:
        data = base64.b64decode(entry["data"])
        if len(data) < _FRAME.size:
            raise ReplicationError("shipped frame shorter than its header")
        length, crc = _FRAME.unpack_from(data, 0)
        payload = data[_FRAME.size :]
        if len(payload) != length or zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise ReplicationError("shipped frame failed its CRC check")
        frames.append((int(entry["segment"]), int(entry["offset"]), data))
    return frames


def frame_payload(frame: bytes) -> bytes:
    """The record payload of one raw frame (header stripped)."""
    return frame[_FRAME.size :]
