"""WAL-shipping replication: epoch-fenced primary/replica tenants.

The replication layer turns PR 9's deterministic, CRC-framed WAL into a
shipping stream (see ``docs/replication.md``):

* :mod:`repro.replication.feed` — the primary-side read path: tail raw
  record frames out of the segment files at ``(segment, offset)`` byte
  positions, package checkpoint directories as replica bootstraps, count
  replication lag, and append shipped frames into a replica's mirror.
* :mod:`repro.replication.subscriber` — the replica-side
  :class:`~repro.replication.subscriber.ReplicaLink`: a long-poll loop
  that fetches frames over ``GET /v1/{tenant}/wal``, mirrors them
  byte-for-byte into the local WAL, and applies them through the engine's
  replay path with logging suspended.
* :mod:`repro.replication.chaoscheck` — the partition/failover battery
  (``python -m repro.replication.chaoscheck``).

The serving layer (:mod:`repro.serve`) wires these into tenant sessions;
``POST /v1/{tenant}/promote`` and the epoch fence live there.
"""

from repro.replication.feed import (
    FeedChunk,
    ReplicationError,
    WAL_HEADER_BYTES,
    append_mirror_frames,
    count_lag,
    decode_frames,
    encode_frames,
    frame_payload,
    install_bootstrap,
    normalize_position,
    package_bootstrap,
    read_frames,
    wal_end_position,
)
from repro.replication.subscriber import ReplicaLink

__all__ = [
    "FeedChunk",
    "ReplicaLink",
    "ReplicationError",
    "WAL_HEADER_BYTES",
    "append_mirror_frames",
    "count_lag",
    "decode_frames",
    "encode_frames",
    "frame_payload",
    "install_bootstrap",
    "normalize_position",
    "package_bootstrap",
    "read_frames",
    "wal_end_position",
]
