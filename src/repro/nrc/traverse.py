"""Generic traversal and structural rewriting over NRC+ ASTs.

Every AST node is a frozen dataclass whose expression-valued fields are either
single :class:`~repro.nrc.ast.Expr` instances or tuples of them.  The helpers
here exploit that regularity so analyses and transformations do not need a
case per node type unless they change the semantics of a construct.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, Tuple

from repro.nrc.ast import Expr

__all__ = ["iter_subexpressions", "map_expr", "count_nodes", "replace_subexpressions"]


def iter_subexpressions(expr: Expr, include_self: bool = True) -> Iterator[Expr]:
    """Yield ``expr`` and every nested sub-expression in pre-order."""
    if include_self:
        yield expr
    for child in expr.children():
        yield from iter_subexpressions(child, include_self=True)


def count_nodes(expr: Expr) -> int:
    """Number of AST nodes in ``expr`` (a simple size metric used in reports)."""
    return sum(1 for _ in iter_subexpressions(expr))


def map_expr(expr: Expr, transform: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``transform`` to every node.

    Children are transformed first; then ``transform`` is applied to the node
    rebuilt with the new children.  Nodes are only copied when a child
    actually changed, so identity transforms are cheap.
    """
    rebuilt = _rebuild_with_children(expr, tuple(map_expr(child, transform) for child in expr.children()))
    return transform(rebuilt)


def replace_subexpressions(expr: Expr, replacements: dict) -> Expr:
    """Replace occurrences of given sub-expressions (compared by equality).

    ``replacements`` maps old expressions to new expressions.  Replacement is
    applied top-down: once a node matches, its subtree is not descended into.
    """

    def _go(node: Expr) -> Expr:
        if node in replacements:
            return replacements[node]
        return _rebuild_with_children(node, tuple(_go(child) for child in node.children()))

    return _go(expr)


def _rebuild_with_children(expr: Expr, new_children: Tuple[Expr, ...]) -> Expr:
    """Return a copy of ``expr`` with its expression children replaced in order."""
    old_children = expr.children()
    if len(old_children) != len(new_children):
        raise ValueError("child count mismatch while rebuilding expression")
    if all(old is new for old, new in zip(old_children, new_children)):
        return expr
    if not dataclasses.is_dataclass(expr):
        raise TypeError(f"cannot rebuild non-dataclass expression {expr!r}")

    updates = {}
    cursor = 0
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, Expr):
            updates[field.name] = new_children[cursor]
            cursor += 1
        elif isinstance(value, tuple) and value and all(isinstance(item, Expr) for item in value):
            width = len(value)
            updates[field.name] = tuple(new_children[cursor : cursor + width])
            cursor += width
    if cursor != len(new_children):
        raise ValueError("failed to map new children onto dataclass fields")
    return dataclasses.replace(expr, **updates)
