"""Convenience constructors for NRC+ expressions.

The calculus of Figure 3 is deliberately spartan — tuples are built as
products of singletons and ``where`` clauses are sugar over a nested ``for``
on a predicate's ``Bag(1)`` result.  The helpers here provide that sugar so
queries read like the paper's examples while still elaborating to the core
constructs on which the delta/cost/shredding machinery operates.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple, Union as TypingUnion

from repro.nrc import ast
from repro.nrc.ast import Expr
from repro.nrc.predicates import Predicate
from repro.nrc.types import BagType, Type

__all__ = [
    "for_in",
    "where",
    "filter_query",
    "pair",
    "tuple_bag",
    "proj",
    "var",
    "sng",
    "union_all",
    "relation",
    "fresh_var",
]

_FRESH = itertools.count()


def fresh_var(prefix: str = "_v") -> str:
    """Return a variable name guaranteed not to clash with user variables."""
    return f"{prefix}{next(_FRESH)}"


def relation(name: str, element_type: Type) -> ast.Relation:
    """``R : Bag(element_type)`` — a database relation reference."""
    return ast.Relation(name, BagType(element_type))


def var(name: str) -> ast.SngVar:
    """``sng(x)`` — used as the "yield the element itself" body."""
    return ast.SngVar(name)


def proj(name: str, *path: int) -> ast.SngProj:
    """``sng(π_path(x))`` — yield a projection of an element variable."""
    return ast.SngProj(name, tuple(path))


def sng(body: Expr, iota: Optional[str] = None) -> ast.Sng:
    """The unrestricted singleton ``sng_ι(e)`` over a bag-typed body."""
    return ast.Sng(body, iota)


def union_all(terms: Sequence[Expr]) -> Expr:
    """Union an arbitrary number of terms (``∅`` for the empty sequence)."""
    terms = tuple(terms)
    if not terms:
        return ast.Empty()
    if len(terms) == 1:
        return terms[0]
    return ast.Union(terms)


def where(predicate: Predicate, body: Expr) -> ast.For:
    """Desugar a ``where`` clause: ``for _ in p(x̄) union body``.

    The bound variable is ignored — the predicate's only possible element is
    the unit tuple ``⟨⟩`` (Example 2 of the paper).
    """
    return ast.For(fresh_var("_w"), ast.Pred(predicate), body)


def for_in(
    variable: str,
    source: Expr,
    body: Expr,
    condition: Optional[Predicate] = None,
) -> ast.For:
    """``for variable in source [where condition] union body``."""
    inner = body if condition is None else where(condition, body)
    return ast.For(variable, source, inner)


def filter_query(source: Expr, predicate: Predicate, variable: str = "x") -> ast.For:
    """Example 2's ``filter_p``: ``for x in source where p(x) union sng(x)``."""
    return for_in(variable, source, var(variable), condition=predicate)


def pair(left: Expr, right: Expr) -> ast.Product:
    """``left × right`` — a bag of pairs; with singleton factors, a single pair."""
    return ast.Product((left, right))


def tuple_bag(*factors: Expr) -> Expr:
    """Build a bag of n-ary tuples as the product of the given factors.

    With singleton factors this is the calculus' way of constructing a tuple:
    ``sng(π_0(m)) × sng(relB(m))`` is the pair ``⟨m.name, relB(m)⟩`` of the
    motivating example.  A single factor is returned unchanged.
    """
    if not factors:
        return ast.SngUnit()
    if len(factors) == 1:
        return factors[0]
    return ast.Product(tuple(factors))
