"""Lazy evaluation of NRC+ — the strategy behind Lemma 3's time bound.

The proof of Lemma 3 evaluates a query in two steps: first a *lazy* pass that
produces the top-level bag where every inner bag created by ``sng(e)`` is a
closure (a :class:`LazyBag` capturing the defining expression and the current
variable assignment), then an *expansion* pass that forces exactly the
closures that survive to the output.  Inner bags that are projected away are
therefore never computed — which is what makes the cardinality-times-element
cost bound ``tcost(C[[h]])`` achievable.

The lazy evaluator shares the environment type of the strict evaluator;
:func:`expand_value` / :func:`expand_bag` implement the paper's ``exp``
function and :func:`evaluate_lazy_expanded` composes the two phases (and is
observationally equivalent to :func:`repro.nrc.evaluator.evaluate_bag`).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.bag.bag import Bag, EMPTY_BAG
from repro.errors import EvaluationError
from repro.instrument import OpCounter
from repro.nrc import ast
from repro.nrc.ast import Expr
from repro.nrc.evaluator import Environment, _Evaluator

__all__ = ["LazyBag", "evaluate_lazy", "expand_value", "expand_bag", "evaluate_lazy_expanded"]


class LazyBag:
    """A suspended inner bag: the closure ``β_{e,ε}`` of the Lemma 3 proof."""

    __slots__ = ("_expression", "_environment", "_counter", "_forced")

    def __init__(
        self, expression: Expr, environment: Environment, counter: Optional[OpCounter]
    ) -> None:
        self._expression = expression
        self._environment = environment
        self._counter = counter
        self._forced: Optional[Bag] = None

    def force(self) -> Bag:
        """Evaluate the suspended expression (lazily, memoized)."""
        if self._forced is None:
            self._forced = _LazyEvaluator(self._environment, self._counter)._eval_bag(
                self._expression
            )
        return self._forced

    @property
    def is_forced(self) -> bool:
        return self._forced is not None

    # Lazy bags are compared by identity: they only ever live inside the
    # intermediate result of the lazy pass and are expanded before any
    # value-level comparison happens.
    def __repr__(self) -> str:
        status = "forced" if self._forced is not None else "suspended"
        return f"LazyBag({status})"


class _LazyEvaluator(_Evaluator):
    """The strict evaluator with the singleton rule replaced by suspension."""

    def _eval_Sng(self, expr: ast.Sng) -> Bag:
        snapshot = self._env.copy()
        from repro.instrument import maybe_count

        maybe_count(self._counter, "suspensions")
        return Bag.singleton(LazyBag(expr.body, snapshot, self._counter))


def evaluate_lazy(
    expr: Expr, env: Optional[Environment] = None, counter: Optional[OpCounter] = None
) -> Bag:
    """Lazy pass: evaluate ``expr`` with inner ``sng`` bodies suspended."""
    value = _LazyEvaluator(env or Environment(), counter).eval(expr)
    if not isinstance(value, Bag):
        raise EvaluationError("lazy evaluation is defined for bag-typed expressions")
    return value


def expand_value(value: Any) -> Any:
    """The expansion function ``exp``: force every suspended inner bag."""
    if isinstance(value, LazyBag):
        return expand_bag(value.force())
    if isinstance(value, tuple):
        return tuple(expand_value(component) for component in value)
    if isinstance(value, Bag):
        return expand_bag(value)
    return value


def expand_bag(bag: Bag) -> Bag:
    """Expand every element of a (possibly lazy) bag."""
    if bag.is_empty():
        return EMPTY_BAG
    return Bag.from_pairs(
        (expand_value(element), multiplicity) for element, multiplicity in bag.items()
    )


def evaluate_lazy_expanded(
    expr: Expr, env: Optional[Environment] = None, counter: Optional[OpCounter] = None
) -> Bag:
    """Lazy pass followed by full expansion (equivalent to strict evaluation)."""
    return expand_bag(evaluate_lazy(expr, env, counter))
