"""NRC+ — positive nested relational calculus on bags, with labels.

This package contains the calculus itself: types, abstract syntax, typing
rules, evaluation, static analyses, algebraic simplification and pretty
printing.  The incrementalization machinery lives in :mod:`repro.delta`,
:mod:`repro.cost` and :mod:`repro.shredding`.
"""

from repro.nrc import ast, builders, predicates, types
from repro.nrc.analysis import (
    free_bag_vars,
    free_elem_vars,
    is_incremental_fragment,
    is_input_independent,
    referenced_relations,
    referenced_sources,
)
from repro.nrc.compile import CompiledQuery, compile_expr, compilation_enabled, try_compile
from repro.nrc.evaluator import Environment, evaluate, evaluate_bag
from repro.nrc.lazy import evaluate_lazy, evaluate_lazy_expanded
from repro.nrc.pretty import render
from repro.nrc.rewrite import simplify
from repro.nrc.typecheck import infer_type

__all__ = [
    "ast",
    "builders",
    "predicates",
    "types",
    "free_bag_vars",
    "free_elem_vars",
    "is_incremental_fragment",
    "is_input_independent",
    "referenced_relations",
    "referenced_sources",
    "CompiledQuery",
    "compile_expr",
    "compilation_enabled",
    "try_compile",
    "Environment",
    "evaluate",
    "evaluate_bag",
    "evaluate_lazy",
    "evaluate_lazy_expanded",
    "render",
    "simplify",
    "infer_type",
]
