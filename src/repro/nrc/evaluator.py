"""Evaluation of NRC+ / IncNRC+_l expressions (the semantics of Figure 3).

The evaluator is a straightforward recursive interpreter over the AST.  Bags
carry integer multiplicities, and the ``for`` construct scales each body bag
by the multiplicity of the element it was produced from, matching the
``⊎_{v∈[[e1]]} [[e2]][x:=v]`` semantics.

Environments (:class:`Environment`) bundle

* the database relations (``γ`` entries for the ``R`` rule),
* the database dictionaries (shredded input contexts),
* update bags/dictionaries for the ``ΔR`` / ``ΔD`` symbols of delta queries,
* ``let``-bound variables, and
* ``for``-bound element variables (the ``ε`` assignment).

An optional :class:`~repro.instrument.OpCounter` records abstract operation
counts so the cost-model experiments can compare measured work with the
paper's ``tcost`` bound without depending on wall-clock noise.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple, Union as TypingUnion

from repro.bag.bag import Bag, EMPTY_BAG
from repro.errors import EvaluationError, UnboundVariableError
from repro.instrument import OpCounter, maybe_count
from repro.nrc import ast
from repro.nrc.ast import Expr
from repro.dictionaries import (
    DictValue,
    EMPTY_DICT,
    IntensionalDict,
    MaterializedDict,
)
from repro.labels import Label

__all__ = ["Environment", "evaluate", "evaluate_bag"]

Value = TypingUnion[Bag, DictValue]


class Environment:
    """Evaluation environment for NRC+ expressions.

    All mappings are copied on construction so an environment can be shared
    safely between evaluations.  The helpers return extended copies; the
    evaluator itself mutates only private scratch copies.

    ``indexes`` optionally carries a persistent-index provider
    (:class:`repro.storage.store.IndexProvider`): the compiled pipeline
    probes it for pre-built hash-join indexes over base relations.  The
    provider verifies by bag identity that an index matches the relation
    binding actually in this environment, so carrying it through copies
    (including hand-mutated ones) is always safe — a mismatch just falls
    back to the per-evaluation build.  The interpreter ignores it.
    """

    __slots__ = ("relations", "dictionaries", "deltas", "bag_vars", "elem_vars", "indexes")

    def __init__(
        self,
        relations: Optional[Mapping[str, Bag]] = None,
        dictionaries: Optional[Mapping[str, DictValue]] = None,
        deltas: Optional[Mapping[Tuple[str, int], Value]] = None,
        bag_vars: Optional[Mapping[str, Value]] = None,
        elem_vars: Optional[Mapping[str, Any]] = None,
        indexes: Optional[Any] = None,
    ) -> None:
        self.relations: Dict[str, Bag] = dict(relations or {})
        self.dictionaries: Dict[str, DictValue] = dict(dictionaries or {})
        self.deltas: Dict[Tuple[str, int], Value] = dict(deltas or {})
        self.bag_vars: Dict[str, Value] = dict(bag_vars or {})
        self.elem_vars: Dict[str, Any] = dict(elem_vars or {})
        self.indexes = indexes

    def copy(self) -> "Environment":
        return Environment(
            self.relations,
            self.dictionaries,
            self.deltas,
            self.bag_vars,
            self.elem_vars,
            self.indexes,
        )

    def with_deltas(self, deltas: Mapping[Tuple[str, int], Value]) -> "Environment":
        """Return a copy with the given update symbols bound."""
        env = self.copy()
        env.deltas.update(deltas)
        return env

    def with_elem(self, name: str, value: Any) -> "Environment":
        env = self.copy()
        env.elem_vars[name] = value
        return env

    def with_bag_var(self, name: str, value: Value) -> "Environment":
        env = self.copy()
        env.bag_vars[name] = value
        return env


def evaluate(
    expr: Expr, env: Optional[Environment] = None, counter: Optional[OpCounter] = None
) -> Value:
    """Evaluate ``expr`` in ``env`` and return a :class:`Bag` or dictionary value."""
    return _Evaluator(env or Environment(), counter).eval(expr)


def evaluate_bag(
    expr: Expr, env: Optional[Environment] = None, counter: Optional[OpCounter] = None
) -> Bag:
    """Evaluate ``expr`` and require the result to be a bag."""
    value = evaluate(expr, env, counter)
    if not isinstance(value, Bag):
        raise EvaluationError(f"expected a bag result, got {value!r}")
    return value


class _Evaluator:
    """Recursive interpreter with an explicit environment."""

    def __init__(self, env: Environment, counter: Optional[OpCounter]) -> None:
        self._env = env
        self._counter = counter

    # ------------------------------------------------------------------ #
    def eval(self, expr: Expr) -> Value:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise EvaluationError(f"no evaluation rule for node {type(expr).__name__}")
        return method(expr)

    def _eval_bag(self, expr: Expr) -> Bag:
        value = self.eval(expr)
        if not isinstance(value, Bag):
            raise EvaluationError(f"expected a bag, got {value!r}")
        return value

    def _eval_dict(self, expr: Expr) -> DictValue:
        value = self.eval(expr)
        if not isinstance(value, DictValue):
            raise EvaluationError(f"expected a dictionary, got {value!r}")
        return value

    def _elem(self, name: str) -> Any:
        if name not in self._env.elem_vars:
            raise UnboundVariableError(f"unbound element variable {name!r}")
        return self._env.elem_vars[name]

    @staticmethod
    def _project(value: Any, path: Tuple[int, ...], context: str) -> Any:
        for index in path:
            if not isinstance(value, tuple) or index >= len(value):
                raise EvaluationError(f"{context}: projection .{index} fails on {value!r}")
            value = value[index]
        return value

    # Core constructs ----------------------------------------------------
    def _eval_Relation(self, expr: ast.Relation) -> Bag:
        if expr.name not in self._env.relations:
            raise UnboundVariableError(f"unknown relation {expr.name!r}")
        return self._env.relations[expr.name]

    def _eval_DeltaRelation(self, expr: ast.DeltaRelation) -> Bag:
        value = self._env.deltas.get((expr.name, expr.order), EMPTY_BAG)
        if not isinstance(value, Bag):
            raise EvaluationError(
                f"update symbol Δ^{expr.order}{expr.name} is bound to a non-bag value"
            )
        return value

    def _eval_BagVar(self, expr: ast.BagVar) -> Value:
        if expr.name not in self._env.bag_vars:
            raise UnboundVariableError(f"unbound bag variable {expr.name!r}")
        return self._env.bag_vars[expr.name]

    def _eval_Let(self, expr: ast.Let) -> Value:
        bound = self.eval(expr.bound)
        saved = self._env.bag_vars.get(expr.name)
        had = expr.name in self._env.bag_vars
        self._env.bag_vars[expr.name] = bound
        try:
            return self.eval(expr.body)
        finally:
            if had:
                self._env.bag_vars[expr.name] = saved  # type: ignore[assignment]
            else:
                self._env.bag_vars.pop(expr.name, None)

    def _eval_SngVar(self, expr: ast.SngVar) -> Bag:
        maybe_count(self._counter, "elements_emitted")
        return Bag.singleton(self._elem(expr.var))

    def _eval_SngProj(self, expr: ast.SngProj) -> Bag:
        value = self._project(self._elem(expr.var), expr.path, f"sng(π({expr.var}))")
        maybe_count(self._counter, "elements_emitted")
        return Bag.singleton(value)

    def _eval_SngUnit(self, expr: ast.SngUnit) -> Bag:
        maybe_count(self._counter, "elements_emitted")
        return Bag.singleton(())

    def _eval_Sng(self, expr: ast.Sng) -> Bag:
        inner = self._eval_bag(expr.body)
        maybe_count(self._counter, "elements_emitted")
        return Bag.singleton(inner)

    def _eval_Empty(self, expr: ast.Empty) -> Bag:
        return EMPTY_BAG

    def _eval_For(self, expr: ast.For) -> Bag:
        source = self._eval_bag(expr.source)
        accumulator: Dict[Any, int] = {}
        saved = self._env.elem_vars.get(expr.var)
        had = expr.var in self._env.elem_vars
        try:
            for element, multiplicity in source.items():
                maybe_count(self._counter, "for_iterations")
                self._env.elem_vars[expr.var] = element
                body = self._eval_bag(expr.body)
                if multiplicity == 0:
                    continue
                for inner_element, inner_multiplicity in body.items():
                    combined = multiplicity * inner_multiplicity
                    if combined == 0:
                        continue
                    maybe_count(self._counter, "union_merges")
                    updated = accumulator.get(inner_element, 0) + combined
                    if updated == 0:
                        accumulator.pop(inner_element, None)
                    else:
                        accumulator[inner_element] = updated
        finally:
            if had:
                self._env.elem_vars[expr.var] = saved
            else:
                self._env.elem_vars.pop(expr.var, None)
        return Bag.from_pairs(accumulator.items())

    def _eval_Flatten(self, expr: ast.Flatten) -> Bag:
        outer = self._eval_bag(expr.body)
        result = EMPTY_BAG
        for element, multiplicity in outer.items():
            if not isinstance(element, Bag):
                raise EvaluationError("flatten applied to a bag whose elements are not bags")
            maybe_count(self._counter, "union_merges", len(element))
            result = result.union(element.scale(multiplicity))
        return result

    def _eval_Product(self, expr: ast.Product) -> Bag:
        factor_bags = [self._eval_bag(factor) for factor in expr.factors]
        accumulator: Dict[Any, int] = {(): 1}
        for factor in factor_bags:
            next_accumulator: Dict[Any, int] = {}
            for prefix, prefix_mult in accumulator.items():
                for element, multiplicity in factor.items():
                    maybe_count(self._counter, "product_pairs")
                    combined = prefix_mult * multiplicity
                    if combined == 0:
                        continue
                    key = prefix + (element,)
                    next_accumulator[key] = next_accumulator.get(key, 0) + combined
            accumulator = next_accumulator
        return Bag.from_pairs(accumulator.items())

    def _eval_Union(self, expr: ast.Union) -> Bag:
        result = EMPTY_BAG
        for term in expr.terms:
            term_bag = self._eval_bag(term)
            maybe_count(self._counter, "union_merges", len(term_bag))
            result = result.union(term_bag)
        return result

    def _eval_Negate(self, expr: ast.Negate) -> Bag:
        return self._eval_bag(expr.body).negate()

    def _eval_Pred(self, expr: ast.Pred) -> Bag:
        maybe_count(self._counter, "predicate_checks")
        if expr.predicate.evaluate(self._env.elem_vars):
            return Bag.singleton(())
        return EMPTY_BAG

    # Label / dictionary constructs --------------------------------------
    def _eval_InLabel(self, expr: ast.InLabel) -> Bag:
        values = tuple(self._elem(param) for param in expr.params)
        maybe_count(self._counter, "elements_emitted")
        return Bag.singleton(Label(expr.iota, values))

    def _eval_DictSingleton(self, expr: ast.DictSingleton) -> DictValue:
        # Capture a snapshot of the current environment: the dictionary is a
        # closure over everything except its own parameters, which come from
        # the label at lookup time (Section 5.2).
        snapshot = self._env.copy()
        counter = self._counter
        body = expr.body
        params = expr.params

        def _lookup(values: Tuple[Any, ...]) -> Bag:
            local = snapshot.copy()
            if len(values) != len(params):
                raise EvaluationError(
                    f"label arity mismatch for dictionary {expr.iota!r}: "
                    f"expected {len(params)} values, got {len(values)}"
                )
            for param, value in zip(params, values):
                local.elem_vars[param] = value
            maybe_count(counter, "dict_lookups")
            return _Evaluator(local, counter)._eval_bag(body)

        return IntensionalDict(expr.iota, _lookup)

    def _eval_DictEmpty(self, expr: ast.DictEmpty) -> DictValue:
        return EMPTY_DICT

    def _eval_DictUnion(self, expr: ast.DictUnion) -> DictValue:
        result: DictValue = EMPTY_DICT
        for term in expr.terms:
            result = result.label_union(self._eval_dict(term))
        return result

    def _eval_DictAdd(self, expr: ast.DictAdd) -> DictValue:
        result: DictValue = EMPTY_DICT
        for term in expr.terms:
            result = result.add(self._eval_dict(term))
        return result

    def _eval_DictVar(self, expr: ast.DictVar) -> DictValue:
        if expr.name not in self._env.dictionaries:
            raise UnboundVariableError(f"unknown dictionary {expr.name!r}")
        return self._env.dictionaries[expr.name]

    def _eval_DeltaDictVar(self, expr: ast.DeltaDictVar) -> DictValue:
        value = self._env.deltas.get((expr.name, expr.order), EMPTY_DICT)
        if not isinstance(value, DictValue):
            raise EvaluationError(
                f"update symbol Δ^{expr.order}{expr.name} is bound to a non-dictionary value"
            )
        return value

    def _eval_DictLookup(self, expr: ast.DictLookup) -> Bag:
        dictionary = self._eval_dict(expr.dictionary)
        label = self._project(self._elem(expr.var), expr.path, "dictionary lookup")
        if not isinstance(label, Label):
            raise EvaluationError(f"dictionary lookup key is not a label: {label!r}")
        maybe_count(self._counter, "dict_lookups")
        return dictionary.lookup(label)
