"""Pretty printing of NRC+ expressions in the paper's notation.

The output mirrors the syntax used throughout the paper: ``for x in e1 union
e2``, ``sng(e)``, ``flatten(e)``, ``⊎``, ``×``, ``⊖``, ``∅``, ``let X := e1 in
e2``, plus the label constructs ``inL_ι(x̄)``, ``[(ι, x̄) ↦ e]``, ``d(l)``,
``∪``.  Rendering is deterministic, making it suitable for golden tests and
for inspecting deltas and shreddings in the examples.
"""

from __future__ import annotations

from repro.nrc import ast
from repro.nrc.ast import Expr

__all__ = ["render"]


def render(expr: Expr) -> str:
    """Render ``expr`` as a single-line string in the paper's notation."""
    return _render(expr)


def _render(expr: Expr) -> str:
    if isinstance(expr, ast.Relation):
        return expr.name
    if isinstance(expr, ast.DeltaRelation):
        prefix = "Δ" + ("'" * (expr.order - 1))
        return f"{prefix}{expr.name}"
    if isinstance(expr, ast.BagVar):
        return expr.name
    if isinstance(expr, ast.Let):
        return f"let {expr.name} := {_render(expr.bound)} in {_render(expr.body)}"
    if isinstance(expr, ast.SngVar):
        return f"sng({expr.var})"
    if isinstance(expr, ast.SngProj):
        path = ".".join(str(i) for i in expr.path)
        return f"sng(π_{path}({expr.var}))"
    if isinstance(expr, ast.SngUnit):
        return "sng(⟨⟩)"
    if isinstance(expr, ast.Sng):
        subscript = f"_{expr.iota}" if expr.iota else ""
        return f"sng{subscript}({_render(expr.body)})"
    if isinstance(expr, ast.Empty):
        return "∅"
    if isinstance(expr, ast.For):
        # Re-sugar the `where` encoding for readability.
        if isinstance(expr.body, ast.For) and isinstance(expr.body.source, ast.Pred):
            predicate = expr.body.source.predicate.render()
            return (
                f"for {expr.var} in {_render(expr.source)} where {predicate} "
                f"union {_render(expr.body.body)}"
            )
        return f"for {expr.var} in {_render(expr.source)} union {_render(expr.body)}"
    if isinstance(expr, ast.Flatten):
        return f"flatten({_render(expr.body)})"
    if isinstance(expr, ast.Product):
        return "(" + " × ".join(_render(factor) for factor in expr.factors) + ")"
    if isinstance(expr, ast.Union):
        return "(" + " ⊎ ".join(_render(term) for term in expr.terms) + ")"
    if isinstance(expr, ast.Negate):
        return f"⊖({_render(expr.body)})"
    if isinstance(expr, ast.Pred):
        return f"p[{expr.predicate.render()}]"
    if isinstance(expr, ast.InLabel):
        params = ", ".join(expr.params)
        return f"inL_{expr.iota}({params})"
    if isinstance(expr, ast.DictSingleton):
        params = ", ".join(expr.params)
        return f"[({expr.iota}, ⟨{params}⟩) ↦ {_render(expr.body)}]"
    if isinstance(expr, ast.DictEmpty):
        return "[]"
    if isinstance(expr, ast.DictUnion):
        return "(" + " ∪ ".join(_render(term) for term in expr.terms) + ")"
    if isinstance(expr, ast.DictAdd):
        return "(" + " ⊎ ".join(_render(term) for term in expr.terms) + ")"
    if isinstance(expr, ast.DictVar):
        return expr.name
    if isinstance(expr, ast.DeltaDictVar):
        prefix = "Δ" + ("'" * (expr.order - 1))
        return f"{prefix}{expr.name}"
    if isinstance(expr, ast.DictLookup):
        if expr.path:
            path = ".".join(str(i) for i in expr.path)
            key = f"{expr.var}.{path}"
        else:
            key = expr.var
        return f"{_render(expr.dictionary)}({key})"
    raise TypeError(f"cannot render node {type(expr).__name__}")
