"""Type inference and checking for NRC+ / IncNRC+_l expressions.

Implements the typing rules of Figure 3 plus the label/dictionary rules of
Section 5.2.  Relation and dictionary nodes carry their schemas, so a closed
query can be checked without any external catalogue; open expressions receive
their Γ (bag variables) and Π (element variables) contexts as arguments.

Polymorphic empties (``Empty``/``DictEmpty`` without an annotated type) are
given an internal *unknown* type that unifies with anything, so deltas — which
introduce many empty bags — always typecheck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import TypeCheckError
from repro.nrc import ast
from repro.nrc.ast import Expr
from repro.nrc.predicates import Const, Operand, Predicate, VarPath
from repro.nrc.types import (
    BASE,
    BagType,
    BaseType,
    DictType,
    LABEL,
    LabelType,
    ProductType,
    Type,
    UNIT,
    UnitType,
)

__all__ = ["UnknownType", "infer_type", "check", "join_types", "project_type"]


@dataclass(frozen=True)
class UnknownType(Type):
    """Placeholder for polymorphic empties; unifies with every type."""

    def render(self) -> str:
        return "?"


_UNKNOWN = UnknownType()


def join_types(left: Type, right: Type, context: str = "") -> Type:
    """Least upper bound of two types under unknown-unification.

    Raises :class:`TypeCheckError` when the types are structurally
    incompatible.  ``context`` is included in error messages.
    """
    if isinstance(left, UnknownType):
        return right
    if isinstance(right, UnknownType):
        return left
    if isinstance(left, BaseType) and isinstance(right, BaseType):
        return left
    if isinstance(left, UnitType) and isinstance(right, UnitType):
        return left
    if isinstance(left, LabelType) and isinstance(right, LabelType):
        return left
    if isinstance(left, BagType) and isinstance(right, BagType):
        return BagType(join_types(left.element, right.element, context))
    if isinstance(left, DictType) and isinstance(right, DictType):
        joined = join_types(left.value, right.value, context)
        if not isinstance(joined, BagType):
            raise TypeCheckError(f"dictionary value type must be a bag ({context})")
        return DictType(joined)
    if isinstance(left, ProductType) and isinstance(right, ProductType):
        if left.arity != right.arity:
            raise TypeCheckError(
                f"product arity mismatch: {left.render()} vs {right.render()} ({context})"
            )
        return ProductType(
            tuple(
                join_types(l, r, context)
                for l, r in zip(left.components, right.components)
            )
        )
    raise TypeCheckError(
        f"incompatible types {left.render()} and {right.render()} ({context})"
    )


def project_type(type_: Type, path, context: str = "") -> Type:
    """Follow a projection path through product types."""
    current = type_
    for index in path:
        if isinstance(current, UnknownType):
            return _UNKNOWN
        if not isinstance(current, ProductType):
            raise TypeCheckError(
                f"projection .{index} applied to non-product type {current.render()} ({context})"
            )
        if index >= current.arity:
            raise TypeCheckError(
                f"projection index {index} out of range for {current.render()} ({context})"
            )
        current = current.component(index)
    return current


def infer_type(
    expr: Expr,
    gamma: Optional[Mapping[str, Type]] = None,
    pi: Optional[Mapping[str, Type]] = None,
) -> Type:
    """Infer the type of ``expr`` under contexts ``gamma`` (Γ) and ``pi`` (Π)."""
    return _Inferencer(dict(gamma or {}), dict(pi or {})).infer(expr)


def check(
    expr: Expr,
    gamma: Optional[Mapping[str, Type]] = None,
    pi: Optional[Mapping[str, Type]] = None,
) -> Type:
    """Alias of :func:`infer_type`; raises :class:`TypeCheckError` on failure."""
    return infer_type(expr, gamma, pi)


class _Inferencer:
    """Single-pass bottom-up type inference with explicit contexts."""

    def __init__(self, gamma: Dict[str, Type], pi: Dict[str, Type]) -> None:
        self._gamma = gamma
        self._pi = pi

    # ------------------------------------------------------------------ #
    def infer(self, expr: Expr) -> Type:
        method = getattr(self, f"_infer_{type(expr).__name__}", None)
        if method is None:
            raise TypeCheckError(f"no typing rule for node {type(expr).__name__}")
        return method(expr)

    def _expect_bag(self, type_: Type, context: str) -> BagType:
        if isinstance(type_, UnknownType):
            return BagType(_UNKNOWN)
        if not isinstance(type_, BagType):
            raise TypeCheckError(f"{context}: expected a bag type, got {type_.render()}")
        return type_

    def _expect_dict(self, type_: Type, context: str) -> DictType:
        if isinstance(type_, UnknownType):
            return DictType(BagType(_UNKNOWN))
        if not isinstance(type_, DictType):
            raise TypeCheckError(
                f"{context}: expected a dictionary type, got {type_.render()}"
            )
        return type_

    # Core constructs ----------------------------------------------------
    def _infer_Relation(self, expr: ast.Relation) -> Type:
        return expr.schema

    def _infer_DeltaRelation(self, expr: ast.DeltaRelation) -> Type:
        return expr.schema

    def _infer_BagVar(self, expr: ast.BagVar) -> Type:
        if expr.name not in self._gamma:
            raise TypeCheckError(f"unbound bag variable {expr.name!r}")
        return self._gamma[expr.name]

    def _infer_Let(self, expr: ast.Let) -> Type:
        bound_type = self.infer(expr.bound)
        saved = self._gamma.get(expr.name)
        self._gamma[expr.name] = bound_type
        try:
            return self.infer(expr.body)
        finally:
            if saved is None:
                self._gamma.pop(expr.name, None)
            else:
                self._gamma[expr.name] = saved

    def _infer_SngVar(self, expr: ast.SngVar) -> Type:
        if expr.var not in self._pi:
            raise TypeCheckError(f"unbound element variable {expr.var!r}")
        return BagType(self._pi[expr.var])

    def _infer_SngProj(self, expr: ast.SngProj) -> Type:
        if expr.var not in self._pi:
            raise TypeCheckError(f"unbound element variable {expr.var!r}")
        return BagType(project_type(self._pi[expr.var], expr.path, f"sng(π({expr.var}))"))

    def _infer_SngUnit(self, expr: ast.SngUnit) -> Type:
        return BagType(UNIT)

    def _infer_Sng(self, expr: ast.Sng) -> Type:
        body_type = self._expect_bag(self.infer(expr.body), "sng(e)")
        return BagType(body_type)

    def _infer_Empty(self, expr: ast.Empty) -> Type:
        if expr.element_type is None:
            return BagType(_UNKNOWN)
        return BagType(expr.element_type)

    def _infer_For(self, expr: ast.For) -> Type:
        source_type = self._expect_bag(self.infer(expr.source), "for source")
        saved = self._pi.get(expr.var)
        self._pi[expr.var] = source_type.element
        try:
            body_type = self._expect_bag(self.infer(expr.body), "for body")
        finally:
            if saved is None:
                self._pi.pop(expr.var, None)
            else:
                self._pi[expr.var] = saved
        return body_type

    def _infer_Flatten(self, expr: ast.Flatten) -> Type:
        body_type = self._expect_bag(self.infer(expr.body), "flatten")
        inner = body_type.element
        if isinstance(inner, UnknownType):
            return BagType(_UNKNOWN)
        if not isinstance(inner, BagType):
            raise TypeCheckError(
                f"flatten requires a bag of bags, got {body_type.render()}"
            )
        return inner

    def _infer_Product(self, expr: ast.Product) -> Type:
        element_types = []
        for factor in expr.factors:
            factor_type = self._expect_bag(self.infer(factor), "product factor")
            element_types.append(factor_type.element)
        return BagType(ProductType(tuple(element_types)))

    def _infer_Union(self, expr: ast.Union) -> Type:
        result: Type = BagType(_UNKNOWN)
        for term in expr.terms:
            term_type = self.infer(term)
            if not isinstance(term_type, (BagType, UnknownType)):
                raise TypeCheckError(
                    f"bag union over non-bag type {term_type.render()}"
                )
            result = join_types(result, term_type, "⊎")
        return result

    def _infer_Negate(self, expr: ast.Negate) -> Type:
        return self._expect_bag(self.infer(expr.body), "⊖")

    def _infer_Pred(self, expr: ast.Pred) -> Type:
        self._check_predicate(expr.predicate)
        return BagType(UNIT)

    def _check_predicate(self, predicate: Predicate) -> None:
        for var in predicate.free_vars():
            if var not in self._pi:
                raise TypeCheckError(f"unbound element variable {var!r} in predicate")
        self._check_predicate_operands(predicate)

    def _check_predicate_operands(self, predicate: Predicate) -> None:
        from repro.nrc import predicates as preds

        if isinstance(predicate, preds.Comparison):
            for operand in (predicate.left, predicate.right):
                self._check_operand(operand)
        elif isinstance(predicate, (preds.And, preds.Or)):
            for term in predicate.terms:
                self._check_predicate_operands(term)
        elif isinstance(predicate, preds.Not):
            self._check_predicate_operands(predicate.term)

    def _check_operand(self, operand: Operand) -> None:
        if isinstance(operand, Const):
            return
        if isinstance(operand, VarPath):
            var_type = self._pi.get(operand.var, _UNKNOWN)
            projected = project_type(var_type, operand.path, "predicate operand")
            if isinstance(projected, (BagType, DictType)):
                raise TypeCheckError(
                    "predicates may only inspect base values; "
                    f"{operand.render()} has type {projected.render()} (Appendix A.2)"
                )
            return
        raise TypeCheckError(f"unknown predicate operand {operand!r}")

    # Label / dictionary constructs --------------------------------------
    def _infer_InLabel(self, expr: ast.InLabel) -> Type:
        for param in expr.params:
            if param not in self._pi:
                raise TypeCheckError(
                    f"unbound element variable {param!r} in label constructor"
                )
        return BagType(LABEL)

    def _infer_DictSingleton(self, expr: ast.DictSingleton) -> Type:
        saved: Dict[str, Optional[Type]] = {}
        param_types = expr.param_types or tuple(_UNKNOWN for _ in expr.params)
        for param, param_type in zip(expr.params, param_types):
            saved[param] = self._pi.get(param)
            self._pi[param] = param_type
        try:
            body_type = self._expect_bag(self.infer(expr.body), "dictionary body")
        finally:
            for param, previous in saved.items():
                if previous is None:
                    self._pi.pop(param, None)
                else:
                    self._pi[param] = previous
        if expr.value_type is not None:
            body_type = self._expect_bag(
                join_types(body_type, expr.value_type, "dictionary value"), "dictionary"
            )
        return DictType(body_type)

    def _infer_DictEmpty(self, expr: ast.DictEmpty) -> Type:
        return DictType(expr.value_type or BagType(_UNKNOWN))

    def _infer_DictUnion(self, expr: ast.DictUnion) -> Type:
        return self._join_dict_terms(expr.terms, "∪")

    def _infer_DictAdd(self, expr: ast.DictAdd) -> Type:
        return self._join_dict_terms(expr.terms, "⊎ (dictionaries)")

    def _join_dict_terms(self, terms, operator: str) -> Type:
        result: Type = DictType(BagType(_UNKNOWN))
        for term in terms:
            term_type = self._expect_dict(self.infer(term), operator)
            result = join_types(result, term_type, operator)
        return result

    def _infer_DictVar(self, expr: ast.DictVar) -> Type:
        return DictType(expr.value_type)

    def _infer_DeltaDictVar(self, expr: ast.DeltaDictVar) -> Type:
        return DictType(expr.value_type)

    def _infer_DictLookup(self, expr: ast.DictLookup) -> Type:
        dict_type = self._expect_dict(self.infer(expr.dictionary), "dictionary lookup")
        if expr.var not in self._pi:
            raise TypeCheckError(f"unbound element variable {expr.var!r} in lookup")
        label_type = project_type(self._pi[expr.var], expr.path, "dictionary lookup")
        if not isinstance(label_type, (LabelType, UnknownType)):
            raise TypeCheckError(
                f"dictionary lookup key must be a label, got {label_type.render()}"
            )
        return dict_type.value
