"""Type system of NRC+ and of its label extension IncNRC+_l.

The paper's types (Section 3) are::

    A, B, C ::= 1 | Base | A × B | Bag(C)

We generalize products to n-ary tuples (the binary product of the paper is
the ``n == 2`` case) and add the two types required by the shredding
transformation of Section 5:

* :class:`LabelType` — the type ``L`` of labels that stand for inner bags,
* :class:`DictType`  — the type ``L ↦ Bag(B)`` of label dictionaries.

Types are immutable, hashable and compared structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "Type",
    "BaseType",
    "UnitType",
    "ProductType",
    "BagType",
    "LabelType",
    "DictType",
    "BASE",
    "UNIT",
    "LABEL",
    "is_flat_type",
    "contains_bag",
    "type_depth",
    "shred_flat_type",
    "tuple_of",
    "bag_of",
]


class Type:
    """Abstract base class of all NRC+ types."""

    def __repr__(self) -> str:  # pragma: no cover - overridden by subclasses
        return self.render()

    def render(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class BaseType(Type):
    """The type of atomic database values (``Base``).

    The paper has a single base type; we keep an optional ``name`` purely for
    documentation (e.g. ``BaseType("String")``).  Equality and hashing ignore
    the name so that differently-labelled base types remain interchangeable,
    exactly as in the calculus.
    """

    name: str = field(default="Base", compare=False)

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnitType(Type):
    """The unit type ``1`` — the type of the 0-ary tuple ``⟨⟩``."""

    def render(self) -> str:
        return "1"


@dataclass(frozen=True)
class ProductType(Type):
    """An n-ary product type ``A1 × … × An`` (n ≥ 1)."""

    components: Tuple[Type, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("ProductType requires at least one component; use UnitType for ⟨⟩")
        for component in self.components:
            if not isinstance(component, Type):
                raise TypeError(f"product component is not a Type: {component!r}")

    @property
    def arity(self) -> int:
        return len(self.components)

    def component(self, index: int) -> Type:
        """Return the type of the ``index``-th (0-based) component."""
        return self.components[index]

    def render(self) -> str:
        return "(" + " × ".join(c.render() for c in self.components) + ")"


@dataclass(frozen=True)
class BagType(Type):
    """The bag type ``Bag(C)`` with integer multiplicities."""

    element: Type

    def __post_init__(self) -> None:
        if not isinstance(self.element, Type):
            raise TypeError(f"bag element is not a Type: {self.element!r}")

    def render(self) -> str:
        return f"Bag({self.element.render()})"


@dataclass(frozen=True)
class LabelType(Type):
    """The type ``L`` of labels introduced by shredding (Section 5.1)."""

    def render(self) -> str:
        return "L"


@dataclass(frozen=True)
class DictType(Type):
    """The dictionary type ``L ↦ Bag(B)`` of Section 5.2."""

    value: BagType

    def __post_init__(self) -> None:
        if not isinstance(self.value, BagType):
            raise TypeError("DictType values must be bag types")

    def render(self) -> str:
        return f"(L ↦ {self.value.render()})"


#: Shared instances for the three nullary types.
BASE = BaseType()
UNIT = UnitType()
LABEL = LabelType()


def tuple_of(*components: Type) -> ProductType:
    """Convenience constructor for :class:`ProductType`."""
    return ProductType(tuple(components))


def bag_of(element: Type) -> BagType:
    """Convenience constructor for :class:`BagType`."""
    return BagType(element)


def is_flat_type(type_: Type) -> bool:
    """True iff ``type_`` is a tuple/base/unit/label type with no nested bag.

    ``Bag(A)`` is *flat* (in the sense of the paper's ``TBase`` plus labels)
    when ``A`` itself contains no bag type.
    """
    if isinstance(type_, (BaseType, UnitType, LabelType)):
        return True
    if isinstance(type_, ProductType):
        return all(is_flat_type(component) for component in type_.components)
    return False


def contains_bag(type_: Type) -> bool:
    """True iff a bag type occurs anywhere inside ``type_``."""
    if isinstance(type_, BagType):
        return True
    if isinstance(type_, ProductType):
        return any(contains_bag(component) for component in type_.components)
    if isinstance(type_, DictType):
        return True
    return False


def type_depth(type_: Type) -> int:
    """Maximum bag-nesting depth of a type (``Bag(Bag(Base))`` has depth 2)."""
    if isinstance(type_, BagType):
        return 1 + type_depth(type_.element)
    if isinstance(type_, ProductType):
        return max(type_depth(component) for component in type_.components)
    if isinstance(type_, DictType):
        return 1 + type_depth(type_.value.element)
    return 0


def shred_flat_type(type_: Type) -> Type:
    """Compute ``A^F``, the flat (label-based) representation of a type.

    Following Section 5.1::

        Base^F = Base      (A1 × A2)^F = A1^F × A2^F      Bag(C)^F = L
    """
    if isinstance(type_, (BaseType, UnitType, LabelType)):
        return type_
    if isinstance(type_, ProductType):
        return ProductType(tuple(shred_flat_type(component) for component in type_.components))
    if isinstance(type_, BagType):
        return LABEL
    raise TypeError(f"cannot shred type {type_!r}")
