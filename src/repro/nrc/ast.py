"""Abstract syntax of NRC+ and of its label extension IncNRC+_l.

The constructs follow Figure 3 of the paper:

======================  ==============================================
Paper construct          AST node
======================  ==============================================
``R``                    :class:`Relation`
``X`` (let-bound var)    :class:`BagVar`
``let X := e1 in e2``    :class:`Let`
``sng(x)``               :class:`SngVar`
``sng(π_i(x))``          :class:`SngProj`
``sng(⟨⟩)``              :class:`SngUnit`
``sng(e)`` / ``sng*(e)`` :class:`Sng`
``∅``                    :class:`Empty`
``for x in e1 union e2`` :class:`For`
``flatten(e)``           :class:`Flatten`
``e1 × e2``              :class:`Product` (generalized to n-ary)
``e1 ⊎ e2``              :class:`Union`  (generalized to n-ary)
``⊖(e)``                 :class:`Negate`
``p(x)``                 :class:`Pred`
======================  ==============================================

The delta transformation needs a symbol for the update of a relation; this is
:class:`DeltaRelation` (the paper's ``ΔR``, ``Δ'R``, … — one per derivation
order).

The label/dictionary constructs of Section 5 (the IncNRC+_l extension) are
:class:`InLabel`, :class:`DictSingleton`, :class:`DictEmpty`,
:class:`DictUnion`, :class:`DictAdd`, :class:`DictVar`,
:class:`DeltaDictVar` and :class:`DictLookup`.

All nodes are immutable dataclasses; generic traversals use :meth:`Expr.children`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.nrc.predicates import Predicate
from repro.nrc.types import BagType, DictType, Type

__all__ = [
    "Expr",
    "Relation",
    "DeltaRelation",
    "BagVar",
    "Let",
    "SngVar",
    "SngProj",
    "SngUnit",
    "Sng",
    "Empty",
    "For",
    "Flatten",
    "Product",
    "Union",
    "Negate",
    "Pred",
    "InLabel",
    "DictSingleton",
    "DictEmpty",
    "DictUnion",
    "DictAdd",
    "DictVar",
    "DeltaDictVar",
    "DictLookup",
]


class Expr:
    """Abstract base class of every NRC+ / IncNRC+_l expression."""

    def children(self) -> Tuple["Expr", ...]:
        """Sub-expressions, in a fixed order, for generic traversals."""
        return ()

    # Operator sugar -----------------------------------------------------
    def __add__(self, other: "Expr") -> "Union":
        """``e1 + e2`` builds the bag union ``e1 ⊎ e2``."""
        return Union((self, other))

    def __mul__(self, other: "Expr") -> "Product":
        """``e1 * e2`` builds the Cartesian product ``e1 × e2``."""
        return Product((self, other))

    def __neg__(self) -> "Negate":
        """``-e`` builds ``⊖(e)``."""
        return Negate(self)


# --------------------------------------------------------------------------- #
# Core NRC+ constructs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Relation(Expr):
    """A reference to a named database relation ``R : Bag(A)``.

    The schema travels with the node so that type inference never needs an
    external catalogue.
    """

    name: str
    schema: BagType

    def __post_init__(self) -> None:
        if not isinstance(self.schema, BagType):
            raise TypeError("relation schema must be a BagType")


@dataclass(frozen=True)
class DeltaRelation(Expr):
    """The update symbol ``ΔR`` (or ``Δ'R``, … for higher derivation orders).

    ``order`` counts how many delta derivations introduced this symbol:
    the first-order delta introduces ``order == 1``, the second-order delta
    ``order == 2``, and so on.  Update symbols are input-independent: their
    own delta is the empty bag and their degree is 0.
    """

    name: str
    schema: BagType
    order: int = 1

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("delta order must be at least 1")


@dataclass(frozen=True)
class BagVar(Expr):
    """A let-bound (Γ-context) variable ``X`` of bag or dictionary type."""

    name: str


@dataclass(frozen=True)
class Let(Expr):
    """``let X := bound in body``."""

    name: str
    bound: Expr
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.bound, self.body)


@dataclass(frozen=True)
class SngVar(Expr):
    """``sng(x)`` — the singleton bag containing the value of element var ``x``."""

    var: str


@dataclass(frozen=True)
class SngProj(Expr):
    """``sng(π_path(x))`` — singleton of a projection of element var ``x``.

    ``path`` is a tuple of 0-based component indices; the paper's single-step
    ``π_i`` is the length-one path.  An empty path is equivalent to
    :class:`SngVar`.
    """

    var: str
    path: Tuple[int, ...]

    def __post_init__(self) -> None:
        for index in self.path:
            if index < 0:
                raise ValueError("projection indices must be non-negative")


@dataclass(frozen=True)
class SngUnit(Expr):
    """``sng(⟨⟩)`` — the singleton bag containing the unit tuple (i.e. *true*)."""


@dataclass(frozen=True)
class Sng(Expr):
    """The unrestricted singleton ``sng_ι(e)`` for ``e : Bag(B)``.

    When ``body`` is input-independent this is the paper's ``sng*(e)`` and the
    expression stays inside IncNRC+; otherwise the query must be shredded
    before it can be incrementalized (Section 5).  ``iota`` is the static
    index identifying this occurrence for label generation; when ``None`` the
    shredder assigns one deterministically.
    """

    body: Expr
    iota: Optional[str] = None

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Empty(Expr):
    """The empty bag ``∅``.

    ``element_type`` records the element type when known (useful for
    typechecking and unshredding); ``None`` denotes a polymorphic empty bag,
    which every context accepts.
    """

    element_type: Optional[Type] = None


@dataclass(frozen=True)
class For(Expr):
    """``for var in source union body`` — iterate and union the results.

    The multiplicity of each element of ``source`` scales the corresponding
    ``body`` bag, following the bag-monad semantics of Figure 3.
    """

    var: str
    source: Expr
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.source, self.body)


@dataclass(frozen=True)
class Flatten(Expr):
    """``flatten(e)`` — union of the inner bags of a bag of bags."""

    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Product(Expr):
    """The n-ary Cartesian product ``e1 × … × en`` (n ≥ 2).

    The paper's binary product is the ``n == 2`` case; results are n-ary
    tuples and multiplicities multiply.
    """

    factors: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.factors) < 2:
            raise ValueError("Product requires at least two factors")

    def children(self) -> Tuple[Expr, ...]:
        return self.factors


@dataclass(frozen=True)
class Union(Expr):
    """The n-ary bag union ``e1 ⊎ … ⊎ en`` (n ≥ 1)."""

    terms: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("Union requires at least one term; use Empty for ∅")

    def children(self) -> Tuple[Expr, ...]:
        return self.terms


@dataclass(frozen=True)
class Negate(Expr):
    """``⊖(e)`` — negate every multiplicity."""

    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True)
class Pred(Expr):
    """A predicate ``p(x̄) : Bag(1)`` over base-typed projections of Π-variables."""

    predicate: Predicate


# --------------------------------------------------------------------------- #
# IncNRC+_l constructs (labels and dictionaries, Section 5.2)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class InLabel(Expr):
    """``inL_{ι,Π}(ε) : Bag(L)`` — singleton bag holding the label ``⟨ι, ε⟩``.

    ``params`` lists the element variables whose current values are packed
    into the label, in order.  This is the flat part of the shredding of
    ``sng_ι(e)``.
    """

    iota: str
    params: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DictSingleton(Expr):
    """``[(ι, Π) ↦ body]`` — an intensional label dictionary.

    Looking up a label ``⟨ι', ε⟩`` returns ``body`` evaluated with ``params``
    bound to ``ε`` when ``ι' == ι`` and the empty bag otherwise
    (Section 5.2).  ``value_type`` is the bag type of the entries.
    """

    iota: str
    params: Tuple[str, ...]
    body: Expr
    value_type: Optional[BagType] = None
    param_types: Optional[Tuple[Type, ...]] = None

    def __post_init__(self) -> None:
        if self.param_types is not None and len(self.param_types) != len(self.params):
            raise ValueError("param_types must match params in length")

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


@dataclass(frozen=True)
class DictEmpty(Expr):
    """The empty dictionary ``[]`` (empty support)."""

    value_type: Optional[BagType] = None


@dataclass(frozen=True)
class DictUnion(Expr):
    """Label union ``d1 ∪ … ∪ dn`` of dictionaries.

    Conflicting definitions for the same label raise
    :class:`~repro.errors.DictionaryConflictError` at evaluation time,
    mirroring the ``error`` case of the paper.
    """

    terms: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("DictUnion requires at least one term")

    def children(self) -> Tuple[Expr, ...]:
        return self.terms


@dataclass(frozen=True)
class DictAdd(Expr):
    """Pointwise bag addition ``d1 ⊎ … ⊎ dn`` of dictionaries.

    This is the operation that *modifies* label definitions — it is how deep
    updates are applied to shredded views and inputs (Section 2.2, 5.2).
    """

    terms: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("DictAdd requires at least one term")

    def children(self) -> Tuple[Expr, ...]:
        return self.terms


@dataclass(frozen=True)
class DictVar(Expr):
    """A named dictionary stored in the database (shredded input context)."""

    name: str
    value_type: BagType

    def __post_init__(self) -> None:
        if not isinstance(self.value_type, BagType):
            raise TypeError("DictVar value_type must be a BagType")

    @property
    def dict_type(self) -> DictType:
        return DictType(self.value_type)


@dataclass(frozen=True)
class DeltaDictVar(Expr):
    """The update symbol ``ΔD`` for a database dictionary (deep input updates)."""

    name: str
    value_type: BagType
    order: int = 1

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError("delta order must be at least 1")
        if not isinstance(self.value_type, BagType):
            raise TypeError("DeltaDictVar value_type must be a BagType")


@dataclass(frozen=True)
class DictLookup(Expr):
    """``d(l)`` — look up the bag associated with a label.

    The label is obtained by projecting the element variable ``var`` along
    ``path`` (0-based indices; the empty path uses the variable itself).
    """

    dictionary: Expr
    var: str
    path: Tuple[int, ...] = ()

    def children(self) -> Tuple[Expr, ...]:
        return (self.dictionary,)
