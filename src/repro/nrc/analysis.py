"""Static analyses over NRC+ expressions.

These analyses underpin the incrementalization machinery:

* *free element variables* and *free bag variables* (the Π and Γ contexts of
  Figure 3) are needed by the shredder to build labels and by the delta rules
  for ``let``;
* *input dependence* (does an expression mention a database relation or
  dictionary, directly or through a ``let``-bound variable?) decides both
  IncNRC+ membership (Section 3) and Lemma 1's shortcut ``δ(h) = ∅``;
* *IncNRC+ membership*: every ``sng(e)`` occurrence must have an
  input-independent body (the paper's ``sng*``);
* *sng indexing* assigns the static indices ``ι`` used by shredding.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Set, Tuple

from repro.nrc import ast
from repro.nrc.ast import Expr
from repro.nrc.traverse import iter_subexpressions, map_expr

__all__ = [
    "free_elem_vars",
    "free_bag_vars",
    "referenced_relations",
    "referenced_dictionaries",
    "referenced_sources",
    "referenced_deltas",
    "max_delta_order",
    "is_input_independent",
    "sng_occurrences",
    "unrestricted_sng_occurrences",
    "is_incremental_fragment",
    "annotate_sng_indices",
]


# --------------------------------------------------------------------------- #
# Free variables
# --------------------------------------------------------------------------- #
def free_elem_vars(expr: Expr) -> FrozenSet[str]:
    """Free Π-variables (element variables bound by ``for``) of ``expr``."""
    if isinstance(expr, (ast.SngVar,)):
        return frozenset({expr.var})
    if isinstance(expr, ast.SngProj):
        return frozenset({expr.var})
    if isinstance(expr, ast.Pred):
        return expr.predicate.free_vars()
    if isinstance(expr, ast.InLabel):
        return frozenset(expr.params)
    if isinstance(expr, ast.DictLookup):
        return frozenset({expr.var}) | free_elem_vars(expr.dictionary)
    if isinstance(expr, ast.For):
        source_vars = free_elem_vars(expr.source)
        body_vars = free_elem_vars(expr.body) - {expr.var}
        return source_vars | body_vars
    if isinstance(expr, ast.DictSingleton):
        return free_elem_vars(expr.body) - frozenset(expr.params)
    result: FrozenSet[str] = frozenset()
    for child in expr.children():
        result |= free_elem_vars(child)
    return result


def free_bag_vars(expr: Expr) -> FrozenSet[str]:
    """Free Γ-variables (``let``-bound variables ``X``) of ``expr``."""
    if isinstance(expr, ast.BagVar):
        return frozenset({expr.name})
    if isinstance(expr, ast.Let):
        bound_vars = free_bag_vars(expr.bound)
        body_vars = free_bag_vars(expr.body) - {expr.name}
        return bound_vars | body_vars
    result: FrozenSet[str] = frozenset()
    for child in expr.children():
        result |= free_bag_vars(child)
    return result


# --------------------------------------------------------------------------- #
# Input dependence
# --------------------------------------------------------------------------- #
def referenced_relations(expr: Expr) -> FrozenSet[str]:
    """Names of database relations mentioned anywhere in ``expr``."""
    names: Set[str] = set()
    for node in iter_subexpressions(expr):
        if isinstance(node, ast.Relation):
            names.add(node.name)
    return frozenset(names)


def referenced_dictionaries(expr: Expr) -> FrozenSet[str]:
    """Names of database dictionaries mentioned anywhere in ``expr``."""
    names: Set[str] = set()
    for node in iter_subexpressions(expr):
        if isinstance(node, ast.DictVar):
            names.add(node.name)
    return frozenset(names)


def referenced_sources(expr: Expr) -> FrozenSet[str]:
    """All database sources (relations and dictionaries) mentioned in ``expr``."""
    return referenced_relations(expr) | referenced_dictionaries(expr)


def referenced_deltas(expr: Expr) -> FrozenSet[Tuple[str, int]]:
    """Pairs ``(source, order)`` of update symbols mentioned in ``expr``."""
    pairs: Set[Tuple[str, int]] = set()
    for node in iter_subexpressions(expr):
        if isinstance(node, (ast.DeltaRelation, ast.DeltaDictVar)):
            pairs.add((node.name, node.order))
    return frozenset(pairs)


def max_delta_order(expr: Expr) -> int:
    """Highest update order mentioned in ``expr`` (0 if no update symbol occurs)."""
    orders = [order for _, order in referenced_deltas(expr)]
    return max(orders) if orders else 0


def is_input_independent(
    expr: Expr, dependent_vars: FrozenSet[str] = frozenset()
) -> bool:
    """True iff ``expr`` does not depend on the database.

    An expression is input-*dependent* when it mentions a relation or a
    database dictionary, or a free bag variable listed in ``dependent_vars``
    (used by callers that track ``let``-bound variables whose definition is
    itself input-dependent).  Update symbols ``ΔR`` do **not** count as input
    dependence: they are parameters of delta queries, and Theorem 2's notion
    of a degree-0 (input-independent) query is exactly "depends only on the
    update".
    """
    if isinstance(expr, (ast.Relation, ast.DictVar)):
        return False
    if isinstance(expr, ast.BagVar):
        return expr.name not in dependent_vars
    if isinstance(expr, ast.Let):
        if is_input_independent(expr.bound, dependent_vars):
            narrowed = dependent_vars - {expr.name}
            return is_input_independent(expr.body, narrowed)
        widened = dependent_vars | {expr.name}
        return is_input_independent(expr.body, widened)
    return all(is_input_independent(child, dependent_vars) for child in expr.children())


# --------------------------------------------------------------------------- #
# IncNRC+ membership
# --------------------------------------------------------------------------- #
def sng_occurrences(expr: Expr) -> List[ast.Sng]:
    """All unrestricted-singleton nodes in ``expr``, in pre-order."""
    return [node for node in iter_subexpressions(expr) if isinstance(node, ast.Sng)]


def unrestricted_sng_occurrences(expr: Expr) -> List[ast.Sng]:
    """``sng(e)`` occurrences whose body is input-dependent.

    These are exactly the constructs that push a query outside IncNRC+ and
    force shredding (Section 4).  ``let``-bound variables are tracked so that
    ``let X := R in sng(X)`` is correctly reported as unrestricted.
    """
    offenders: List[ast.Sng] = []

    def _walk(node: Expr, dependent_vars: FrozenSet[str]) -> None:
        if isinstance(node, ast.Let):
            _walk(node.bound, dependent_vars)
            if is_input_independent(node.bound, dependent_vars):
                _walk(node.body, dependent_vars - {node.name})
            else:
                _walk(node.body, dependent_vars | {node.name})
            return
        if isinstance(node, ast.Sng) and not is_input_independent(node.body, dependent_vars):
            offenders.append(node)
        for child in node.children():
            _walk(child, dependent_vars)

    _walk(expr, frozenset())
    return offenders


def is_incremental_fragment(expr: Expr) -> bool:
    """True iff ``expr`` belongs to IncNRC+ (resp. IncNRC+_l).

    Per Section 3, the only restriction is that every singleton constructor
    ``sng(e)`` has an input-independent body.
    """
    return not unrestricted_sng_occurrences(expr)


# --------------------------------------------------------------------------- #
# Static sng indexing (for shredding)
# --------------------------------------------------------------------------- #
def annotate_sng_indices(expr: Expr, prefix: str = "ι") -> Expr:
    """Assign a deterministic static index to every un-indexed ``sng`` node.

    Indices are assigned in pre-order (``ι0``, ``ι1``, …) so repeated calls on
    the same expression are stable; nodes that already carry an index keep it.
    """
    from repro.nrc.traverse import _rebuild_with_children

    # Indices follow the pre-order position of each un-indexed Sng node so
    # that repeated annotation of the same query is deterministic.
    pending = [
        node
        for node in iter_subexpressions(expr)
        if isinstance(node, ast.Sng) and node.iota is None
    ]
    assigned = {id(node): f"{prefix}{position}" for position, node in enumerate(pending)}

    def _go(node: Expr) -> Expr:
        if isinstance(node, ast.Sng):
            new_body = _go(node.body)
            iota = node.iota if node.iota is not None else assigned[id(node)]
            return dataclasses.replace(node, body=new_body, iota=iota)
        new_children = tuple(_go(child) for child in node.children())
        return _rebuild_with_children(node, new_children)

    return _go(expr)
