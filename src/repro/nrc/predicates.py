"""Predicate sub-language of NRC+.

The calculus restricts predicates ``p(x)`` to boolean combinations of
comparisons over *base-typed* values (Section 3): comparisons over bags could
simulate negation and would break efficient incrementalization
(Appendix A.2).  Predicates therefore form a small separate expression
language over projections of Π-variables (the element variables bound by
``for``) and constants.  A predicate evaluates to a boolean; the enclosing
:class:`~repro.nrc.ast.Pred` node turns that into ``Bag(1)`` — the singleton
unit bag for ``true`` and the empty bag for ``false``.

Because predicates never mention database relations, their delta is always
the empty bag (Figure 4) and their cost is the constant ``1_{Bag(1)}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Mapping, Tuple

from repro.bag.values import is_base_value
from repro.errors import EvaluationError

__all__ = [
    "Operand",
    "VarPath",
    "Const",
    "Predicate",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "var_path",
    "const",
]


# --------------------------------------------------------------------------- #
# Operands
# --------------------------------------------------------------------------- #
class Operand:
    """Abstract base class of predicate operands (base-typed only)."""

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def evaluate(self, elem_env: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class VarPath(Operand):
    """A projection path into an element variable, e.g. ``m.2`` → ``VarPath("m", (2,))``.

    Path indices are 0-based; an empty path denotes the variable itself
    (which must then be base-typed).
    """

    var: str
    path: Tuple[int, ...] = ()

    def free_vars(self) -> FrozenSet[str]:
        return frozenset({self.var})

    def evaluate(self, elem_env: Mapping[str, Any]) -> Any:
        if self.var not in elem_env:
            raise EvaluationError(f"unbound element variable {self.var!r} in predicate")
        value = elem_env[self.var]
        for index in self.path:
            if not isinstance(value, tuple) or index >= len(value):
                raise EvaluationError(
                    f"projection .{index} does not apply to value {value!r}"
                )
            value = value[index]
        return value

    def render(self) -> str:
        if not self.path:
            return self.var
        return self.var + "." + ".".join(str(i) for i in self.path)


@dataclass(frozen=True)
class Const(Operand):
    """A constant base value appearing in a predicate."""

    value: Any

    def __post_init__(self) -> None:
        if not is_base_value(self.value):
            raise TypeError(f"predicate constants must be base values, got {self.value!r}")

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, elem_env: Mapping[str, Any]) -> Any:
        return self.value

    def render(self) -> str:
        return repr(self.value)


def var_path(var: str, *path: int) -> VarPath:
    """Convenience constructor: ``var_path("m", 1)`` is ``m.1``."""
    return VarPath(var, tuple(path))


def const(value: Any) -> Const:
    """Convenience constructor for predicate constants."""
    return Const(value)


# --------------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------------- #
class Predicate:
    """Abstract base class of boolean predicates over base values."""

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def evaluate(self, elem_env: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    # Operator sugar -----------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """A comparison between two base-typed operands."""

    op: str
    left: Operand
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def free_vars(self) -> FrozenSet[str]:
        return self.left.free_vars() | self.right.free_vars()

    def evaluate(self, elem_env: Mapping[str, Any]) -> bool:
        left = self.left.evaluate(elem_env)
        right = self.right.evaluate(elem_env)
        if not is_base_value(left) or not is_base_value(right):
            raise EvaluationError(
                "predicates may only compare base values "
                f"(got {left!r} {self.op} {right!r}); comparisons over bags "
                "would allow simulating negation (Appendix A.2)"
            )
        return _COMPARATORS[self.op](left, right)

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    terms: Tuple[Predicate, ...]

    def free_vars(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for term in self.terms:
            result |= term.free_vars()
        return result

    def evaluate(self, elem_env: Mapping[str, Any]) -> bool:
        return all(term.evaluate(elem_env) for term in self.terms)

    def render(self) -> str:
        return "(" + " ∧ ".join(term.render() for term in self.terms) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    terms: Tuple[Predicate, ...]

    def free_vars(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for term in self.terms:
            result |= term.free_vars()
        return result

    def evaluate(self, elem_env: Mapping[str, Any]) -> bool:
        return any(term.evaluate(elem_env) for term in self.terms)

    def render(self) -> str:
        return "(" + " ∨ ".join(term.render() for term in self.terms) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate (legal: still a boolean over base values)."""

    term: Predicate

    def free_vars(self) -> FrozenSet[str]:
        return self.term.free_vars()

    def evaluate(self, elem_env: Mapping[str, Any]) -> bool:
        return not self.term.evaluate(elem_env)

    def render(self) -> str:
        return f"¬({self.term.render()})"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """The always-true predicate (useful as a neutral ``where`` clause)."""

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, elem_env: Mapping[str, Any]) -> bool:
        return True

    def render(self) -> str:
        return "true"


def eq(left: Operand, right: Operand) -> Comparison:
    """``left == right``."""
    return Comparison("==", left, right)


def ne(left: Operand, right: Operand) -> Comparison:
    """``left != right``."""
    return Comparison("!=", left, right)


def lt(left: Operand, right: Operand) -> Comparison:
    """``left < right``."""
    return Comparison("<", left, right)


def le(left: Operand, right: Operand) -> Comparison:
    """``left <= right``."""
    return Comparison("<=", left, right)


def gt(left: Operand, right: Operand) -> Comparison:
    """``left > right``."""
    return Comparison(">", left, right)


def ge(left: Operand, right: Operand) -> Comparison:
    """``left >= right``."""
    return Comparison(">=", left, right)


__all__ += ["eq", "ne", "lt", "le", "gt", "ge"]
