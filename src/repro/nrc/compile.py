"""Compilation of NRC+ / IncNRC+_l expressions into reusable Python closures.

The recursive interpreter (:mod:`repro.nrc.evaluator`) pays two prices on
every update the cost model does not charge for: each ``for`` binder copies a
whole :class:`~repro.nrc.evaluator.Environment`, and each ``for``-over-``for``
join is executed as a nested loop with a predicate check per pair — time
proportional to the *product* of the operands instead of the matching pairs
assumed by the paper's ``tcost`` bound (Section 4).  This module lowers an
expression once, at view-registration time, into a tree of closures that

* replaces per-binder environment copies with **slot-indexed frames** (one
  flat Python list per evaluation; every binder writes a pre-assigned slot),
* turns the canonical join shape ``for x in e₁ union (for y in e₂ union
  (where p …))`` into a **hash-join** whenever ``p`` contains an equality
  between a projection of the inner variable and a projection of an outer
  variable (or a constant): the build side is indexed once per evaluation and
  probed per outer tuple, so selective joins cost time proportional to the
  matching pairs, and
* **hoists loop-invariant sub-expressions**: any computation that reads no
  binder slot is evaluated at most once per evaluation (memoized in a
  per-call cache), no matter how many loop iterations reference it.

The strict interpreter remains the semantic reference; compiled and
interpreted evaluation must agree on every input (the differential tests in
``tests/test_compile.py`` enforce this, and the CI smoke benchmark re-checks
it on real workloads).  Setting the environment variable
:data:`REPRO_NO_COMPILE` (to any non-empty value) disables compilation
globally — :func:`try_compile` then returns ``None`` and every view falls
back to the interpreter.

One bounded caveat applies to *ill-typed* guards only: a hash-join does not
evaluate guard conjuncts for pairs its index already excludes, so an error
the interpreter would raise on such a pair (e.g. an ordered comparison over
non-base values, which the type system forbids) is not reproduced.
Equality conjuncts themselves never diverge — keys that hashing cannot
match faithfully (non-base values, ``NaN``, erroring operands) degrade to a
nested-loop twin that follows interpreter conjunct order exactly.
Well-typed queries (:mod:`repro.nrc.typecheck`) are unaffected.

Operation counters are threaded through so the cost-model experiments keep
working: compiled evaluation reports the operations it *actually* performs
(hash probes instead of skipped pairs), which is exactly the work reduction
the pipeline exists to deliver.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bag.bag import Bag, EMPTY_BAG
from repro.bag.values import intern_key, is_base_value, is_hashable_key
from repro.dictionaries import DictValue, EMPTY_DICT, IntensionalDict
from repro.errors import CompileError, EvaluationError, UnboundVariableError
from repro.instrument import OpCounter, maybe_count
from repro.labels import Label
from repro.nrc import ast
from repro.nrc import predicates as preds
from repro.nrc.ast import Expr
from repro.nrc.evaluator import Environment, evaluate_bag as _interpret_bag

__all__ = [
    "REPRO_NO_COMPILE",
    "CompiledQuery",
    "IndexRequirement",
    "compile_expr",
    "compilation_enabled",
    "forced_interpretation",
    "rebuild_compiled",
    "run_bag",
    "try_compile",
]

#: Environment variable that disables compilation when set to a non-empty value.
REPRO_NO_COMPILE = "REPRO_NO_COMPILE"


def compilation_enabled() -> bool:
    """True unless the ``REPRO_NO_COMPILE`` escape hatch is set."""
    return not os.environ.get(REPRO_NO_COMPILE)


@contextmanager
def forced_interpretation(interpreted: bool = True) -> Iterator[None]:
    """Temporarily force the execution mode (benchmark/smoke/test helper).

    ``interpreted=True`` sets ``REPRO_NO_COMPILE`` for the duration of the
    block, ``interpreted=False`` clears it; the previous value is restored
    on exit either way.  Only affects views *constructed* inside the block —
    views compile (or don't) at registration time.
    """
    saved = os.environ.get(REPRO_NO_COMPILE)
    try:
        if interpreted:
            os.environ[REPRO_NO_COMPILE] = "1"
        else:
            os.environ.pop(REPRO_NO_COMPILE, None)
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_NO_COMPILE, None)
        else:
            os.environ[REPRO_NO_COMPILE] = saved


def compile_expr(expr: Expr) -> "CompiledQuery":
    """Compile ``expr`` into a reusable :class:`CompiledQuery`.

    Raises :class:`~repro.errors.CompileError` when the expression contains a
    node the compiler has no rule for.
    """
    return CompiledQuery(expr)


def try_compile(expr: Expr) -> Optional["CompiledQuery"]:
    """Compile ``expr``, or return ``None`` when disabled or unsupported.

    This is the entry point the view classes use at registration time: a
    ``None`` result means "run interpreted", never an error.
    """
    if not compilation_enabled():
        return None
    try:
        return compile_expr(expr)
    except CompileError:
        return None


def run_bag(
    compiled: Optional["CompiledQuery"],
    expr: Expr,
    env: Environment,
    counter: Optional[OpCounter] = None,
) -> Bag:
    """Evaluate ``expr`` through ``compiled`` when available, else interpret.

    The shared dispatch the view classes use on every (re-)evaluation:
    ``compiled`` is the result of :func:`try_compile` for ``expr``, possibly
    ``None``.
    """
    if compiled is not None:
        return compiled.evaluate_bag(env, counter)
    return _interpret_bag(expr, env, counter)


# --------------------------------------------------------------------------- #
# Runtime pieces
# --------------------------------------------------------------------------- #
class _Missing:
    """Sentinel for an unbound frame slot."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()


class _Ctx:
    """Per-evaluation context: database bindings, op counter, hoist cache.

    Let-bound and externally-provided bag variables live in frame slots, not
    here — the context carries only the bindings resolved by name at runtime.
    ``indexes`` is the environment's persistent-index provider (or ``None``);
    hash-join sites over base relations probe it before building their own.
    """

    __slots__ = ("relations", "dictionaries", "deltas", "counter", "cache", "indexes")

    def __init__(
        self,
        relations,
        dictionaries,
        deltas,
        counter: Optional[OpCounter],
        indexes=None,
    ) -> None:
        self.relations = relations
        self.dictionaries = dictionaries
        self.deltas = deltas
        self.counter = counter
        self.cache: Dict[int, Any] = {}
        self.indexes = indexes


def _project_value(value: Any, path: Tuple[int, ...], context: str) -> Any:
    for index in path:
        if not isinstance(value, tuple) or index >= len(value):
            raise EvaluationError(f"{context}: projection .{index} fails on {value!r}")
        value = value[index]
    return value


def _as_bag(value: Any) -> Bag:
    if not isinstance(value, Bag):
        raise EvaluationError(f"expected a bag, got {value!r}")
    return value


def _as_dict(value: Any) -> DictValue:
    if not isinstance(value, DictValue):
        raise EvaluationError(f"expected a dictionary, got {value!r}")
    return value


def _accumulate(
    accumulator: Dict[Any, int], inner: Bag, multiplicity: int, counter
) -> None:
    """Merge ``inner`` scaled by ``multiplicity`` into a loop accumulator.

    The single definition of the ``for``-loop multiplicity semantics shared
    by the plain loop, the hash-join bucket walk and its nested-loop twin.
    """
    for inner_element, inner_multiplicity in inner.items():
        combined = multiplicity * inner_multiplicity
        if combined == 0:
            continue
        maybe_count(counter, "union_merges")
        updated = accumulator.get(inner_element, 0) + combined
        if updated == 0:
            accumulator.pop(inner_element, None)
        else:
            accumulator[inner_element] = updated


# A compiled node: closure plus the set of *binder* slots it reads.  Slots
# filled once per evaluation (free variables of the whole expression) are not
# tracked — depending only on them still makes a node loop-invariant.
_Fn = Callable[[_Ctx, List[Any]], Any]
_Compiled = Tuple[_Fn, frozenset]

#: Node types worth memoizing when loop-invariant (they do real work).
_HOISTABLE = (
    ast.For,
    ast.Product,
    ast.Union,
    ast.Flatten,
    ast.Negate,
    ast.Let,
    ast.Sng,
    ast.DictUnion,
    ast.DictAdd,
)


class _UnhashableKey(Exception):
    """Internal: a join-key value that must not be matched via hashing."""


#: Cache sentinel: the build side contained an unhashable key, use the loop.
_NO_INDEX = object()

#: Cache sentinel: this join site is served by a persistent storage index.
#: The live index object is deliberately *not* cached — it mutates in place
#: as the store applies deltas, so every call re-verifies through the
#: provider's bag-identity check.  Evaluation contexts can outlive the store
#: state they were first validated against (an intensional dictionary
#: escaping its evaluation); a stale context then degrades to a
#: per-evaluation build over its own environment snapshot, exactly matching
#: the interpreter's closed-over-environment semantics.
_PERSISTENT = object()


class _EqAtom:
    """One hashable equality conjunct of a join guard.

    ``build_path`` projects the inner (build-side) variable; ``probe`` is a
    closure computing the matching key part from the outer frame, and
    ``deps`` are the binder slots that closure reads.
    """

    __slots__ = ("build_path", "probe", "deps")

    def __init__(self, build_path: Tuple[int, ...], probe: _Fn, deps: frozenset) -> None:
        self.build_path = build_path
        self.probe = probe
        self.deps = deps


class IndexRequirement:
    """A join atom a compiled query probes: relation name plus key paths.

    Emitted for every hash-join site whose build side is a bare base-relation
    reference.  The view classes hand these to
    :meth:`repro.ivm.database.Database.register_index_requirements` so the
    storage layer can keep a persistent index current from deltas instead of
    rebuilding it on every evaluation.
    """

    __slots__ = ("relation", "paths")

    def __init__(self, relation: str, paths: Tuple[Tuple[int, ...], ...]) -> None:
        self.relation = relation
        self.paths = paths

    def key(self) -> Tuple[str, Tuple[Tuple[int, ...], ...]]:
        return (self.relation, self.paths)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, IndexRequirement):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def render(self) -> str:
        paths = ", ".join("." + ".".join(map(str, path)) for path in self.paths)
        return f"{self.relation}[{paths}]"

    def __reduce__(self):
        # Slots + no dict: reconstruct from the two defining fields, which
        # also keeps requirements inside pickled pipeline descriptions
        # value-equal across processes.
        return (IndexRequirement, (self.relation, self.paths))

    def __repr__(self) -> str:
        return f"IndexRequirement({self.render()})"


class _Compiler:
    """Single-pass compiler from AST nodes to ``(closure, deps)`` pairs."""

    def __init__(self) -> None:
        self.index_requirements: List[IndexRequirement] = []
        self._slot_count = 0
        self._elem_scope: Dict[str, int] = {}
        self._bag_scope: Dict[str, int] = {}
        # Free variables of the whole expression get parameter slots, filled
        # from the Environment once per evaluation.
        self._elem_params: Dict[str, int] = {}
        self._bag_params: Dict[str, int] = {}
        self._binder_depth = 0
        self._cache_keys = 0

    # ------------------------------------------------------------------ #
    # Slot management
    # ------------------------------------------------------------------ #
    def _new_slot(self) -> int:
        slot = self._slot_count
        self._slot_count += 1
        return slot

    def _elem_param_slot(self, name: str) -> int:
        if name not in self._elem_params:
            self._elem_params[name] = self._new_slot()
        return self._elem_params[name]

    def _bag_param_slot(self, name: str) -> int:
        if name not in self._bag_params:
            self._bag_params[name] = self._new_slot()
        return self._bag_params[name]

    def _elem_slot(self, name: str) -> Tuple[int, bool]:
        """Slot for an element variable: ``(slot, is_binder_slot)``."""
        if name in self._elem_scope:
            return self._elem_scope[name], True
        return self._elem_param_slot(name), False

    class _Bound:
        """Scoped binding of a variable name to a fresh binder slot."""

        __slots__ = ("_scope", "_name", "_saved", "_had", "slot")

        def __init__(self, compiler: "_Compiler", scope: Dict[str, int], name: str) -> None:
            self._scope = scope
            self._name = name
            self._had = name in scope
            self._saved = scope.get(name)
            self.slot = compiler._new_slot()
            scope[name] = self.slot

        def release(self) -> None:
            if self._had:
                self._scope[self._name] = self._saved  # type: ignore[assignment]
            else:
                self._scope.pop(self._name, None)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def compile(self, expr: Expr) -> _Compiled:
        method = getattr(self, f"_compile_{type(expr).__name__}", None)
        if method is None:
            raise CompileError(f"no compile rule for node {type(expr).__name__}")
        fn, deps = method(expr)
        if (
            self._binder_depth > 0
            and not deps
            and isinstance(expr, _HOISTABLE)
        ):
            fn = self._memoized(fn)
        return fn, deps

    def _memoized(self, fn: _Fn) -> _Fn:
        """Hoist a loop-invariant computation: at most one evaluation per call."""
        key = self._cache_keys
        self._cache_keys += 1

        def cached(ctx: _Ctx, frame: List[Any]) -> Any:
            cache = ctx.cache
            if key in cache:
                return cache[key]
            value = fn(ctx, frame)
            cache[key] = value
            return value

        return cached

    # ------------------------------------------------------------------ #
    # Sources and variables
    # ------------------------------------------------------------------ #
    def _compile_Relation(self, expr: ast.Relation) -> _Compiled:
        name = expr.name

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            try:
                return ctx.relations[name]
            except KeyError:
                raise UnboundVariableError(f"unknown relation {name!r}") from None

        return fn, frozenset()

    def _compile_DeltaRelation(self, expr: ast.DeltaRelation) -> _Compiled:
        key = (expr.name, expr.order)
        name, order = expr.name, expr.order

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            value = ctx.deltas.get(key, EMPTY_BAG)
            if not isinstance(value, Bag):
                raise EvaluationError(
                    f"update symbol Δ^{order}{name} is bound to a non-bag value"
                )
            return value

        return fn, frozenset()

    def _compile_DictVar(self, expr: ast.DictVar) -> _Compiled:
        name = expr.name

        def fn(ctx: _Ctx, frame: List[Any]) -> DictValue:
            try:
                return ctx.dictionaries[name]
            except KeyError:
                raise UnboundVariableError(f"unknown dictionary {name!r}") from None

        return fn, frozenset()

    def _compile_DeltaDictVar(self, expr: ast.DeltaDictVar) -> _Compiled:
        key = (expr.name, expr.order)
        name, order = expr.name, expr.order

        def fn(ctx: _Ctx, frame: List[Any]) -> DictValue:
            value = ctx.deltas.get(key, EMPTY_DICT)
            if not isinstance(value, DictValue):
                raise EvaluationError(
                    f"update symbol Δ^{order}{name} is bound to a non-dictionary value"
                )
            return value

        return fn, frozenset()

    def _compile_BagVar(self, expr: ast.BagVar) -> _Compiled:
        name = expr.name
        if name in self._bag_scope:
            slot = self._bag_scope[name]

            def fn(ctx: _Ctx, frame: List[Any]) -> Any:
                value = frame[slot]
                if value is _MISSING:
                    raise UnboundVariableError(f"unbound bag variable {name!r}")
                return value

            return fn, frozenset((slot,))

        slot = self._bag_param_slot(name)

        def fn_param(ctx: _Ctx, frame: List[Any]) -> Any:
            value = frame[slot]
            if value is _MISSING:
                raise UnboundVariableError(f"unbound bag variable {name!r}")
            return value

        return fn_param, frozenset()

    def _elem_reader(self, name: str) -> _Compiled:
        slot, is_binder = self._elem_slot(name)

        def fn(ctx: _Ctx, frame: List[Any]) -> Any:
            value = frame[slot]
            if value is _MISSING:
                raise UnboundVariableError(f"unbound element variable {name!r}")
            return value

        return fn, frozenset((slot,)) if is_binder else frozenset()

    # ------------------------------------------------------------------ #
    # Singletons and constants
    # ------------------------------------------------------------------ #
    def _compile_SngVar(self, expr: ast.SngVar) -> _Compiled:
        read, deps = self._elem_reader(expr.var)

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            maybe_count(ctx.counter, "elements_emitted")
            return Bag.singleton(read(ctx, frame))

        return fn, deps

    def _compile_SngProj(self, expr: ast.SngProj) -> _Compiled:
        read, deps = self._elem_reader(expr.var)
        path = expr.path
        context = f"sng(π({expr.var}))"

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            value = _project_value(read(ctx, frame), path, context)
            maybe_count(ctx.counter, "elements_emitted")
            return Bag.singleton(value)

        return fn, deps

    def _compile_SngUnit(self, expr: ast.SngUnit) -> _Compiled:
        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            maybe_count(ctx.counter, "elements_emitted")
            return Bag.singleton(())

        return fn, frozenset()

    def _compile_Sng(self, expr: ast.Sng) -> _Compiled:
        body_fn, deps = self.compile(expr.body)

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            inner = _as_bag(body_fn(ctx, frame))
            maybe_count(ctx.counter, "elements_emitted")
            return Bag.singleton(inner)

        return fn, deps

    def _compile_Empty(self, expr: ast.Empty) -> _Compiled:
        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            return EMPTY_BAG

        return fn, frozenset()

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    def _compile_operand(self, operand: preds.Operand) -> _Compiled:
        if isinstance(operand, preds.Const):
            value = operand.value

            def fn_const(ctx: _Ctx, frame: List[Any]) -> Any:
                return value

            return fn_const, frozenset()
        if isinstance(operand, preds.VarPath):
            slot, is_binder = self._elem_slot(operand.var)
            path = operand.path
            name = operand.var

            def fn_var(ctx: _Ctx, frame: List[Any]) -> Any:
                value = frame[slot]
                if value is _MISSING:
                    raise EvaluationError(
                        f"unbound element variable {name!r} in predicate"
                    )
                for index in path:
                    if not isinstance(value, tuple) or index >= len(value):
                        raise EvaluationError(
                            f"projection .{index} does not apply to value {value!r}"
                        )
                    value = value[index]
                return value

            return fn_var, frozenset((slot,)) if is_binder else frozenset()
        raise CompileError(f"no compile rule for operand {type(operand).__name__}")

    def _compile_predicate(self, predicate: preds.Predicate) -> _Compiled:
        """Compile a predicate to a ``fn(ctx, frame) -> bool`` closure."""
        if isinstance(predicate, preds.Comparison):
            left_fn, left_deps = self._compile_operand(predicate.left)
            right_fn, right_deps = self._compile_operand(predicate.right)
            comparator = preds._COMPARATORS[predicate.op]
            op = predicate.op

            def fn_cmp(ctx: _Ctx, frame: List[Any]) -> bool:
                left = left_fn(ctx, frame)
                right = right_fn(ctx, frame)
                if not is_base_value(left) or not is_base_value(right):
                    raise EvaluationError(
                        "predicates may only compare base values "
                        f"(got {left!r} {op} {right!r}); comparisons over bags "
                        "would allow simulating negation (Appendix A.2)"
                    )
                return comparator(left, right)

            return fn_cmp, left_deps | right_deps
        if isinstance(predicate, preds.And):
            parts = [self._compile_predicate(term) for term in predicate.terms]
            fns = [fn for fn, _ in parts]

            def fn_and(ctx: _Ctx, frame: List[Any]) -> bool:
                return all(fn(ctx, frame) for fn in fns)

            deps: frozenset = frozenset()
            for _, part_deps in parts:
                deps |= part_deps
            return fn_and, deps
        if isinstance(predicate, preds.Or):
            parts = [self._compile_predicate(term) for term in predicate.terms]
            fns = [fn for fn, _ in parts]

            def fn_or(ctx: _Ctx, frame: List[Any]) -> bool:
                return any(fn(ctx, frame) for fn in fns)

            deps = frozenset()
            for _, part_deps in parts:
                deps |= part_deps
            return fn_or, deps
        if isinstance(predicate, preds.Not):
            inner_fn, deps = self._compile_predicate(predicate.term)

            def fn_not(ctx: _Ctx, frame: List[Any]) -> bool:
                return not inner_fn(ctx, frame)

            return fn_not, deps
        if isinstance(predicate, preds.TruePredicate):
            def fn_true(ctx: _Ctx, frame: List[Any]) -> bool:
                return True

            return fn_true, frozenset()
        raise CompileError(f"no compile rule for predicate {type(predicate).__name__}")

    def _compile_Pred(self, expr: ast.Pred) -> _Compiled:
        pred_fn, deps = self._compile_predicate(expr.predicate)

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            maybe_count(ctx.counter, "predicate_checks")
            if pred_fn(ctx, frame):
                return Bag.singleton(())
            return EMPTY_BAG

        return fn, deps

    # ------------------------------------------------------------------ #
    # For: nested loops, guard analysis and hash-joins
    # ------------------------------------------------------------------ #
    @staticmethod
    def _flatten_conjuncts(predicate: preds.Predicate) -> List[preds.Predicate]:
        if isinstance(predicate, preds.And):
            conjuncts: List[preds.Predicate] = []
            for term in predicate.terms:
                conjuncts.extend(_Compiler._flatten_conjuncts(term))
            return conjuncts
        return [predicate]

    def _compile_For(self, expr: ast.For) -> _Compiled:
        source_fn, source_deps = self.compile(expr.source)

        # Peel the chain of `where` guards (`for _w in p(x̄) union …`) sitting
        # directly under this binder; the guard predicates are the join
        # condition candidates.
        guard_specs: List[Tuple[preds.Predicate, str]] = []
        body = expr.body
        while isinstance(body, ast.For) and isinstance(body.source, ast.Pred):
            guard_specs.append((body.source.predicate, body.var))
            body = body.body

        binding = self._Bound(self, self._elem_scope, expr.var)
        guard_bindings: List[_Compiler._Bound] = []
        self._binder_depth += 1
        try:
            atoms: List[_EqAtom] = []
            residual: List[_Compiled] = []
            conjuncts: List[_Compiled] = []
            if guard_specs and not source_deps:
                # Hash-join candidate: the build side is loop-invariant, so
                # an index over it can be built once per evaluation.  Guard
                # i's predicate is the *source* of its binder, so it is
                # compiled with only the loop variable and guards 1..i-1 in
                # scope: a guard binder never shadows names inside its own
                # predicate, mirroring interpreter scoping.
                local_names = {expr.var, *(name for _, name in guard_specs)}
                loop_var_shadowed = False
                for predicate, guard_name in guard_specs:
                    for conjunct in self._flatten_conjuncts(predicate):
                        compiled_conjunct = self._compile_predicate(conjunct)
                        conjuncts.append(compiled_conjunct)
                        # Once a guard binder has rebound the loop variable's
                        # name, later conjuncts mentioning it no longer see
                        # the loop element — they can't be hash atoms.
                        atom = (
                            self._equality_atom(conjunct, expr.var, local_names)
                            if not loop_var_shadowed
                            else None
                        )
                        if atom is not None:
                            atoms.append(atom)
                        else:
                            residual.append(compiled_conjunct)
                    guard_bindings.append(
                        self._Bound(self, self._elem_scope, guard_name)
                    )
                    if guard_name == expr.var:
                        loop_var_shadowed = True
            if atoms:
                compiled = self._compile_hash_join(
                    expr, source_fn, binding, guard_bindings, atoms, residual, conjuncts, body
                )
            else:
                # No hashable equality found: fall back to the nested loop,
                # recompiling the original body so the guard binders are
                # introduced by their own For nodes with correct scoping.
                for guard_binding in reversed(guard_bindings):
                    guard_binding.release()
                guard_bindings = []
                compiled = self._compile_plain_for(expr, source_fn, source_deps, binding)
        finally:
            self._binder_depth -= 1
            for guard_binding in reversed(guard_bindings):
                guard_binding.release()
            binding.release()
        return compiled

    def _equality_atom(
        self, conjunct: preds.Predicate, loop_var: str, local_names: Set[str]
    ) -> Optional[_EqAtom]:
        """Classify one guard conjunct as a hashable equality, if possible.

        A conjunct qualifies when it is ``==`` between a projection of the
        loop variable and something computable *outside* the loop: a
        projection of an enclosing variable, or a constant.
        """
        if not isinstance(conjunct, preds.Comparison) or conjunct.op != "==":
            return None

        def is_loop_side(operand: preds.Operand) -> bool:
            return isinstance(operand, preds.VarPath) and operand.var == loop_var

        def is_outer_side(operand: preds.Operand) -> bool:
            if isinstance(operand, preds.Const):
                return True
            return isinstance(operand, preds.VarPath) and operand.var not in local_names

        if is_loop_side(conjunct.left) and is_outer_side(conjunct.right):
            loop_operand, outer_operand = conjunct.left, conjunct.right
        elif is_loop_side(conjunct.right) and is_outer_side(conjunct.left):
            loop_operand, outer_operand = conjunct.right, conjunct.left
        else:
            return None
        probe_fn, probe_deps = self._compile_operand(outer_operand)
        return _EqAtom(loop_operand.path, probe_fn, probe_deps)  # type: ignore[union-attr]

    def _compile_plain_for(
        self,
        expr: ast.For,
        source_fn: _Fn,
        source_deps: frozenset,
        binding: "_Compiler._Bound",
    ) -> _Compiled:
        body_fn, body_deps = self.compile(expr.body)
        slot = binding.slot

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            source = _as_bag(source_fn(ctx, frame))
            counter = ctx.counter
            accumulator: Dict[Any, int] = {}
            for element, multiplicity in source.items():
                maybe_count(counter, "for_iterations")
                frame[slot] = element
                _accumulate(accumulator, _as_bag(body_fn(ctx, frame)), multiplicity, counter)
            return Bag.from_pairs(accumulator.items())

        deps = source_deps | (body_deps - {slot})
        return fn, frozenset(deps)

    def _compile_hash_join(
        self,
        expr: ast.For,
        source_fn: _Fn,
        binding: "_Compiler._Bound",
        guard_bindings: Sequence["_Compiler._Bound"],
        atoms: Sequence[_EqAtom],
        residual: Sequence[_Compiled],
        conjuncts: Sequence[_Compiled],
        body: Expr,
    ) -> _Compiled:
        """``for x in S union (where k(x)=k' …)`` as build-once/probe-per-tuple.

        Hashing is sound only for keys on which ``==`` coincides with
        dictionary-key matching: base values that are equal to themselves.
        Non-base keys (the interpreter rejects comparing them, but possibly
        only after an earlier conjunct short-circuits), ``NaN`` (not
        self-equal, so dict identity lookup would wrongly match it) and key
        computations that raise all degrade to ``loop_fn`` — a nested-loop
        twin that evaluates every guard conjunct in original order, exactly
        as the interpreter does.
        """
        slot = binding.slot
        guard_slots = tuple(guard_binding.slot for guard_binding in guard_bindings)
        build_paths = tuple(atom.build_path for atom in atoms)
        probe_fns = tuple(atom.probe for atom in atoms)
        body_fn, body_deps = self.compile(body)
        residual_fns = tuple(fn for fn, _ in residual)
        conjunct_fns = tuple(fn for fn, _ in conjuncts)
        index_key = self._cache_keys
        self._cache_keys += 1
        build_context = f"hash-join build over {expr.var!r}"
        # A build side that is a bare base-relation reference can be served
        # by a *persistent* index maintained incrementally by the storage
        # layer; record the requirement so views can register it.
        relation_name = (
            expr.source.name if isinstance(expr.source, ast.Relation) else None
        )
        if relation_name is not None:
            self.index_requirements.append(
                IndexRequirement(relation_name, build_paths)
            )

        def loop_fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            counter = ctx.counter
            source = _as_bag(source_fn(ctx, frame))
            accumulator: Dict[Any, int] = {}
            for element, multiplicity in source.items():
                maybe_count(counter, "for_iterations")
                frame[slot] = element
                for guard_slot in guard_slots:
                    frame[guard_slot] = ()
                maybe_count(counter, "predicate_checks")
                if not all(conjunct(ctx, frame) for conjunct in conjunct_fns):
                    continue
                _accumulate(accumulator, _as_bag(body_fn(ctx, frame)), multiplicity, counter)
            return Bag.from_pairs(accumulator.items())

        # The single hashing-soundness rule, shared with the storage layer's
        # persistent indexes so both always agree on which keys qualify.
        hashable = is_hashable_key

        def build_index(ctx: _Ctx, frame: List[Any]):
            """Per-evaluation build over the context's own relation snapshot."""
            try:
                source = _as_bag(source_fn(ctx, frame))
                built: Dict[Any, Any] = {}
                for element, multiplicity in source.items():
                    maybe_count(ctx.counter, "hash_build_entries")
                    key_parts = []
                    for path in build_paths:
                        value = _project_value(element, path, build_context)
                        if not hashable(value):
                            raise _UnhashableKey()
                        key_parts.append(value)
                    # Interned: recurring keys canonicalize to one tuple, so
                    # bucket lookups take the identity fast path (shared with
                    # the storage layer's persistent indexes).
                    built.setdefault(intern_key(tuple(key_parts)), []).append(
                        (element, multiplicity)
                    )
            except _UnhashableKey:
                built = _NO_INDEX
            ctx.cache[index_key] = built
            return built

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            counter = ctx.counter
            index = ctx.cache.get(index_key)
            if index is _PERSISTENT:
                # Re-verify on every call (see the sentinel's note): serve
                # the persistent index only while it still describes the
                # exact bag this context reads; once the store moves on,
                # build from the snapshot like the interpreter would see it.
                source = _as_bag(source_fn(ctx, frame))
                index = ctx.indexes.probe(relation_name, build_paths, source)
                if index is None:
                    index = build_index(ctx, frame)
            elif index is None:
                provider = ctx.indexes
                if provider is not None and relation_name is not None:
                    # Persistent path: use the storage layer's index when it
                    # provably describes the very bag this query reads (bag
                    # identity — exact, since bags are immutable) and is not
                    # poisoned by unhashable keys.  Its buckets have the same
                    # (element, multiplicity) shape as a fresh build.
                    source = _as_bag(source_fn(ctx, frame))
                    persistent = provider.probe(relation_name, build_paths, source)
                    if persistent is not None:
                        maybe_count(counter, "index_hits")
                        ctx.cache[index_key] = _PERSISTENT
                        index = persistent
                    else:
                        provider.note_rebuild(relation_name, build_paths)
                        maybe_count(counter, "index_rebuilds")
                if index is None:
                    index = build_index(ctx, frame)
            if index is _NO_INDEX:
                return loop_fn(ctx, frame)
            if not index:
                # Empty build side: the interpreter never evaluates the
                # guard, so no operand error may fire here either.
                return EMPTY_BAG
            maybe_count(counter, "hash_probes")
            try:
                probe_parts = []
                for probe in probe_fns:
                    value = probe(ctx, frame)
                    if not hashable(value):
                        raise _UnhashableKey()
                    probe_parts.append(value)
            except (_UnhashableKey, EvaluationError):
                # Probe keys the index cannot answer faithfully (non-base,
                # NaN, or erroring operands whose error the interpreter may
                # short-circuit away) fall back to the loop for this probe.
                return loop_fn(ctx, frame)
            # Probe keys are deliberately *not* interned: equality-based
            # bucket lookup works regardless, and a scan of mostly-absent
            # probe keys must not evict the hot build-side keys from the
            # bounded interner.
            bucket = index.get(tuple(probe_parts))
            if not bucket:
                return EMPTY_BAG
            accumulator: Dict[Any, int] = {}
            for element, multiplicity in bucket:
                maybe_count(counter, "for_iterations")
                frame[slot] = element
                for guard_slot in guard_slots:
                    frame[guard_slot] = ()
                if residual_fns:
                    maybe_count(counter, "predicate_checks")
                    if not all(res(ctx, frame) for res in residual_fns):
                        continue
                _accumulate(accumulator, _as_bag(body_fn(ctx, frame)), multiplicity, counter)
            return Bag.from_pairs(accumulator.items())

        # Every guard conjunct (atoms included) contributes deps; probe-side
        # slots are never local, so subtracting the local slots keeps them.
        local_slots = {slot, *guard_slots}
        deps: frozenset = body_deps
        for _, part_deps in conjuncts:
            deps |= part_deps
        return fn, frozenset(deps - local_slots)

    # ------------------------------------------------------------------ #
    # Structural constructs
    # ------------------------------------------------------------------ #
    def _compile_Let(self, expr: ast.Let) -> _Compiled:
        bound_fn, bound_deps = self.compile(expr.bound)
        binding = self._Bound(self, self._bag_scope, expr.name)
        try:
            body_fn, body_deps = self.compile(expr.body)
        finally:
            binding.release()
        slot = binding.slot

        def fn(ctx: _Ctx, frame: List[Any]) -> Any:
            frame[slot] = bound_fn(ctx, frame)
            return body_fn(ctx, frame)

        return fn, bound_deps | frozenset(body_deps - {slot})

    def _compile_Flatten(self, expr: ast.Flatten) -> _Compiled:
        body_fn, deps = self.compile(expr.body)

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            outer = _as_bag(body_fn(ctx, frame))
            result = EMPTY_BAG
            for element, multiplicity in outer.items():
                if not isinstance(element, Bag):
                    raise EvaluationError(
                        "flatten applied to a bag whose elements are not bags"
                    )
                maybe_count(ctx.counter, "union_merges", len(element))
                result = result.union(element.scale(multiplicity))
            return result

        return fn, deps

    def _compile_Product(self, expr: ast.Product) -> _Compiled:
        compiled = [self.compile(factor) for factor in expr.factors]
        factor_fns = tuple(fn for fn, _ in compiled)

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            counter = ctx.counter
            factor_bags = [_as_bag(factor(ctx, frame)) for factor in factor_fns]
            accumulator: Dict[Any, int] = {(): 1}
            for factor in factor_bags:
                next_accumulator: Dict[Any, int] = {}
                for prefix, prefix_mult in accumulator.items():
                    for element, multiplicity in factor.items():
                        maybe_count(counter, "product_pairs")
                        combined = prefix_mult * multiplicity
                        if combined == 0:
                            continue
                        key = prefix + (element,)
                        next_accumulator[key] = next_accumulator.get(key, 0) + combined
                accumulator = next_accumulator
            return Bag.from_pairs(accumulator.items())

        deps: frozenset = frozenset()
        for _, factor_deps in compiled:
            deps |= factor_deps
        return fn, deps

    def _compile_Union(self, expr: ast.Union) -> _Compiled:
        compiled = [self.compile(term) for term in expr.terms]
        term_fns = tuple(fn for fn, _ in compiled)

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            result = EMPTY_BAG
            for term in term_fns:
                term_bag = _as_bag(term(ctx, frame))
                maybe_count(ctx.counter, "union_merges", len(term_bag))
                result = result.union(term_bag)
            return result

        deps: frozenset = frozenset()
        for _, term_deps in compiled:
            deps |= term_deps
        return fn, deps

    def _compile_Negate(self, expr: ast.Negate) -> _Compiled:
        body_fn, deps = self.compile(expr.body)

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            return _as_bag(body_fn(ctx, frame)).negate()

        return fn, deps

    # ------------------------------------------------------------------ #
    # Labels and dictionaries
    # ------------------------------------------------------------------ #
    def _compile_InLabel(self, expr: ast.InLabel) -> _Compiled:
        readers = [self._elem_reader(param) for param in expr.params]
        reader_fns = tuple(fn for fn, _ in readers)
        iota = expr.iota

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            values = tuple(read(ctx, frame) for read in reader_fns)
            maybe_count(ctx.counter, "elements_emitted")
            return Bag.singleton(Label(iota, values))

        deps: frozenset = frozenset()
        for _, reader_deps in readers:
            deps |= reader_deps
        return fn, deps

    def _compile_DictSingleton(self, expr: ast.DictSingleton) -> _Compiled:
        bindings = [self._Bound(self, self._elem_scope, param) for param in expr.params]
        self._binder_depth += 1
        try:
            body_fn, body_deps = self.compile(expr.body)
        finally:
            self._binder_depth -= 1
            for binding in reversed(bindings):
                binding.release()
        param_slots = tuple(binding.slot for binding in bindings)
        iota = expr.iota
        arity = len(expr.params)

        def fn(ctx: _Ctx, frame: List[Any]) -> DictValue:
            # The dictionary is a closure over everything except its own
            # parameters (Section 5.2): snapshot the frame so later binder
            # writes in enclosing loops do not leak into lookups.
            snapshot = list(frame)

            def _lookup(values: Tuple[Any, ...]) -> Bag:
                if len(values) != arity:
                    raise EvaluationError(
                        f"label arity mismatch for dictionary {iota!r}: "
                        f"expected {arity} values, got {len(values)}"
                    )
                local = list(snapshot)
                for param_slot, value in zip(param_slots, values):
                    local[param_slot] = value
                maybe_count(ctx.counter, "dict_lookups")
                return _as_bag(body_fn(ctx, local))

            return IntensionalDict(iota, _lookup)

        return fn, frozenset(body_deps - set(param_slots))

    def _compile_DictEmpty(self, expr: ast.DictEmpty) -> _Compiled:
        def fn(ctx: _Ctx, frame: List[Any]) -> DictValue:
            return EMPTY_DICT

        return fn, frozenset()

    def _compile_DictUnion(self, expr: ast.DictUnion) -> _Compiled:
        compiled = [self.compile(term) for term in expr.terms]
        term_fns = tuple(fn for fn, _ in compiled)

        def fn(ctx: _Ctx, frame: List[Any]) -> DictValue:
            result: DictValue = EMPTY_DICT
            for term in term_fns:
                result = result.label_union(_as_dict(term(ctx, frame)))
            return result

        deps: frozenset = frozenset()
        for _, term_deps in compiled:
            deps |= term_deps
        return fn, deps

    def _compile_DictAdd(self, expr: ast.DictAdd) -> _Compiled:
        compiled = [self.compile(term) for term in expr.terms]
        term_fns = tuple(fn for fn, _ in compiled)

        def fn(ctx: _Ctx, frame: List[Any]) -> DictValue:
            result: DictValue = EMPTY_DICT
            for term in term_fns:
                result = result.add(_as_dict(term(ctx, frame)))
            return result

        deps: frozenset = frozenset()
        for _, term_deps in compiled:
            deps |= term_deps
        return fn, deps

    def _compile_DictLookup(self, expr: ast.DictLookup) -> _Compiled:
        dict_fn, dict_deps = self.compile(expr.dictionary)
        read, read_deps = self._elem_reader(expr.var)
        path = expr.path

        def fn(ctx: _Ctx, frame: List[Any]) -> Bag:
            dictionary = _as_dict(dict_fn(ctx, frame))
            label = _project_value(read(ctx, frame), path, "dictionary lookup")
            if not isinstance(label, Label):
                raise EvaluationError(f"dictionary lookup key is not a label: {label!r}")
            maybe_count(ctx.counter, "dict_lookups")
            return dictionary.lookup(label)

        return fn, dict_deps | read_deps


class CompiledQuery:
    """A compiled NRC+ expression: evaluate it many times, over any bindings.

    The compiled form closes over nothing database-specific — relations,
    dictionaries, update symbols and externally-bound variables are resolved
    from the :class:`~repro.nrc.evaluator.Environment` passed to each
    :meth:`evaluate` call, so one compiled object serves every update of a
    maintained view.
    """

    def __init__(self, expr: Expr) -> None:
        self.expr = expr
        compiler = _Compiler()
        self._fn, _ = compiler.compile(expr)
        self._slot_count = compiler._slot_count
        self._elem_params = tuple(compiler._elem_params.items())
        self._bag_params = tuple(compiler._bag_params.items())
        # Deduplicated, first-seen order: the join atoms this query probes
        # over base relations, registrable as persistent storage indexes.
        seen = set()
        requirements = []
        for requirement in compiler.index_requirements:
            if requirement.key() not in seen:
                seen.add(requirement.key())
                requirements.append(requirement)
        self.index_requirements: Tuple[IndexRequirement, ...] = tuple(requirements)

    # ------------------------------------------------------------------ #
    def evaluate(
        self, env: Optional[Environment] = None, counter: Optional[OpCounter] = None
    ):
        """Evaluate against ``env`` (mirrors :func:`repro.nrc.evaluator.evaluate`)."""
        env = env or Environment()
        frame: List[Any] = [_MISSING] * self._slot_count
        for name, slot in self._elem_params:
            if name in env.elem_vars:
                frame[slot] = env.elem_vars[name]
        for name, slot in self._bag_params:
            if name in env.bag_vars:
                frame[slot] = env.bag_vars[name]
        ctx = _Ctx(
            env.relations,
            env.dictionaries,
            env.deltas,
            counter,
            getattr(env, "indexes", None),
        )
        return self._fn(ctx, frame)

    def evaluate_bag(
        self, env: Optional[Environment] = None, counter: Optional[OpCounter] = None
    ) -> Bag:
        """Evaluate and require a bag result (mirrors :func:`evaluate_bag`)."""
        value = self.evaluate(env, counter)
        if not isinstance(value, Bag):
            raise EvaluationError(f"expected a bag result, got {value!r}")
        return value

    # ------------------------------------------------------------------ #
    # Rebuildable-by-description (sendable execution state)
    # ------------------------------------------------------------------ #
    def describe_pipeline(self) -> Dict[str, Any]:
        """The pipeline as data: expression, slot layout, index requirements.

        This is what actually travels between processes — the compiled
        closures close over each other and cannot be pickled, but every AST
        node is a frozen dataclass with structural equality, so the
        expression itself is the complete, canonical build recipe.  The slot
        layout and index-requirement keys ride along as a cross-version
        consistency check: :func:`rebuild_compiled` recompiles on the
        receiving side and verifies the layout matches before serving.
        """
        return {
            "expr": self.expr,
            "slot_count": self._slot_count,
            "elem_params": self._elem_params,
            "bag_params": self._bag_params,
            "index_requirements": tuple(
                requirement.key() for requirement in self.index_requirements
            ),
        }

    def _layout(self) -> Tuple[Any, ...]:
        return (
            self._slot_count,
            self._elem_params,
            self._bag_params,
            tuple(requirement.key() for requirement in self.index_requirements),
        )

    def __reduce__(self):
        description = self.describe_pipeline()
        return (rebuild_compiled, (description,))

    def __eq__(self, other: Any) -> bool:
        if other is self:
            return True
        if not isinstance(other, CompiledQuery):
            return NotImplemented
        # The expression determines the whole compilation deterministically,
        # so expr equality is pipeline equality (and survives pickling).
        return self.expr == other.expr

    def __hash__(self) -> int:
        return hash(self.expr)

    def __repr__(self) -> str:
        return f"CompiledQuery({type(self.expr).__name__}, slots={self._slot_count})"


#: Per-process rebuild cache: a worker that receives the same pipeline
#: description many times (one per shard-apply unit) compiles it once.
#: Keyed by the expression, which is frozen, hashable and value-equal.
_REBUILD_CACHE: Dict[Expr, CompiledQuery] = {}
_REBUILD_CACHE_LIMIT = 256


def rebuild_compiled(description: Dict[str, Any]) -> CompiledQuery:
    """Recompile a pipeline from its :meth:`CompiledQuery.describe_pipeline`.

    The unpickle target for compiled pipelines: rebuilds from the expression
    (cached per process) and cross-checks the described slot layout and index
    requirements against the fresh build, so a description produced by a
    different library version can never silently bind slots differently.
    """
    expr = description["expr"]
    compiled = _REBUILD_CACHE.get(expr)
    if compiled is None:
        if len(_REBUILD_CACHE) >= _REBUILD_CACHE_LIMIT:
            _REBUILD_CACHE.pop(next(iter(_REBUILD_CACHE)))
        compiled = CompiledQuery(expr)
        _REBUILD_CACHE[expr] = compiled
    described = (
        description["slot_count"],
        tuple(description["elem_params"]),
        tuple(description["bag_params"]),
        tuple(description["index_requirements"]),
    )
    if compiled._layout() != described:
        raise CompileError(
            "compiled-pipeline description does not match this build: "
            f"described layout {described!r} != rebuilt {compiled._layout()!r}"
        )
    return compiled
