"""Algebraic simplification of NRC+ expressions.

Delta derivation and shredding introduce many vacuous sub-terms — empty-bag
branches, unions with a single member, ``let``s whose variable is never used.
The simplifier removes them using only semantics-preserving equivalences of
the calculus (the laws of the commutative group ``(Bag, ⊎, ⊖, ∅)`` and the
monad laws of ``for``), so that deltas both read like the paper's examples
and evaluate without touching dead branches.

The entry point is :func:`simplify`, which rewrites bottom-up to a fixpoint.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet

from repro.nrc import ast
from repro.nrc.analysis import free_bag_vars, free_elem_vars
from repro.nrc.ast import Expr
from repro.nrc.traverse import map_expr

__all__ = ["simplify", "is_empty_expr", "rename_elem_var", "substitute_bag_var"]

_MAX_PASSES = 20


def is_empty_expr(expr: Expr) -> bool:
    """Syntactic check: is ``expr`` literally the empty bag / dictionary?"""
    return isinstance(expr, (ast.Empty, ast.DictEmpty))


def simplify(expr: Expr) -> Expr:
    """Simplify ``expr`` by rewriting to a fixpoint (at most a fixed pass budget)."""
    current = expr
    for _ in range(_MAX_PASSES):
        simplified = map_expr(current, _simplify_node)
        if simplified == current:
            return simplified
        current = simplified
    return current


# --------------------------------------------------------------------------- #
# Variable manipulation
# --------------------------------------------------------------------------- #
def rename_elem_var(expr: Expr, old: str, new: str) -> Expr:
    """Rename free occurrences of element variable ``old`` to ``new``.

    Descends under binders except where ``old`` is re-bound (shadowing).
    """
    if isinstance(expr, ast.SngVar) and expr.var == old:
        return ast.SngVar(new)
    if isinstance(expr, ast.SngProj) and expr.var == old:
        return ast.SngProj(new, expr.path)
    if isinstance(expr, ast.DictLookup):
        dictionary = rename_elem_var(expr.dictionary, old, new)
        var = new if expr.var == old else expr.var
        return ast.DictLookup(dictionary, var, expr.path)
    if isinstance(expr, ast.InLabel):
        params = tuple(new if param == old else param for param in expr.params)
        return ast.InLabel(expr.iota, params)
    if isinstance(expr, ast.Pred):
        return ast.Pred(_rename_in_predicate(expr.predicate, old, new))
    if isinstance(expr, ast.For):
        source = rename_elem_var(expr.source, old, new)
        if expr.var == old:
            return dataclasses.replace(expr, source=source)
        return dataclasses.replace(expr, source=source, body=rename_elem_var(expr.body, old, new))
    if isinstance(expr, ast.DictSingleton):
        if old in expr.params:
            return expr
        return dataclasses.replace(expr, body=rename_elem_var(expr.body, old, new))
    new_children = tuple(rename_elem_var(child, old, new) for child in expr.children())
    from repro.nrc.traverse import _rebuild_with_children

    return _rebuild_with_children(expr, new_children)


def _rename_in_predicate(predicate, old: str, new: str):
    from repro.nrc import predicates as preds

    if isinstance(predicate, preds.Comparison):
        return preds.Comparison(
            predicate.op,
            _rename_operand(predicate.left, old, new),
            _rename_operand(predicate.right, old, new),
        )
    if isinstance(predicate, preds.And):
        return preds.And(tuple(_rename_in_predicate(t, old, new) for t in predicate.terms))
    if isinstance(predicate, preds.Or):
        return preds.Or(tuple(_rename_in_predicate(t, old, new) for t in predicate.terms))
    if isinstance(predicate, preds.Not):
        return preds.Not(_rename_in_predicate(predicate.term, old, new))
    return predicate


def _rename_operand(operand, old: str, new: str):
    from repro.nrc import predicates as preds

    if isinstance(operand, preds.VarPath) and operand.var == old:
        return preds.VarPath(new, operand.path)
    return operand


def substitute_bag_var(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Substitute ``replacement`` for free occurrences of bag variable ``name``."""
    if isinstance(expr, ast.BagVar) and expr.name == name:
        return replacement
    if isinstance(expr, ast.Let):
        bound = substitute_bag_var(expr.bound, name, replacement)
        if expr.name == name:
            return dataclasses.replace(expr, bound=bound)
        return dataclasses.replace(
            expr, bound=bound, body=substitute_bag_var(expr.body, name, replacement)
        )
    new_children = tuple(substitute_bag_var(child, name, replacement) for child in expr.children())
    from repro.nrc.traverse import _rebuild_with_children

    return _rebuild_with_children(expr, new_children)


# --------------------------------------------------------------------------- #
# Node-level rewrites
# --------------------------------------------------------------------------- #
def _simplify_node(expr: Expr) -> Expr:
    if isinstance(expr, ast.Union):
        return _simplify_union(expr)
    if isinstance(expr, ast.Product):
        return _simplify_product(expr)
    if isinstance(expr, ast.For):
        return _simplify_for(expr)
    if isinstance(expr, ast.Flatten):
        return _simplify_flatten(expr)
    if isinstance(expr, ast.Negate):
        return _simplify_negate(expr)
    if isinstance(expr, ast.Let):
        return _simplify_let(expr)
    if isinstance(expr, ast.DictUnion):
        return _simplify_dict_combine(expr, ast.DictUnion)
    if isinstance(expr, ast.DictAdd):
        return _simplify_dict_combine(expr, ast.DictAdd)
    return expr


def _simplify_union(expr: ast.Union) -> Expr:
    terms = []
    for term in expr.terms:
        if is_empty_expr(term):
            continue
        if isinstance(term, ast.Union):
            terms.extend(term.terms)
        else:
            terms.append(term)
    if not terms:
        return ast.Empty()
    if len(terms) == 1:
        return terms[0]
    return ast.Union(tuple(terms))


def _simplify_product(expr: ast.Product) -> Expr:
    if any(is_empty_expr(factor) for factor in expr.factors):
        return ast.Empty()
    return expr


def _simplify_for(expr: ast.For) -> Expr:
    if is_empty_expr(expr.source) or is_empty_expr(expr.body):
        return ast.Empty()
    # Monad left unit: for x in sng(y) union body  ≡  body[x := y]
    if isinstance(expr.source, ast.SngVar):
        return rename_elem_var(expr.body, expr.var, expr.source.var)
    # Dead binder over the unit predicate bag: for _ in sng(⟨⟩) union body ≡ body
    if isinstance(expr.source, ast.SngUnit) and expr.var not in free_elem_vars(expr.body):
        return expr.body
    return expr


def _simplify_flatten(expr: ast.Flatten) -> Expr:
    if is_empty_expr(expr.body):
        return ast.Empty()
    if isinstance(expr.body, ast.Sng):
        return expr.body.body
    return expr


def _simplify_negate(expr: ast.Negate) -> Expr:
    if is_empty_expr(expr.body):
        return ast.Empty()
    if isinstance(expr.body, ast.Negate):
        return expr.body.body
    return expr


def _simplify_let(expr: ast.Let) -> Expr:
    used: FrozenSet[str] = free_bag_vars(expr.body)
    if expr.name not in used:
        return expr.body
    if isinstance(expr.bound, (ast.BagVar, ast.Relation, ast.DeltaRelation, ast.Empty)):
        return substitute_bag_var(expr.body, expr.name, expr.bound)
    return expr


def _simplify_dict_combine(expr, constructor):
    terms = []
    for term in expr.terms:
        if isinstance(term, ast.DictEmpty):
            continue
        if isinstance(term, constructor):
            terms.extend(term.terms)
        else:
            terms.append(term)
    if not terms:
        return ast.DictEmpty()
    if len(terms) == 1:
        return terms[0]
    return constructor(tuple(terms))
