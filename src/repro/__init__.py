"""repro — Incremental View Maintenance for Collection Programming (NRC+ on bags).

A from-scratch reproduction of Koch, Lupei and Tannen, *Incremental View
Maintenance for Collection Programming* (PODS 2016): the positive nested
relational calculus on bags, its delta rules, cost model, shredding
transformation and the IVM engines (classical, recursive and nested/shredded)
built on top of them.
"""

from repro.bag import Bag, EMPTY_BAG

__version__ = "1.0.0"

__all__ = ["Bag", "EMPTY_BAG", "__version__"]
