"""repro — Incremental View Maintenance for Collection Programming (NRC+ on bags).

A from-scratch reproduction of Koch, Lupei and Tannen, *Incremental View
Maintenance for Collection Programming* (PODS 2016): the positive nested
relational calculus on bags, its delta rules, cost model, shredding
transformation and the IVM engines (classical, recursive and nested/shredded)
built on top of them.

The public API is the :mod:`repro.engine` facade::

    from repro import Engine, Record, STRING, field_types, nest

    engine = Engine()
    movies = engine.dataset("M", Record("Movie", field_types(name=STRING, gen=STRING, dir=STRING)))
    ...
    view = engine.view("related", query, strategy="auto")
    engine.insert("M", [("Jarhead", "Drama", "Mendes")])
    print(engine.explain(view).render())

The lower layers (``repro.nrc``, ``repro.delta``, ``repro.shredding``,
``repro.cost``, ``repro.ivm``) remain importable as the implementation.
"""

from repro.bag import Bag, EMPTY_BAG
from repro.engine import (
    BackendRegistry,
    BackendSpec,
    Engine,
    MaintenancePlan,
    Session,
    StrategyEstimate,
    ViewHandle,
    backend_names,
    register_backend,
)
from repro.ivm.updates import Update, UpdateStream, deletions, insertions
from repro.surface import (
    Dataset,
    NUMBER,
    Query,
    Record,
    STRING,
    field_types,
    lit,
    nest,
)

__version__ = "1.1.0"

__all__ = [
    "Bag",
    "EMPTY_BAG",
    "Engine",
    "Session",
    "ViewHandle",
    "MaintenancePlan",
    "StrategyEstimate",
    "BackendRegistry",
    "BackendSpec",
    "backend_names",
    "register_backend",
    "Update",
    "UpdateStream",
    "insertions",
    "deletions",
    "Dataset",
    "Query",
    "Record",
    "STRING",
    "NUMBER",
    "field_types",
    "lit",
    "nest",
    "__version__",
]
