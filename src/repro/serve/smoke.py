"""CI smoke check for the serving layer: boot, drive with the CLI, shut down.

Run as ``python -m repro.serve.smoke``.  It starts a real
:class:`~repro.serve.server.ReproServer` on an ephemeral port, drives it
through the actual ``repro-cli`` entry point (``repro.client.cli.main`` with
explicit ``argv`` — the same code path the console script takes), covering
dataset creation, a flat and a nested view, a synchronous apply, every
read endpoint, and finally asserts a clean drain-and-shutdown:

* the ingest queue is empty and every accepted update was applied,
* the engine scheduler's thread pool is gone (``Engine.close`` ran),
* a post-shutdown request fails with a connection error.

Exits non-zero on any failure, so CI can run it as a step.  The check is
storage-configuration agnostic (it inherits ``REPRO_SHARDS`` /
``REPRO_PARALLEL_VIEWS`` from the environment), so it runs identically on
both CI matrix legs.
"""

from __future__ import annotations

import json
import sys

from repro.client.api import APIClient, APIError
from repro.client.cli import main as cli_main
from repro.serve import ReproServer, ServerConfig

__all__ = ["run_smoke", "main"]

_DRAMAS_QUERY = {
    "from": "M",
    "var": "m",
    "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
    "select": [["field", "m", "name"]],
}

_RELATED_QUERY = {
    "from": "M",
    "var": "m",
    "select": [
        ["field", "m", "name"],
        [
            "nest",
            {
                "from": "M",
                "var": "m2",
                "where": [
                    "and",
                    ["ne", ["field", "m", "name"], ["field", "m2", "name"]],
                    [
                        "or",
                        ["eq", ["field", "m", "gen"], ["field", "m2", "gen"]],
                        ["eq", ["field", "m", "dir"], ["field", "m2", "dir"]],
                    ],
                ],
                "select": [["field", "m2", "name"]],
            },
        ],
    ],
}


def _cli(url: str, *args: str) -> None:
    rc = cli_main(["--server", url, "--tenant", "smoke", *args])
    if rc != 0:
        raise AssertionError(f"repro-cli {' '.join(args)} exited {rc}")


def run_smoke() -> None:
    server = ReproServer(ServerConfig(port=0)).start()
    url = server.url
    print(f"smoke: serving on {url}")

    _cli(url, "health")
    _cli(
        url,
        "datasets",
        "create",
        "M",
        "--fields",
        "name,gen,dir",
        "--rows",
        json.dumps([["Drive", "Drama", "Refn"], ["Skyfall", "Action", "Mendes"]]),
    )
    _cli(url, "views", "create", "dramas", "--query", json.dumps(_DRAMAS_QUERY))
    _cli(url, "views", "create", "related", "--query", json.dumps(_RELATED_QUERY))
    _cli(
        url,
        "apply",
        "--data",
        json.dumps({"M": {"rows": [["Jarhead", "Drama", "Mendes"]]}}),
    )
    _cli(url, "datasets", "list")
    _cli(url, "views", "show", "dramas")
    _cli(url, "views", "show", "related")
    _cli(url, "views", "explain", "dramas")
    _cli(url, "stats")

    # Direct wire checks on the final state before shutting down.
    api = APIClient(url, max_retries=1)
    shown = api.get("v1/smoke/views/dramas")
    pairs = sorted(tuple(pair) for pair in shown["pairs"])
    if pairs != [("Drive", 1), ("Jarhead", 1)]:
        raise AssertionError(f"unexpected dramas result: {pairs}")
    stats = api.get("stats")["tenants"]["smoke"]
    if stats["queue_depth"] != 0:
        raise AssertionError(f"queue not drained: {stats['queue_depth']}")
    ingest = stats["ingest"]
    if ingest["errors"] or ingest["rejected_backpressure"]:
        raise AssertionError(f"unexpected ingest failures: {ingest}")

    session = server.sessions.get("smoke")
    engine = session.engine
    server.close(drain=True)

    if not engine.closed:
        raise AssertionError("Engine.close did not run on server shutdown")
    if session.worker.is_alive():
        raise AssertionError("ingest worker still alive after shutdown")
    try:
        APIClient(url, max_retries=1).get("health")
    except APIError:
        pass
    else:
        raise AssertionError("server still answering after close()")
    print("smoke: clean shutdown verified")


def main() -> int:
    try:
        run_smoke()
    except AssertionError as error:
        print(f"smoke FAILED: {error}", file=sys.stderr)
        return 1
    print("serve smoke OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
