"""IVM-as-a-service: the concurrent serving layer over the engine.

``repro.serve`` wraps :class:`~repro.engine.Engine` sessions in a
long-running threaded HTTP service with named per-tenant datasets and
views, a JSON wire protocol, coalescing single-writer ingest queues with
backpressure (HTTP 429 + ``Retry-After``), and per-request consistent
reader snapshots.  See ``docs/serve.md`` for the wire protocol and the
concurrency contract, and :mod:`repro.client` for the SDK/CLI.

    from repro.serve import ReproServer

    with ReproServer(port=0) as server:          # port 0 → ephemeral
        print(server.url)
        ...

The server is pure standard library; the optional ``[cli]`` extra only
affects client-side table rendering.
"""

from repro.serve.ingest import BackpressureError, Command, IngestStats, IngestWorker
from repro.serve.protocol import (
    ProtocolError,
    decode_update,
    decode_value,
    encode_bag,
    encode_value,
    query_from_spec,
    record_from_spec,
)
from repro.serve.server import ReproServer, ServerConfig
from repro.serve.sessions import SessionManager, TenantRecoveringError, TenantSession

__all__ = [
    "BackpressureError",
    "Command",
    "IngestStats",
    "IngestWorker",
    "ProtocolError",
    "ReproServer",
    "ServerConfig",
    "SessionManager",
    "TenantRecoveringError",
    "TenantSession",
    "decode_update",
    "decode_value",
    "encode_bag",
    "encode_value",
    "query_from_spec",
    "record_from_spec",
]
