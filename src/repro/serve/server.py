"""The threaded HTTP server: IVM-as-a-service over the JSON wire protocol.

Pure standard library (:mod:`http.server` + :mod:`socketserver` threading
mix-in): every request runs on its own handler thread, writes funnel into
the per-tenant single-writer ingest queues, reads serve from pinned
snapshots.  Routes (all bodies JSON; ``{t}`` is the tenant name):

========  =====================================  ==================================
method    path                                   meaning
========  =====================================  ==================================
GET       ``/health``                            liveness + uptime
GET       ``/stats``                             server + per-tenant admission stats
GET       ``/v1/{t}/datasets``                   list datasets
POST      ``/v1/{t}/datasets``                   create (``name``/``fields``/``rows``)
GET       ``/v1/{t}/datasets/{name}``            contents at the pinned snapshot
GET       ``/v1/{t}/views``                      list views
POST      ``/v1/{t}/views``                      create (``name``/``query``/``strategy``)
GET       ``/v1/{t}/views/{name}``               result at the pinned snapshot
GET       ``/v1/{t}/views/{name}/explain``       the maintenance plan, as plain JSON
GET       ``/v1/{t}/views/{name}/indexes``       live index report
GET       ``/v1/{t}/snapshot``                   all datasets+views at one version
GET       ``/v1/{t}/storage``                    the engine's storage report
POST      ``/v1/{t}/apply``                      enqueue updates (``mode`` sync/async)
POST      ``/v1/{t}/vacuum``                     reclaim + re-validate indexes
POST      ``/v1/{t}/checkpoint``                 cut a durable snapshot checkpoint
GET       ``/v1/{t}/replication``                role, epoch, positions, lag
GET       ``/v1/{t}/wal``                        long-poll WAL frame feed (replicas)
POST      ``/v1/{t}/promote``                    flip a replica writable (epoch bump)
POST      ``/v1/{t}/demote``                     fence this tenant at a newer epoch
========  =====================================  ==================================

Error bodies are ``{"error": {"code": ..., "message": ...}}``.  A full
ingest queue answers **429** with a ``Retry-After`` header (seconds, float)
estimated from the tenant's observed batch latency.

Read consistency: every ``GET`` under ``/v1/{t}/`` loads the tenant's
published snapshot exactly once and answers entirely from it, so the
``version`` field in the response identifies one consistent engine state —
even while writers are storming.  ``?since_version=N`` on view/snapshot
reads short-circuits to ``{"unchanged": true}`` when nothing advanced
(legacy polling).

Versioned reads: dataset, view and snapshot responses carry the pinned
engine version as an ``ETag`` header (``"<version>"``); a request whose
``If-None-Match`` matches answers **304 Not Modified** with no body (what
the CLI's ``watch`` and the SDK's ``etag=`` polling use).  ``?limit=N`` /
``?offset=K`` page the result pairs without materializing the merged bag —
a :class:`~repro.storage.ShardedBag` snapshot is sliced shard-direct — and
because pages are cut from one pinned frozen snapshot, walking offsets at
a fixed ETag tiles the full result exactly.

Shutdown: :meth:`ReproServer.close` stops accepting connections, drains
every tenant's ingest queue, and closes every engine (joining scheduler
threads via ``Engine.close``).  :meth:`install_signal_handlers` wires
SIGTERM/SIGINT to exactly that, so a supervised server exits cleanly.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import EngineError, NotInFragmentError, ReproError
from repro.serve.ingest import BackpressureError
from repro.serve.protocol import (
    ProtocolError,
    decode_update,
    encode_bag_page,
    fields_spec_of,
)
from repro.serve.sessions import (
    SessionManager,
    TenantNotWritableError,
    TenantRecoveringError,
    TenantSession,
)

__all__ = ["ReproServer", "ServerConfig"]


class ServerConfig:
    """Knobs of one server instance (see ``docs/serve.md``)."""

    __slots__ = (
        "host",
        "port",
        "queue_depth",
        "coalesce",
        "auto_create_tenants",
        "sync_timeout",
        "engine_options",
        "quiet",
        "data_dir",
        "fsync",
        "replica_of",
        "poll_wait",
        "poll_interval",
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        queue_depth: int = 256,
        coalesce: int = 64,
        auto_create_tenants: bool = True,
        sync_timeout: float = 30.0,
        engine_options: Optional[Dict[str, Any]] = None,
        quiet: bool = True,
        data_dir: Optional[str] = None,
        fsync: Optional[str] = None,
        replica_of: Optional[str] = None,
        poll_wait: float = 5.0,
        poll_interval: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.queue_depth = queue_depth
        self.coalesce = coalesce
        self.auto_create_tenants = auto_create_tenants
        self.sync_timeout = sync_timeout
        self.engine_options = dict(engine_options or {})
        self.quiet = quiet
        self.data_dir = data_dir
        self.fsync = fsync
        # Replication: base URL of the upstream server whose same-named
        # tenants this server follows (``repro-cli serve --replica-of``).
        self.replica_of = replica_of
        self.poll_wait = poll_wait
        self.poll_interval = poll_interval


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; all state lives on ``self.server.repro``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.repro.config.quiet:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send_json(
        self, payload: Any, status: int = 200, headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        code: str,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_json(
            {"error": {"code": code, "message": message}}, status=status, headers=headers
        )

    # ------------------------------------------------------------------ #
    # Versioned reads: ETags and pages over pinned snapshots
    # ------------------------------------------------------------------ #
    @staticmethod
    def _etag_of(version: int) -> str:
        return f'"{version}"'

    def _if_none_match(self, etag: str) -> bool:
        """Does the request's ``If-None-Match`` cover this snapshot's ETag?"""
        header = self.headers.get("If-None-Match")
        if header is None:
            return False
        candidates = [tag.strip() for tag in header.split(",")]
        return "*" in candidates or any(
            tag == etag or (tag.startswith("W/") and tag[2:] == etag)
            for tag in candidates
        )

    def _send_not_modified(self, etag: str) -> None:
        """304: headers only — the reader's copy at this ETag is current."""
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Content-Length", "0")
        self.end_headers()

    @staticmethod
    def _page_params(query: Dict[str, str]) -> Tuple[Optional[int], int]:
        """``?limit=N&offset=K`` as validated ints (limit None = everything)."""

        def _int_of(name: str) -> Optional[int]:
            raw = query.get(name)
            if raw is None:
                return None
            try:
                value = int(raw)
            except ValueError:
                raise ProtocolError(f"{name!r} must be an integer, got {raw!r}") from None
            if value < 0:
                raise ProtocolError(f"{name!r} must be non-negative, got {value}")
            return value

        return _int_of("limit"), _int_of("offset") or 0

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"request body is not valid JSON: {error}") from None

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        server: "ReproServer" = self.server.repro  # type: ignore[attr-defined]
        server.requests_served += 1
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = {key: values[-1] for key, values in parse_qs(url.query).items()}
        try:
            self._route(server, method, parts, query)
        except BackpressureError as error:
            self._send_error_json(
                429,
                "backpressure",
                str(error),
                headers={"Retry-After": f"{error.retry_after:.3f}"},
            )
        except TenantRecoveringError as error:
            # Before the ReproError arm: recovery-in-progress is a 503 the
            # SDK retries after Retry-After, not a client error.
            self._send_error_json(
                503,
                "recovering",
                str(error),
                headers={"Retry-After": f"{error.retry_after:.3f}"},
            )
        except TenantNotWritableError as error:
            # 503 with NO Retry-After: retrying this node can never
            # succeed, so the plain SDK surfaces the error immediately and
            # the FailoverClient goes looking for the current primary.
            self._send_error_json(503, "not_writable", str(error))
        except ProtocolError as error:
            if error.code == "epoch_conflict":
                status = 409
            elif error.code == "not_found":
                status = 404
            else:
                status = 400
            self._send_error_json(status, error.code, str(error))
        except NotInFragmentError as error:
            self._send_error_json(400, "not_in_fragment", str(error))
        except (EngineError, ReproError) as error:
            self._send_error_json(400, "engine_error", str(error))
        except TimeoutError as error:
            self._send_error_json(503, "apply_timeout", str(error))
        except Exception as error:  # noqa: BLE001 - last-resort 500
            self._send_error_json(500, "internal", f"{type(error).__name__}: {error}")

    def _route(
        self,
        server: "ReproServer",
        method: str,
        parts: list,
        query: Dict[str, str],
    ) -> None:
        if parts == ["health"]:
            recovering = list(server.sessions.recovering())
            self._send_json(
                {
                    "status": "recovering" if recovering else "ok",
                    "uptime_seconds": time.time() - server.started_at,
                    "tenants": list(server.sessions.names()),
                    "recovering": recovering,
                    "recovery_failed": server.sessions.recovery_failures(),
                    "replica_of": server.config.replica_of,
                    "replication": server.sessions.replication_summary(),
                }
            )
            return
        if parts == ["stats"]:
            self._send_json(server.stats())
            return
        if len(parts) >= 2 and parts[0] == "v1":
            session = server.sessions.get(parts[1])
            rest = parts[2:]
            if method == "GET":
                self._route_tenant_get(session, rest, query)
            else:
                self._route_tenant_post(session, rest)
            return
        raise ProtocolError(f"no route for {method} {self.path!r}", code="not_found")

    # ------------------------------------------------------------------ #
    # Tenant reads: answer entirely from one pinned snapshot
    # ------------------------------------------------------------------ #
    def _route_tenant_get(
        self, session: TenantSession, rest: list, query: Dict[str, str]
    ) -> None:
        snapshot = session.snapshot  # pinned once per request
        since = query.get("since_version")
        etag = self._etag_of(snapshot.version)
        if rest == ["datasets"]:
            self._send_json(
                {
                    "version": snapshot.version,
                    "datasets": [
                        {
                            "name": name,
                            "fields": fields_spec_of(session.records[name])
                            if name in session.records
                            else [],
                            "distinct": snapshot.datasets[name].distinct_size(),
                            "cardinality": snapshot.datasets[name].cardinality(),
                        }
                        for name in sorted(snapshot.datasets)
                    ],
                }
            )
            return
        if len(rest) == 2 and rest[0] == "datasets":
            name = rest[1]
            bag = snapshot.datasets.get(name)
            if bag is None:
                raise ProtocolError(f"no dataset named {name!r}", code="not_found")
            if self._if_none_match(etag):
                self._send_not_modified(etag)
                return
            limit, offset = self._page_params(query)
            self._send_json(
                {
                    "version": snapshot.version,
                    "dataset": name,
                    **encode_bag_page(bag, limit, offset),
                },
                headers={"ETag": etag},
            )
            return
        if rest == ["views"]:
            self._send_json(
                {
                    "version": snapshot.version,
                    "views": [
                        {
                            "name": handle.name,
                            "strategy": handle.strategy,
                            "execution": handle.execution,
                            "updates_applied": handle.stats.updates_applied,
                            "distinct": snapshot.views[handle.name].distinct_size()
                            if handle.name in snapshot.views
                            else 0,
                        }
                        for handle in session.engine.views()
                    ],
                }
            )
            return
        if len(rest) >= 2 and rest[0] == "views":
            name = rest[1]
            if len(rest) == 2:
                bag = snapshot.views.get(name)
                if bag is None:
                    raise ProtocolError(f"no view named {name!r}", code="not_found")
                if self._if_none_match(etag):
                    self._send_not_modified(etag)
                    return
                if since is not None and since.isdigit() and int(since) == snapshot.version:
                    self._send_json(
                        {"version": snapshot.version, "unchanged": True},
                        headers={"ETag": etag},
                    )
                    return
                limit, offset = self._page_params(query)
                handle = session.view_handle(name)
                self._send_json(
                    {
                        "version": snapshot.version,
                        "view": name,
                        "strategy": handle.strategy,
                        **encode_bag_page(bag, limit, offset),
                    },
                    headers={"ETag": etag},
                )
                return
            if rest[2:] == ["explain"]:
                handle = session.view_handle(name)
                self._send_json(
                    {"version": snapshot.version, "plan": handle.plan.to_dict()}
                )
                return
            if rest[2:] == ["indexes"]:
                handle = session.view_handle(name)
                self._send_json(
                    {"version": snapshot.version, "indexes": handle.indexes()}
                )
                return
        if rest == ["snapshot"]:
            if self._if_none_match(etag):
                self._send_not_modified(etag)
                return
            if since is not None and since.isdigit() and int(since) == snapshot.version:
                self._send_json(
                    {"version": snapshot.version, "unchanged": True},
                    headers={"ETag": etag},
                )
                return
            limit, offset = self._page_params(query)
            self._send_json(
                {
                    "version": snapshot.version,
                    "datasets": {
                        name: encode_bag_page(bag, limit, offset)
                        for name, bag in sorted(snapshot.datasets.items())
                    },
                    "views": {
                        name: encode_bag_page(bag, limit, offset)
                        for name, bag in sorted(snapshot.views.items())
                    },
                },
                headers={"ETag": etag},
            )
            return
        if rest == ["storage"]:
            self._send_json(
                {
                    "version": snapshot.version,
                    "storage": session.engine.storage_report(),
                }
            )
            return
        if rest == ["replication"]:
            self._send_json(session.replication_status())
            return
        if rest == ["wal"]:
            def _int_param(name: str, default: int = 0) -> int:
                raw = query.get(name)
                if raw is None:
                    return default
                try:
                    return int(raw)
                except ValueError:
                    raise ProtocolError(
                        f"{name!r} must be an integer, got {raw!r}"
                    ) from None

            try:
                wait = float(query.get("wait", "0") or 0.0)
            except ValueError:
                raise ProtocolError(
                    f"'wait' must be a number, got {query.get('wait')!r}"
                ) from None
            self._send_json(
                session.wal_feed(
                    _int_param("from_segment", 1),
                    _int_param("from_offset", 0),
                    wait=wait,
                    max_bytes=max(1, _int_param("max_bytes", 1 << 20)),
                    want_bootstrap=query.get("bootstrap") in ("1", "true"),
                    subscriber_epoch=_int_param("epoch", 0),
                )
            )
            return
        raise ProtocolError(f"no route for GET {self.path!r}", code="not_found")

    # ------------------------------------------------------------------ #
    # Tenant writes: funnel through the single-writer ingest queue
    # ------------------------------------------------------------------ #
    def _route_tenant_post(self, session: TenantSession, rest: list) -> None:
        body = self._read_body()
        if rest == ["datasets"]:
            if not isinstance(body, dict) or "name" not in body:
                raise ProtocolError("dataset creation needs {'name', 'fields', 'rows'?}")
            result = session.create_dataset(
                str(body["name"]), body.get("fields"), body.get("rows")
            )
            self._send_json(result, status=201)
            return
        if rest == ["views"]:
            if not isinstance(body, dict) or "name" not in body or "query" not in body:
                raise ProtocolError("view creation needs {'name', 'query', 'strategy'?}")
            result = session.create_view(
                str(body["name"]), body["query"], str(body.get("strategy", "auto"))
            )
            self._send_json(result, status=201)
            return
        if rest == ["apply"]:
            if not isinstance(body, dict) or "updates" not in body:
                raise ProtocolError("apply needs {'updates': [...], 'mode'?}")
            updates_payload = body["updates"]
            if not isinstance(updates_payload, list) or not updates_payload:
                raise ProtocolError("'updates' must be a non-empty list")
            mode = body.get("mode", "sync")
            if mode not in ("sync", "async"):
                raise ProtocolError(f"apply mode must be 'sync' or 'async', got {mode!r}")
            updates = [decode_update(entry) for entry in updates_payload]
            known = session.snapshot.datasets
            for update in updates:
                for relation in update.relations:
                    if relation not in known:
                        raise ProtocolError(
                            f"no dataset named {relation!r}", code="not_found"
                        )
            if mode == "async":
                commands = [session.submit_apply(update) for update in updates]
                self._send_json(
                    {
                        "accepted": len(commands),
                        "queue_depth": session.worker.depth(),
                    },
                    status=202,
                )
                return
            results = [session.apply_sync(update) for update in updates]
            self._send_json({"applied": len(results), "results": results})
            return
        if rest == ["vacuum"]:
            self._send_json(session.vacuum())
            return
        if rest == ["checkpoint"]:
            self._send_json(session.checkpoint(), status=201)
            return
        if rest == ["promote"]:
            epoch = body.get("epoch") if isinstance(body, dict) else None
            self._send_json(
                session.promote(epoch=int(epoch) if epoch is not None else None)
            )
            return
        if rest == ["demote"]:
            if not isinstance(body, dict) or "epoch" not in body:
                raise ProtocolError("demote needs {'epoch', 'reason'?}")
            self._send_json(
                session.demote(
                    int(body["epoch"]),
                    str(body.get("reason", "demoted by operator")),
                )
            )
            return
        raise ProtocolError(f"no route for POST {self.path!r}", code="not_found")


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    repro: "ReproServer"


class ReproServer:
    """Owns the listening socket, the tenants, and the shutdown sequence."""

    def __init__(self, config: Optional[ServerConfig] = None, **kwargs: Any) -> None:
        self.config = config or ServerConfig(**kwargs)
        self.sessions = SessionManager(
            engine_options=self.config.engine_options,
            queue_depth=self.config.queue_depth,
            coalesce=self.config.coalesce,
            auto_create=self.config.auto_create_tenants,
            sync_timeout=self.config.sync_timeout,
            data_dir=self.config.data_dir,
            fsync=self.config.fsync,
            replica_of=self.config.replica_of,
            poll_wait=self.config.poll_wait,
            poll_interval=self.config.poll_interval,
        )
        self.started_at = time.time()
        self.requests_served = 0
        self._httpd = _HTTPServer((self.config.host, self.config.port), _Handler)
        self._httpd.repro = self
        self._thread: Optional[threading.Thread] = None
        self._recovery_thread: Optional[threading.Thread] = None
        self._discovery_thread: Optional[threading.Thread] = None
        self._closed = False
        self._close_lock = threading.Lock()
        self._close_done = threading.Event()
        if self.config.replica_of is not None:
            # Follow the upstream's tenant list: any tenant the primary
            # serves gets a local replica session (which bootstraps itself
            # over the WAL feed) without waiting for a client to ask.
            self._discovery_thread = threading.Thread(
                target=self._discover_upstream_tenants,
                name="repro-serve-discover",
                daemon=True,
            )
            self._discovery_thread.start()
        if self.config.data_dir is not None:
            # Recover existing tenants off the accept path: the server
            # answers /health as "recovering" (and tenant requests as 503 +
            # Retry-After) until each replay finishes.
            self._recovery_thread = threading.Thread(
                target=self.sessions.recover_existing,
                name="repro-serve-recover",
                daemon=True,
            )
            self._recovery_thread.start()

    # ------------------------------------------------------------------ #
    def _discover_upstream_tenants(self) -> None:
        """Poll the upstream's ``/health`` and open replica sessions.

        Best-effort and quiet: a partitioned or dead upstream just means
        no *new* tenants appear — existing replica sessions keep their own
        links (which do their own retrying).
        """
        import json as _json
        import urllib.request

        upstream = (self.config.replica_of or "").rstrip("/")
        while not self._closed:
            try:
                with urllib.request.urlopen(f"{upstream}/health", timeout=5.0) as resp:
                    body = _json.loads(resp.read().decode("utf-8"))
                for name in body.get("tenants", []):
                    if self._closed:
                        break
                    try:
                        self.sessions.get(str(name))
                    except Exception:  # noqa: BLE001 - recovering/bad name
                        pass
            except Exception:  # noqa: BLE001 - upstream unreachable
                pass
            for _ in range(10):
                if self._closed:
                    return
                time.sleep(0.2)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — port resolved even when configured as 0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stats(self) -> Dict[str, Any]:
        return {
            "server": {
                "url": self.url,
                "uptime_seconds": time.time() - self.started_at,
                "requests_served": self.requests_served,
                "queue_depth_bound": self.config.queue_depth,
                "coalesce_bound": self.config.coalesce,
                "active_threads": threading.active_count(),
            },
            "tenants": self.sessions.stats(),
        }

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def start(self) -> "ReproServer":
        """Serve on a background thread (tests, benchmarks, embedding)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (what ``repro-cli serve`` runs)."""
        self._httpd.serve_forever()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful close (drain ingest, join schedulers).

        Only callable from the main thread (a CPython signal constraint);
        embedded servers call :meth:`close` themselves instead.
        """

        def _handle(signum: int, frame: Any) -> None:  # noqa: ARG001
            # Signal handlers run on the main thread — the same thread
            # ``repro-cli serve`` parks in ``serve_forever()``.  Closing
            # inline would deadlock: ``httpd.shutdown()`` waits for the
            # serve loop to exit, and the serve loop is suspended under
            # this very handler.  Close from a helper thread instead; the
            # unblocked ``serve_forever`` returns and the CLI's own
            # ``close()`` call then waits for this close to finish.
            threading.Thread(
                target=self.close,
                kwargs={"drain": True},
                name="repro-serve-shutdown",
                daemon=True,
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def close(self, drain: bool = True) -> None:
        """Stop accepting, drain every tenant, close every engine.

        ``drain=True`` (the SIGTERM path) applies everything already queued
        before exiting, so acknowledged synchronous writes are never lost;
        ``drain=False`` abandons queued work (pending waiters get errors).
        Idempotent and thread-safe.
        """
        with self._close_lock:
            first = not self._closed
            self._closed = True
        if not first:
            # A close is already in flight (e.g. the signal-handler thread);
            # wait for it so "after close() returns" means fully closed.
            self._close_done.wait(60.0)
            return
        try:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._thread is not None:
                self._thread.join(10.0)
                self._thread = None
            if self._recovery_thread is not None:
                self._recovery_thread.join(30.0)
                self._recovery_thread = None
            if self._discovery_thread is not None:
                self._discovery_thread.join(10.0)
                self._discovery_thread = None
            self.sessions.close_all(drain=drain)
        finally:
            self._close_done.set()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<ReproServer {self.url} {state} tenants={list(self.sessions.names())}>"
