"""The JSON wire protocol: values, schemas, queries and updates over HTTP.

Everything the server sends or accepts is plain JSON.  This module owns the
four translation layers:

* **values** — nested bag values travel as JSON: tuples become lists, inner
  bags become ``{"bag": [[element, multiplicity], ...]}`` objects, labels
  (which only ever travel server → client, inside shredded artifacts)
  become ``{"label": "..."}`` strings.  :func:`encode_value` /
  :func:`decode_value` are exact inverses on label-free values.
* **schemas** — a dataset is declared as ``{"name": ..., "fields": [...]}``
  where each field is either a string (a base-typed column) or
  ``{"name": ..., "bag": [...]}`` for a nested collection column;
  :func:`record_from_spec` builds the :class:`~repro.surface.Record`.
* **queries** — views are declared as a JSON comprehension spec compiled
  onto the surface DSL by :func:`query_from_spec`::

      {"from": "M", "var": "m",
       "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
       "select": [["field", "m", "name"]]}

  Select items are ``["field", var, name]``, ``["row", var]`` or
  ``["nest", <spec>]`` (whose sub-spec sees the outer row variables, so the
  paper's nested ``related`` query is expressible); predicates are
  ``["and"|"or"|"not", ...]`` over ``["eq"|"ne"|"lt"|"le"|"gt"|"ge", a, b]``
  comparisons of ``["field", var, name]`` / ``["const", value]`` operands.
* **updates** — an apply request carries
  ``{"updates": [{relation: {"rows": [...]}}, ...]}`` where each delta is
  ``{"rows": [...]}`` (insertions) or ``{"pairs": [[row, mult], ...]}``
  (mixed insert/delete deltas via negative multiplicities);
  :func:`decode_update` produces the engine's :class:`Update`.

Protocol violations raise :class:`ProtocolError`, which the server maps to
HTTP 400 with a structured ``{"error": {"code", "message"}}`` body.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bag.bag import Bag
from repro.ivm.updates import Update
from repro.labels import Label
from repro.nrc.types import BagType
from repro.surface.dsl import Condition, Dataset, Query, RowVar, nest
from repro.surface.schema import Record, STRING

__all__ = [
    "ProtocolError",
    "decode_delta",
    "decode_update",
    "decode_value",
    "encode_bag",
    "encode_bag_page",
    "encode_value",
    "fields_spec_of",
    "query_from_spec",
    "record_from_spec",
]


class ProtocolError(ValueError):
    """A malformed wire-protocol payload (server answers HTTP 400)."""

    def __init__(self, message: str, code: str = "bad_request") -> None:
        super().__init__(message)
        self.code = code


# --------------------------------------------------------------------------- #
# Values
# --------------------------------------------------------------------------- #
def encode_value(value: Any) -> Any:
    """Encode one nested bag value as JSON-compatible plain data."""
    if isinstance(value, tuple):
        return [encode_value(component) for component in value]
    if isinstance(value, Bag):
        return {"bag": [[encode_value(el), mult] for el, mult in value.items()]}
    if isinstance(value, Label):
        return {"label": value.render()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ProtocolError(f"value {value!r} is not encodable on the wire")


def decode_value(value: Any) -> Any:
    """Decode a wire value back into the engine's representation.

    Lists become tuples, ``{"bag": pairs}`` objects become :class:`Bag`s.
    Labels are deliberately not decodable — they are engine-internal names
    and only ever travel server → client.
    """
    if isinstance(value, list):
        return tuple(decode_value(component) for component in value)
    if isinstance(value, dict):
        if "bag" in value and len(value) == 1:
            return _decode_pairs(value["bag"])
        if "label" in value:
            raise ProtocolError("labels cannot be sent to the server")
        raise ProtocolError(f"unrecognized wire object with keys {sorted(value)}")
    return value


def _decode_pairs(pairs: Any) -> Bag:
    if not isinstance(pairs, list):
        raise ProtocolError("bag pairs must be a list of [element, multiplicity]")
    decoded: List[Tuple[Any, int]] = []
    for pair in pairs:
        if not isinstance(pair, (list, tuple)) or len(pair) != 2:
            raise ProtocolError(f"bad bag pair {pair!r}")
        element, multiplicity = pair
        if not isinstance(multiplicity, int) or isinstance(multiplicity, bool):
            raise ProtocolError(f"bag multiplicity must be an int, got {multiplicity!r}")
        decoded.append((decode_value(element), multiplicity))
    return Bag.from_pairs(decoded)


def encode_bag(bag: Bag) -> Dict[str, Any]:
    """Encode a top-level bag (dataset contents, view result) with its sizes."""
    return {
        "pairs": [[encode_value(el), mult] for el, mult in bag.items()],
        "distinct": bag.distinct_size(),
        "cardinality": bag.cardinality(),
    }


def encode_bag_page(
    bag: Bag, limit: Optional[int] = None, offset: int = 0
) -> Dict[str, Any]:
    """Encode one page of a top-level bag without materializing the rest.

    Slices ``bag.items()`` lazily — on a :class:`~repro.storage.ShardedBag`
    that iterator walks the frozen shards directly, so a page never forces
    the merged dictionary into existence.  ``limit=None`` with ``offset=0``
    reduces to :func:`encode_bag` exactly.  Paging is only meaningful
    against one pinned snapshot: a frozen bag's iteration order is stable,
    so pages taken at the same ``version`` (the ETag) tile the full result
    without overlap or gaps.  ``distinct``/``cardinality`` always describe
    the whole bag; the ``page`` object (present whenever a window was
    requested) describes the slice.
    """
    if offset < 0:
        raise ProtocolError("'offset' must be a non-negative integer")
    if limit is not None and limit < 0:
        raise ProtocolError("'limit' must be a non-negative integer")
    stop = None if limit is None else offset + limit
    pairs = [
        [encode_value(element), multiplicity]
        for element, multiplicity in islice(bag.items(), offset, stop)
    ]
    distinct = bag.distinct_size()
    encoded: Dict[str, Any] = {
        "pairs": pairs,
        "distinct": distinct,
        "cardinality": bag.cardinality(),
    }
    if limit is not None or offset:
        encoded["page"] = {
            "offset": offset,
            "limit": limit,
            "returned": len(pairs),
            "remaining": max(0, distinct - offset - len(pairs)),
        }
    return encoded


# --------------------------------------------------------------------------- #
# Updates
# --------------------------------------------------------------------------- #
def decode_delta(payload: Any) -> Bag:
    """One relation's delta: ``{"rows": [...]}`` or ``{"pairs": [[row, m]...]}``."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"a relation delta must be an object, got {payload!r}")
    if "rows" in payload:
        rows = payload["rows"]
        if not isinstance(rows, list):
            raise ProtocolError("delta rows must be a list")
        return Bag(decode_value(row) for row in rows)
    if "pairs" in payload:
        return _decode_pairs(payload["pairs"])
    raise ProtocolError("a relation delta needs 'rows' or 'pairs'")


def decode_update(payload: Any) -> Update:
    """One update: a ``{relation: delta}`` mapping."""
    if not isinstance(payload, dict) or not payload:
        raise ProtocolError("an update must be a non-empty {relation: delta} object")
    relations = {}
    for name, delta in payload.items():
        if not isinstance(name, str):
            raise ProtocolError(f"relation names must be strings, got {name!r}")
        relations[name] = decode_delta(delta)
    return Update(relations=relations)


# --------------------------------------------------------------------------- #
# Schemas
# --------------------------------------------------------------------------- #
def record_from_spec(name: str, fields: Any) -> Record:
    """Build a :class:`Record` from the wire fields spec.

    Each field is a string (base-typed column) or a
    ``{"name": ..., "bag": [...]}`` object whose ``bag`` lists the fields of
    the nested collection's element record.
    """
    if not isinstance(fields, list) or not fields:
        raise ProtocolError(f"dataset {name!r} needs a non-empty fields list")
    built: List[Tuple[str, Any]] = []
    for field in fields:
        if isinstance(field, str):
            built.append((field, STRING))
        elif isinstance(field, dict) and "name" in field and "bag" in field:
            inner = record_from_spec(f"{name}_{field['name']}", field["bag"])
            built.append((str(field["name"]), BagType(inner.product_type())))
        else:
            raise ProtocolError(
                f"dataset {name!r}: each field must be a string or "
                f"{{'name', 'bag'}} object, got {field!r}"
            )
    return Record(name, tuple(built))


def fields_spec_of(record: Record) -> List[Any]:
    """The wire fields spec of a registered record (inverse of the above)."""
    spec: List[Any] = []
    for field_name, type_ in record.fields:
        if isinstance(type_, BagType):
            # Nested columns were registered through record_from_spec, so the
            # element record is reconstructible only as anonymous columns.
            arity = getattr(type_.element, "arity", 1)
            spec.append({"name": field_name, "bag": [f"c{i}" for i in range(arity)]})
        else:
            spec.append(field_name)
    return spec


# --------------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------------- #
_COMPARISONS = ("eq", "ne", "lt", "le", "gt", "ge")


def query_from_spec(
    spec: Any,
    datasets: Mapping[str, Dataset],
    outer_vars: Optional[Dict[str, RowVar]] = None,
) -> Query:
    """Compile a JSON comprehension spec onto the surface DSL.

    ``datasets`` maps registered dataset names to their handles;
    ``outer_vars`` carries the row variables of enclosing comprehensions so
    nested sub-queries can correlate with them.
    """
    if not isinstance(spec, dict):
        raise ProtocolError(f"a query spec must be an object, got {spec!r}")
    source_name = spec.get("from")
    if not isinstance(source_name, str):
        raise ProtocolError("query spec needs a 'from' dataset name")
    dataset = datasets.get(source_name)
    if dataset is None:
        raise ProtocolError(f"unknown dataset {source_name!r}", code="not_found")
    var_name = spec.get("var", source_name.lower())
    if not isinstance(var_name, str) or not var_name:
        raise ProtocolError("query 'var' must be a non-empty string")
    scope: Dict[str, RowVar] = dict(outer_vars or {})
    if var_name in scope:
        raise ProtocolError(f"row variable {var_name!r} shadows an outer variable")
    row = dataset.row(var_name)
    scope[var_name] = row
    query = dataset.iterate(row)
    where = spec.get("where")
    if where is not None:
        query = query.where(_condition_from_spec(where, scope))
    select = spec.get("select")
    if select is not None:
        if not isinstance(select, list) or not select:
            raise ProtocolError("query 'select' must be a non-empty list")
        items = [_select_item_from_spec(item, scope, datasets) for item in select]
        query = query.select(*items)
    unknown = set(spec) - {"from", "var", "where", "select"}
    if unknown:
        raise ProtocolError(f"unknown query spec keys {sorted(unknown)}")
    return query


def _row_var(scope: Mapping[str, RowVar], name: Any) -> RowVar:
    row = scope.get(name) if isinstance(name, str) else None
    if row is None:
        raise ProtocolError(f"unknown row variable {name!r}")
    return row


def _operand_from_spec(spec: Any, scope: Mapping[str, RowVar]):
    if not isinstance(spec, list) or not spec:
        raise ProtocolError(f"bad operand {spec!r}")
    kind = spec[0]
    if kind == "field":
        if len(spec) != 3:
            raise ProtocolError("'field' operands are ['field', var, name]")
        return _row_var(scope, spec[1]).field(str(spec[2]))
    if kind == "const":
        if len(spec) != 2:
            raise ProtocolError("'const' operands are ['const', value]")
        return spec[1]
    raise ProtocolError(f"unknown operand kind {kind!r}")


def _condition_from_spec(spec: Any, scope: Mapping[str, RowVar]) -> Condition:
    if not isinstance(spec, list) or not spec:
        raise ProtocolError(f"bad predicate {spec!r}")
    kind = spec[0]
    if kind == "and" or kind == "or":
        if len(spec) < 3:
            raise ProtocolError(f"'{kind}' needs at least two sub-predicates")
        parts = [_condition_from_spec(part, scope) for part in spec[1:]]
        combined = parts[0]
        for part in parts[1:]:
            combined = (combined & part) if kind == "and" else (combined | part)
        return combined
    if kind == "not":
        if len(spec) != 2:
            raise ProtocolError("'not' takes exactly one sub-predicate")
        return ~_condition_from_spec(spec[1], scope)
    if kind in _COMPARISONS:
        if len(spec) != 3:
            raise ProtocolError(f"'{kind}' comparisons take two operands")
        lhs = _operand_from_spec(spec[1], scope)
        rhs = _operand_from_spec(spec[2], scope)
        # At least one side must be a field reference (the DSL's operators
        # live on FieldRef); const-vs-const comparisons are pointless anyway.
        from repro.surface.dsl import FieldRef

        if isinstance(lhs, FieldRef):
            op = {"eq": lhs.__eq__, "ne": lhs.__ne__, "lt": lhs.__lt__,
                  "le": lhs.__le__, "gt": lhs.__gt__, "ge": lhs.__ge__}[kind]
            return op(rhs)
        if isinstance(rhs, FieldRef):
            flipped = {"eq": "eq", "ne": "ne", "lt": "gt", "le": "ge",
                       "gt": "lt", "ge": "le"}[kind]
            op = {"eq": rhs.__eq__, "ne": rhs.__ne__, "lt": rhs.__lt__,
                  "le": rhs.__le__, "gt": rhs.__gt__, "ge": rhs.__ge__}[flipped]
            return op(lhs)
        raise ProtocolError(f"'{kind}' needs at least one ['field', ...] operand")
    raise ProtocolError(f"unknown predicate kind {kind!r}")


def _select_item_from_spec(
    spec: Any, scope: Dict[str, RowVar], datasets: Mapping[str, Dataset]
):
    if not isinstance(spec, list) or not spec:
        raise ProtocolError(f"bad select item {spec!r}")
    kind = spec[0]
    if kind == "field":
        if len(spec) != 3:
            raise ProtocolError("'field' select items are ['field', var, name]")
        return _row_var(scope, spec[1]).field(str(spec[2]))
    if kind == "row":
        if len(spec) != 2:
            raise ProtocolError("'row' select items are ['row', var]")
        return _row_var(scope, spec[1]).whole()
    if kind == "nest":
        if len(spec) != 2:
            raise ProtocolError("'nest' select items are ['nest', query-spec]")
        return nest(query_from_spec(spec[1], datasets, outer_vars=scope))
    raise ProtocolError(f"unknown select item kind {kind!r}")
