"""Per-tenant ingest: one writer thread, a bounded queue, coalesced applies.

The serving layer's whole concurrency contract reduces to a single-writer
discipline: **every** state transition of a tenant's engine — dataset and
view registration, updates, vacuum — executes on that tenant's one
:class:`IngestWorker` thread.  HTTP handler threads only enqueue
:class:`Command`s and (for synchronous calls) wait on the command's event;
readers never enqueue anything, they read the immutable snapshot the worker
publishes after each batch (see :mod:`repro.serve.sessions`).

Two properties fall out:

* **coalescing** — the worker drains a run of consecutive ``apply`` commands
  in one go and applies them through the engine's
  ``apply_stream(batched=True)`` path: one merged delta, one store/index
  refresh, one snapshot publication for the whole run.  Under a write storm
  the per-update cost collapses into the batch the same way the engine's
  own batched streams do (cancelling insert/delete pairs vanish before any
  view runs).
* **backpressure** — the queue is bounded (:attr:`IngestWorker.capacity`).
  When it is full, :meth:`submit` raises :class:`BackpressureError` carrying
  a ``retry_after`` estimate derived from the observed batch latency; the
  server maps it to HTTP 429 with a ``Retry-After`` header and counts the
  rejection, so admission control is visible in ``/stats`` rather than
  silent.  Writers are rejected, never blocked — a storm cannot pile up
  unbounded handler threads behind a slow engine.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["BackpressureError", "Command", "IngestStats", "IngestWorker"]


class BackpressureError(Exception):
    """The ingest queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, depth: int, capacity: int, retry_after: float) -> None:
        super().__init__(
            f"ingest queue at capacity ({depth}/{capacity}); "
            f"retry after {retry_after:.3f}s"
        )
        self.depth = depth
        self.capacity = capacity
        self.retry_after = retry_after


class Command:
    """One unit of writer-thread work.

    ``kind`` is ``"apply"`` for coalescable update commands and a control
    name (``"dataset"``, ``"view"``, ``"vacuum"``, …) otherwise; ``run`` is
    executed on the worker thread.  Callers that need the outcome wait on
    :meth:`result`, which re-raises the worker-side exception verbatim.
    """

    __slots__ = ("kind", "run", "payload", "_done", "_result", "_error")

    def __init__(self, kind: str, run: Callable[[], Any], payload: Any = None) -> None:
        self.kind = kind
        self.run = run
        self.payload = payload
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self._result = result
        self._error = error
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError(f"{self.kind} command not applied within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result


class IngestStats:
    """Admission-control and throughput counters (what ``/stats`` surfaces).

    Counter increments happen on the worker thread or under the queue lock;
    reads are unsynchronized snapshots (ints in CPython are torn-free), so
    reporting never contends with ingestion.
    """

    __slots__ = (
        "accepted",
        "rejected",
        "applied_updates",
        "applied_batches",
        "coalesced_updates",
        "control_commands",
        "errors",
        "max_depth_seen",
        "last_batch_seconds",
        "ewma_batch_seconds",
    )

    def __init__(self) -> None:
        self.accepted = 0
        self.rejected = 0
        self.applied_updates = 0
        self.applied_batches = 0
        self.coalesced_updates = 0
        self.control_commands = 0
        self.errors = 0
        self.max_depth_seen = 0
        self.last_batch_seconds = 0.0
        self.ewma_batch_seconds = 0.0

    def record_batch(self, updates: int, seconds: float) -> None:
        self.applied_batches += 1
        self.applied_updates += updates
        if updates > 1:
            self.coalesced_updates += updates - 1
        self.last_batch_seconds = seconds
        # EWMA with alpha 0.3: recent batches dominate the Retry-After hint.
        self.ewma_batch_seconds = 0.7 * self.ewma_batch_seconds + 0.3 * seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "accepted": self.accepted,
            "rejected_backpressure": self.rejected,
            "applied_updates": self.applied_updates,
            "applied_batches": self.applied_batches,
            "coalesced_updates": self.coalesced_updates,
            "control_commands": self.control_commands,
            "errors": self.errors,
            "max_depth_seen": self.max_depth_seen,
            "last_batch_seconds": self.last_batch_seconds,
            "ewma_batch_seconds": self.ewma_batch_seconds,
        }


class IngestWorker:
    """The single writer thread of one tenant session.

    ``capacity`` bounds the number of queued-but-unapplied commands;
    ``coalesce`` caps how many consecutive ``apply`` commands one batch may
    merge (1 disables coalescing).  ``on_batch`` runs on the worker thread
    after every batch — the session uses it to publish a fresh snapshot.
    """

    def __init__(
        self,
        name: str,
        *,
        capacity: int = 256,
        coalesce: int = 64,
        apply_batch: Callable[[List[Any]], Any],
        on_batch: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"ingest capacity must be >= 1, got {capacity}")
        if coalesce < 1:
            raise ValueError(f"coalesce bound must be >= 1, got {coalesce}")
        self.name = name
        self.capacity = capacity
        self.coalesce = coalesce
        self.stats = IngestStats()
        self._apply_batch = apply_batch
        self._on_batch = on_batch
        self._queue: Deque[Command] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name=f"repro-ingest-{name}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Producer side (HTTP handler threads)
    # ------------------------------------------------------------------ #
    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def retry_after(self) -> float:
        """Estimated seconds until capacity frees up (the 429 hint).

        Half the queue must drain before admission is likely to succeed;
        each batch clears up to ``coalesce`` updates in about one EWMA batch
        time.  Floored at 50ms so clients never busy-spin.
        """
        per_batch = self.stats.ewma_batch_seconds or 0.01
        batches = max(1, (self.capacity // 2) // self.coalesce)
        return max(0.05, batches * per_batch)

    def submit(self, command: Command) -> Command:
        """Enqueue a command, or raise :class:`BackpressureError` when full.

        Control commands (non-``apply``) are admitted one past capacity so a
        storm of writes cannot starve administrative operations forever; the
        bound on unapplied *updates* is what backpressure protects.
        """
        with self._lock:
            if self._stopping:
                raise RuntimeError(f"ingest worker {self.name!r} is stopped")
            depth = len(self._queue)
            if command.kind == "apply" and depth >= self.capacity:
                self.stats.rejected += 1
                raise BackpressureError(depth, self.capacity, self.retry_after())
            self._queue.append(command)
            self.stats.accepted += 1
            if depth + 1 > self.stats.max_depth_seen:
                self.stats.max_depth_seen = depth + 1
            self._ready.notify()
        return command

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _next_batch(self) -> Optional[List[Command]]:
        """Block for work; return one batch, or ``None`` when fully drained
        and stopping.  A batch is either a maximal run of up to ``coalesce``
        consecutive ``apply`` commands or a single control command — control
        commands are barriers, they never reorder around updates."""
        with self._lock:
            while not self._queue and not self._stopping:
                self._ready.wait()
            if not self._queue:
                return None
            first = self._queue.popleft()
            batch = [first]
            if first.kind == "apply":
                while (
                    len(batch) < self.coalesce
                    and self._queue
                    and self._queue[0].kind == "apply"
                ):
                    batch.append(self._queue.popleft())
            return batch

    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            if batch[0].kind == "apply":
                self._run_applies(batch)
            else:
                self._run_control(batch[0])
            if self._on_batch is not None:
                try:
                    self._on_batch()
                except Exception:
                    self.stats.errors += 1

    def _run_applies(self, batch: List[Command]) -> None:
        updates = [command.payload for command in batch]
        started = time.perf_counter()
        try:
            result = self._apply_batch(updates)
        except BaseException as error:  # noqa: BLE001 - reported to every waiter
            self.stats.errors += 1
            for command in batch:
                command.finish(error=error)
            return
        seconds = time.perf_counter() - started
        self.stats.record_batch(len(batch), seconds)
        for command in batch:
            command.finish(result={"batched_with": len(batch) - 1, **result})

    def _run_control(self, command: Command) -> None:
        self.stats.control_commands += 1
        try:
            command.finish(result=command.run())
        except BaseException as error:  # noqa: BLE001
            self.stats.errors += 1
            command.finish(error=error)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def drain_and_stop(self, timeout: Optional[float] = 30.0) -> bool:
        """Stop admitting, apply everything already queued, join the thread.

        This is the graceful-shutdown half of the SIGTERM story: in-flight
        writers get their acks, late writers get a clean rejection.  Returns
        ``True`` once the worker thread exited.  Idempotent.
        """
        with self._lock:
            self._stopping = True
            self._ready.notify_all()
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def stop_now(self, timeout: Optional[float] = 5.0) -> bool:
        """Abandon queued work and stop: pending commands error out."""
        with self._lock:
            self._stopping = True
            abandoned = list(self._queue)
            self._queue.clear()
            self._ready.notify_all()
        error = RuntimeError(f"ingest worker {self.name!r} shut down")
        for command in abandoned:
            command.finish(error=error)
        self._thread.join(timeout)
        return not self._thread.is_alive()
